"""Service-state checkpoints: spill, verify, resume.

The campaign checkpoints (:mod:`repro.simulation.checkpoint`) spill
per-shard *datasets*; the service spills its *loop state* — the event
cursor, the sliding window, the quarantine log, the rolling stream
digest, and every closed day's predictions — everything a restarted
process needs to continue the stream bit-identically.

The same trust discipline applies: one JSON document written atomically,
carrying the service's configuration identity (a config hash plus the
source fingerprint) and an integrity anchor (SHA-256 of the serialized
state block).  On resume, a checkpoint is used only when the identity
matches the requesting service; a matching checkpoint that fails its
integrity check raises :class:`repro.errors.CheckpointError` — a corrupt
spill must never silently seed a resumed stream.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from repro.errors import CheckpointError
from repro.measurement.storage import atomic_write_text
from repro.telemetry import get_logger

#: Format marker written into every service checkpoint.
SERVICE_CHECKPOINT_VERSION = 1

#: File name of the (single) service checkpoint inside its directory.
CHECKPOINT_FILENAME = "service-checkpoint.json"

_log = get_logger("service.checkpoint")


def service_checkpoint_path(directory: str) -> str:
    """Path of the service checkpoint inside a checkpoint directory."""
    return os.path.join(directory, CHECKPOINT_FILENAME)


def _state_sha256(state: Dict[str, Any]) -> str:
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def write_service_checkpoint(
    directory: str,
    identity: Dict[str, Any],
    state: Dict[str, Any],
) -> Dict[str, Any]:
    """Spill the service's loop state with an integrity anchor.

    ``identity`` describes which service the state belongs to (config
    hash, source fingerprint, seed); ``state`` is the loop state block
    (cursor, window, quarantine, stream digest, predictions, attempt).
    Returns the document written.  The write is atomic, so a crash
    mid-spill leaves the previous checkpoint intact — the loop may
    replay a tail of already-processed events on resume, which the
    cursor makes idempotent.
    """
    os.makedirs(directory, exist_ok=True)
    document = {
        "format_version": SERVICE_CHECKPOINT_VERSION,
        "identity": dict(identity),
        "state_sha256": _state_sha256(state),
        "state": state,
    }
    atomic_write_text(
        service_checkpoint_path(directory),
        json.dumps(document, indent=2, sort_keys=True) + "\n",
    )
    _log.debug(
        "service checkpoint written",
        extra={"cursor": state.get("cursor"), "directory": directory},
    )
    return document


def load_service_checkpoint(
    directory: str, identity: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Load the service checkpoint if present, applicable, and intact.

    Returns the ``state`` block, or ``None`` when the checkpoint is
    absent or belongs to a different service configuration (both mean
    "start from the beginning of the stream").

    Raises:
        CheckpointError: when the checkpoint claims to match but is
            unreadable or fails its integrity anchor.
    """
    path = service_checkpoint_path(directory)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(
            f"unreadable service checkpoint ({error})"
        ) from error
    if document.get("format_version") != SERVICE_CHECKPOINT_VERSION:
        return None
    if document.get("identity") != dict(identity):
        _log.debug(
            "service checkpoint not applicable",
            extra={"directory": directory},
        )
        return None
    state = document.get("state")
    if not isinstance(state, dict):
        raise CheckpointError("service checkpoint carries no state block")
    actual = _state_sha256(state)
    if actual != document.get("state_sha256"):
        raise CheckpointError(
            "service checkpoint state hash mismatch "
            f"(expected {document.get('state_sha256')}, got {actual})"
        )
    return state
