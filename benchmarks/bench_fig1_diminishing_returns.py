"""Fig 1 — CDF of min latency to the nearest-N front-ends (N=1,3,5,7,9).

Paper shape: latency decreases as more candidates are included, with
negligible benefit past ~5 front-ends — the justification for measuring
only the ten nearest candidates (§3.3).
"""

from conftest import write_figure


def test_fig1_diminishing_returns(benchmark, paper_study):
    result = benchmark(
        paper_study.fig1_diminishing_returns, (1, 3, 5, 7, 9)
    )
    write_figure(
        "fig1_diminishing_returns", result.format(), result.series,
        title="Fig 1 - min latency to nearest-N front-ends (CDF of /24s)",
        x_label="min latency (ms)",
    )

    medians = result.medians_ms
    # More candidates never hurt.
    assert medians[1] >= medians[3] >= medians[5] >= medians[7] >= medians[9]
    # The gain from 1 -> 5 dominates the gain from 5 -> 9 (the paper's
    # "diminishing returns" reading).
    assert result.gain_ms(1, 5) >= result.gain_ms(5, 9)
    assert result.gain_ms(5, 9) <= 2.0
