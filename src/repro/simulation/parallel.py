"""Sharded parallel campaign execution.

Production anycast CDNs shard their measurement pipelines the same way:
per-front-end (or per-prefix) local state, merged globally.  Here the
parallel axis is the client population — each worker process runs the
full calendar for one contiguous shard of /24s and returns a partial
:class:`repro.simulation.dataset.StudyDataset`, which the coordinator
merges.

Correctness rests on two properties established elsewhere:

* every random draw in :class:`repro.simulation.campaign.CampaignRunner`
  comes from an RNG derived per ``(client, day)`` (or finer), so a
  client's measurements do not depend on which shard runs it — this
  holds for both measurement engines (the vectorized engine derives its
  ``numpy.random.Generator`` per (client, day) the same way), so the
  ``engine`` setting composes freely with ``workers``;
* all dataset sinks are mergeable, and
  :meth:`repro.simulation.dataset.StudyDataset.digest` is canonical, so
  ``serial ≡ parallel ≡ reordered`` is testable bit-for-bit within
  either engine.

Workers rebuild the scenario from its :class:`ScenarioConfig` — scenario
construction is cheap relative to a multi-day campaign and avoids
pickling the whole routed topology.  For small populations the rebuild
plus process startup dominates; parallelism pays off from roughly a
thousand client /24s per worker upward.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.simulation.campaign import (
    CampaignConfig,
    CampaignRunner,
    CampaignStats,
)
from repro.simulation.dataset import StudyDataset
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.telemetry import (
    RunContext,
    Telemetry,
    TelemetrySnapshot,
    config_digest,
    get_logger,
)

_log = get_logger("parallel")

#: Fork keeps worker startup cheap where available (Linux); elsewhere
#: fall back to spawn, which re-imports this module in each worker.
_START_METHOD = (
    "fork"
    if "fork" in multiprocessing.get_all_start_methods()
    else "spawn"
)


def shard_bounds(population: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal half-open index ranges covering a population.

    The first ``population % shards`` shards get one extra client, so any
    two shards differ in size by at most one.

    Raises:
        ConfigurationError: if ``shards`` < 1 or ``population`` < 1.
    """
    if population < 1:
        raise ConfigurationError("population must be >= 1")
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    shards = min(shards, population)
    base, extra = divmod(population, shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _run_shard(
    payload: Tuple[ScenarioConfig, CampaignConfig, int, int]
) -> Tuple[StudyDataset, CampaignStats, TelemetrySnapshot]:
    """Worker entry point: rebuild the scenario, run one client shard.

    The worker's telemetry crosses the process boundary as a snapshot
    (the live :class:`Telemetry` holds unpicklable state); the
    coordinator absorbs the snapshots order-insensitively.
    """
    scenario_config, campaign_config, start, stop = payload
    engine = campaign_config.engine or scenario_config.engine
    telemetry = Telemetry(
        RunContext(
            seed=scenario_config.seed,
            engine=engine,
            workers=1,
            config_hash=config_digest(scenario_config),
        )
    )
    # The rebuild is real per-worker work; timing it keeps the merged
    # phase tree honest about where the sharded run's seconds go.
    with telemetry.span("scenario_build"):
        scenario = Scenario.build(scenario_config)
    runner = CampaignRunner(
        scenario, campaign_config, client_slice=(start, stop),
        telemetry=telemetry,
    )
    dataset = runner.run()
    assert runner.stats is not None
    return dataset, runner.stats, runner.telemetry.snapshot()


class ParallelCampaignRunner:
    """Runs a campaign sharded across worker processes.

    Drop-in equivalent of :class:`CampaignRunner` — same constructor
    shape, same :meth:`run` contract, same :attr:`stats` afterwards — but
    the client population is partitioned into contiguous shards executed
    by a :mod:`multiprocessing` pool and merged.  Results are
    bit-identical to a serial run (same :meth:`StudyDataset.digest`).

    Args:
        scenario: The built study environment.
        config: Campaign knobs.  ``progress_callback`` is ignored for
            sharded runs (workers cannot call back into this process).
        workers: Worker-process count; ``None`` resolves
            ``config.workers``, then ``scenario.config.workers``.  A
            resolved count of 1 runs serially in-process.
    """

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[CampaignConfig] = None,
        workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._scenario = scenario
        self._config = config or CampaignConfig()
        if workers is None:
            workers = self._config.workers
        if workers is None:
            workers = scenario.config.workers
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self._workers = min(workers, len(scenario.clients))
        engine = self._config.engine or scenario.config.engine
        self.telemetry = telemetry or Telemetry(
            RunContext(
                seed=scenario.config.seed,
                engine=engine,
                workers=self._workers,
                config_hash=config_digest(scenario.config),
            )
        )
        self.stats: Optional[CampaignStats] = None

    @property
    def workers(self) -> int:
        """The resolved worker count."""
        return self._workers

    def run(self) -> StudyDataset:
        """Execute the campaign and return the merged dataset."""
        if self._workers == 1:
            runner = CampaignRunner(
                self._scenario, self._config, telemetry=self.telemetry
            )
            dataset = runner.run()
            self.stats = runner.stats
            return dataset

        run_start = time.perf_counter()
        scenario = self._scenario
        worker_config = dataclasses.replace(
            self._config, progress_callback=None, workers=None
        )
        payloads = [
            (scenario.config, worker_config, start, stop)
            for start, stop in shard_bounds(
                len(scenario.clients), self._workers
            )
        ]
        _log.info(
            "dispatching shards",
            extra={"shards": len(payloads), "start_method": _START_METHOD},
        )
        context = multiprocessing.get_context(_START_METHOD)
        with context.Pool(processes=self._workers) as pool:
            results = pool.map(_run_shard, payloads)

        dataset, stats, _ = results[0]
        for shard_dataset, shard_stats, _ in results[1:]:
            dataset.merge(shard_dataset)
            stats.merge(shard_stats)
        # Absorb every shard's telemetry snapshot (order-insensitive:
        # counters/histograms/spans add, gauges combine by policy), then
        # stamp the coordinator's own wall-clock — shard wall-clocks
        # overlap, so their sum/max is not the run's elapsed time.
        for _, _, shard_snapshot in results:
            self.telemetry.absorb(shard_snapshot)
        wall_seconds = time.perf_counter() - run_start
        self.telemetry.gauge(
            "campaign.wall_seconds",
            "campaign wall-clock (max across concurrent shards)",
        ).set(wall_seconds)
        stats.wall_seconds = wall_seconds
        stats.workers = self._workers
        self.stats = stats
        # Re-home the merged dataset on this process's client tuple (the
        # workers' rebuilt clients are equal by value, but analyses that
        # compare identity expect the coordinator's scenario objects).
        dataset.clients = scenario.clients
        return dataset


def run_campaign(
    scenario: Scenario,
    config: Optional[CampaignConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[StudyDataset, CampaignStats]:
    """Run a campaign with the configured worker count.

    Dispatches to :class:`ParallelCampaignRunner` (which runs serially
    in-process when the resolved worker count is 1) and returns both the
    dataset and the run's :class:`CampaignStats`.  Pass ``telemetry`` to
    collect the run's metrics/spans into a caller-owned registry.
    """
    runner = ParallelCampaignRunner(scenario, config, telemetry=telemetry)
    dataset = runner.run()
    assert runner.stats is not None
    return dataset, runner.stats
