#!/usr/bin/env python3
"""Withdrawing an anycast front-end: the §2 cascading-overload hazard.

"If a particular front-end becomes overloaded, it is difficult to
gradually direct traffic away from that front-end ... Simply withdrawing
the route to take that front-end offline can lead to cascading
overloading of nearby front-ends."  (This is why FastRoute exists.)

This example withdraws the busiest front-end under two provisioning
regimes and shows where its load lands — stable with generous headroom,
cascading when capacity is tight.

Run:
    python examples/failover_cascade.py
"""

from repro import Scenario, ScenarioConfig
from repro.cdn.failover import WithdrawalSimulator
from repro.clients.population import ClientPopulationConfig
from repro.simulation.clock import SimulationCalendar


def main() -> None:
    scenario = Scenario.build(
        ScenarioConfig(
            seed=2015,
            population=ClientPopulationConfig(prefix_count=500),
            calendar=SimulationCalendar(num_days=1),
        )
    )

    # Two drills: draining a lightly loaded front-end with generous headroom
    # (routine maintenance, should be stable), and yanking the busiest
    # front-end with tight provisioning (the §2 hazard).
    for headroom, pick in ((1.6, "smallest"), (1.1, "busiest")):
        simulator = WithdrawalSimulator(
            scenario.topology,
            scenario.deployment,
            scenario.clients,
            headroom=headroom,
        )
        baseline = simulator.baseline_loads
        loaded = sorted(
            (fe for fe, load in baseline.items() if load > 0),
            key=baseline.get,
        )
        victim = loaded[-1] if pick == "busiest" else loaded[0]
        print(
            f"\n=== headroom {headroom:.2f}x — withdrawing the {pick} "
            f"front-end {victim} "
            f"(steady-state load {baseline[victim]:,.0f} queries/day) ==="
        )

        after = simulator.loads_after_withdrawal([victim])
        gains = sorted(
            (
                (after[fe] - baseline.get(fe, 0.0), fe)
                for fe in after
            ),
            reverse=True,
        )
        print("Where the load went:")
        for gain, frontend_id in gains[:5]:
            if gain <= 0:
                break
            capacity = simulator.capacities[frontend_id]
            status = "OVER" if after[frontend_id] > capacity else "ok"
            print(
                f"  {frontend_id:8s} +{gain:10,.0f}  "
                f"now {after[frontend_id]:10,.0f} / cap {capacity:10,.0f}  "
                f"[{status}]"
            )

        result = simulator.cascade([victim], max_rounds=6)
        print(result.format())


if __name__ == "__main__":
    main()
