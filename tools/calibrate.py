"""Calibration harness: run a mid-sized study and print paper-vs-measured."""
import sys, time
from repro import AnycastStudy, ScenarioConfig
from repro.clients.population import ClientPopulationConfig
from repro.simulation.clock import SimulationCalendar

prefixes = int(sys.argv[1]) if len(sys.argv) > 1 else 500
days = int(sys.argv[2]) if len(sys.argv) > 2 else 10
seed = int(sys.argv[3]) if len(sys.argv) > 3 else 2015

cfg = ScenarioConfig(
    seed=seed,
    population=ClientPopulationConfig(prefix_count=prefixes),
    calendar=SimulationCalendar(num_days=days),
)
study = AnycastStudy(cfg)
t0 = time.time(); ds = study.dataset
print('campaign %.1fs meas=%d beacons=%d' % (time.time()-t0, ds.measurement_count, ds.beacon_count))
f3 = study.fig3_anycast_penalty()
for r, d in f3.fraction_slower.items():
    print('fig3 %-14s' % r, {int(k): round(v, 3) for k, v in sorted(d.items())},
          '| paper(world): >=25: ~0.20, >=100: ~0.09')
f4 = study.fig4_anycast_distance()
print('fig4 nearest=%.2f/%.2fw (paper .55, weighted better) within2000=%.2f/%.2fw (paper .82/.87) p75past=%.0f (~400) p90past=%.0f (~1375)'
      % (f4.fraction_at_nearest, f4.fraction_at_nearest_weighted,
         f4.fraction_within_2000km, f4.fraction_within_2000km_weighted,
         f4.past_closest_p75_km, f4.past_closest_p90_km))
f5 = study.fig5_poor_path_prevalence()
print('fig5 any=%.3f(.19) >10=%.3f(.12) >25=%.3f >50=%.3f(.04) >100=%.3f'
      % tuple(f5.mean_fraction(t) for t in (1.0, 10, 25, 50, 100)))
f6 = study.fig6_poor_path_duration()
print('fig6 1day=%.2f(.60) 5+days=%.2f(.10) 5+consec=%.2f(.05) n=%d'
      % (f6.fraction_single_day, f6.fraction_five_plus_days,
         f6.fraction_five_plus_consecutive, f6.ever_poor_count))
f7 = study.fig7_frontend_affinity()
print('fig7 day1=%.3f(.07) week=%.3f(.21) increments:' % (f7.first_day_fraction, f7.week_fraction),
      [round(f7.daily_increment(i), 3) for i in range(min(7, days))])
f8 = study.fig8_switch_distance()
print('fig8 median=%.0f(483) within2000=%.2f(.83) n=%d' % (f8.median_km, f8.fraction_within_2000km, f8.switch_count))
f9 = study.fig9_prediction()
for s in f9.summaries:
    print('fig9', s.format(), '| paper ECS: imp .30 worse .10; LDNS: imp .27 worse .17')
f1 = study.fig1_diminishing_returns()
print('fig1 medians:', {k: round(v, 1) for k, v in sorted(f1.medians_ms.items())}, '(flat after N=5)')
f2 = study.fig2_client_distance()
print('fig2 medians:', [round(m) for m in f2.medians_km], '(paper 280/700/~1000/1300)')
