"""Fault injection and resilient-execution primitives.

Degraded and partial measurement is the normal operating mode of a
production anycast pipeline — front-ends drain, routes flap, log
shipments go missing (§6 of the paper; *Anycast Performance in Context*
treats partial data as the default case).  This package supplies the
chaos side of that story for the simulated pipeline:

* :class:`FaultPlan` / :class:`FaultSpec` / :class:`FaultKind` — a
  deterministic, seed-derived schedule of worker crashes, hangs,
  transient exceptions, corrupted shard payloads, and merge failures;
* :class:`CompiledFaultPlan` — the plan resolved to ``(shard, attempt)``
  firing points, identical across engines and worker counts;
* :class:`WorkerFaultInjector` and the ``Injected*Error`` family — the
  live injection sites the campaign runners call into;
* the dirty-data mode: ``record-*`` fault kinds (:data:`RECORD_KINDS`)
  compile via :meth:`FaultPlan.compile_records` to ``(day, client)``
  cells, and :class:`RecordFaultInjector` substitutes NaN / clock-skewed
  / truncated values into individual records so chaos tests can exercise
  the validation gate in :mod:`repro.measurement.validate`.

The resilient executor that rides through these faults (retries with
backoff, shard timeouts, checkpoint resume, graceful degradation) lives
in :mod:`repro.simulation.parallel`.
"""

from repro.faults.inject import (
    CLOCK_SKEW_STEP_MS,
    InjectedCrashError,
    InjectedFaultError,
    InjectedMergeError,
    InjectedTransientError,
    RecordFaultInjector,
    WorkerFaultInjector,
    corrupt_payload,
)
from repro.faults.plan import (
    DEFAULT_HANG_SECONDS,
    RECORD_KINDS,
    CompiledFaultPlan,
    CompiledRecordFaultPlan,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "CLOCK_SKEW_STEP_MS",
    "DEFAULT_HANG_SECONDS",
    "RECORD_KINDS",
    "CompiledFaultPlan",
    "CompiledRecordFaultPlan",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedFaultError",
    "InjectedMergeError",
    "InjectedTransientError",
    "RecordFaultInjector",
    "WorkerFaultInjector",
    "corrupt_payload",
]
