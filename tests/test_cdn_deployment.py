"""Tests for CDN deployment and attachment (repro.cdn.deployment)."""

import pytest

from repro.errors import ConfigurationError
from repro.cdn.deployment import (
    DEFAULT_FRONTEND_METROS,
    CdnDeployment,
    DeploymentConfig,
    attach_cdn,
)
from repro.cdn.frontend import FrontEnd
from repro.geo.metros import MetroDatabase
from repro.net.ip import IPv4Prefix
from repro.net.topology import (
    AsRole,
    LinkKind,
    Relationship,
    TopologyBuilder,
    populate_base_internet,
)


class TestDefaults:
    def test_default_metros_exist(self):
        db = MetroDatabase()
        for code in DEFAULT_FRONTEND_METROS:
            assert code in db

    def test_default_scale_is_dozens(self):
        # §4: the measured CDN sits at the Level3/MaxCDN scale.
        assert 50 <= len(DEFAULT_FRONTEND_METROS) <= 80

    def test_default_metros_unique(self):
        assert len(set(DEFAULT_FRONTEND_METROS)) == len(DEFAULT_FRONTEND_METROS)

    def test_default_skews_na_eu(self):
        db = MetroDatabase()
        regions = [db.get(c).region.value for c in DEFAULT_FRONTEND_METROS]
        na_eu = sum(1 for r in regions if r in ("north-america", "europe"))
        assert na_eu / len(regions) > 0.6


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transit_peering_probability": -0.1},
            {"access_peering_probability": 1.1},
            {"interconnect_density": 2.0},
            {"peering_only_metro_count": -1},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            DeploymentConfig(**kwargs)

    def test_duplicate_frontend_metros_rejected(self, metro_db):
        builder = TopologyBuilder(metro_db)
        populate_base_internet(builder, seed=1)
        with pytest.raises(ConfigurationError, match="duplicate"):
            attach_cdn(builder, DeploymentConfig(frontend_metros=("nyc", "nyc")))

    def test_unknown_frontend_metro_rejected(self, metro_db):
        builder = TopologyBuilder(metro_db)
        populate_base_internet(builder, seed=1)
        with pytest.raises(ConfigurationError, match="unknown"):
            attach_cdn(builder, DeploymentConfig(frontend_metros=("atlantis",)))

    def test_attach_requires_base_internet(self, metro_db):
        with pytest.raises(ConfigurationError, match="tier-1"):
            attach_cdn(TopologyBuilder(metro_db))


class TestAttachment:
    def test_deployment_shape(self, cdn_world):
        topology, deployment, _ = cdn_world
        assert len(deployment.frontends) == len(DEFAULT_FRONTEND_METROS)
        assert deployment.asn in topology
        assert topology.get(deployment.asn).role is AsRole.CDN

    def test_cdn_pops_cover_frontends_and_peering_only(self, cdn_world):
        topology, deployment, _ = cdn_world
        cdn_as = topology.get(deployment.asn)
        assert cdn_as.pop_metros == deployment.pop_metros
        assert deployment.frontend_metros <= deployment.pop_metros
        assert deployment.peering_only_metros.isdisjoint(
            deployment.frontend_metros
        )

    def test_unicast_prefixes_disjoint(self, cdn_world):
        _, deployment, _ = cdn_world
        prefixes = [fe.unicast_prefix for fe in deployment.frontends]
        assert len(set(prefixes)) == len(prefixes)
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.contains_prefix(b)

    def test_anycast_prefix_outside_unicast_pool(self, cdn_world):
        _, deployment, _ = cdn_world
        pool = IPv4Prefix.parse(DeploymentConfig().unicast_pool)
        assert not pool.contains_prefix(deployment.anycast_prefix)

    def test_backstop_transit_relationship(self, cdn_world):
        topology, deployment, _ = cdn_world
        providers = [
            n
            for n in topology.neighbors(deployment.asn)
            if n.relationship is Relationship.PROVIDER
        ]
        assert len(providers) == 1
        backstop = topology.get(providers[0].asn)
        assert backstop.role is AsRole.TIER1
        # The backstop interconnects at every CDN PoP.
        assert providers[0].metros == deployment.pop_metros

    def test_peers_with_every_tier1_sharing_a_metro(self, cdn_world):
        topology, deployment, _ = cdn_world
        cdn_neighbors = {n.asn for n in topology.neighbors(deployment.asn)}
        for tier1 in topology.ases_with_role(AsRole.TIER1):
            if tier1.pop_metros & deployment.pop_metros:
                assert tier1.asn in cdn_neighbors

    def test_peering_only_metros_near_frontends(self, cdn_world):
        topology, deployment, _ = cdn_world
        db = topology.metro_db
        frontend_locs = [
            db.get(c).location for c in deployment.frontend_metros
        ]
        for code in deployment.peering_only_metros:
            loc = db.get(code).location
            nearest = min(loc.distance_km(f) for f in frontend_locs)
            assert nearest < 1500.0, code

    def test_frontend_lookup_helpers(self, cdn_world):
        _, deployment, _ = cdn_world
        fe = deployment.frontends[0]
        assert deployment.frontend_by_id(fe.frontend_id) is fe
        assert deployment.frontend_at_metro(fe.metro_code) is fe
        assert deployment.has_frontend_at(fe.metro_code)
        with pytest.raises(ConfigurationError):
            deployment.frontend_by_id("fe-nope")
        with pytest.raises(ConfigurationError):
            deployment.frontend_at_metro("atlantis")

    def test_deployment_requires_frontends(self):
        with pytest.raises(ConfigurationError):
            CdnDeployment(
                asn=1,
                frontends=(),
                anycast_prefix=IPv4Prefix.parse("192.0.2.0/24"),
                peering_only_metros=frozenset(),
            )

    def test_deterministic_attachment(self, metro_db):
        def build(seed):
            builder = TopologyBuilder(metro_db)
            populate_base_internet(builder, seed=3)
            deployment = attach_cdn(builder, seed=seed)
            topo = builder.build()
            return deployment, len(topo.links)

        d1, l1 = build(5)
        d2, l2 = build(5)
        assert d1.peering_only_metros == d2.peering_only_metros
        assert l1 == l2
