"""Tests for ECS scopes and the scoped resolver cache."""

import pytest

from repro.errors import ConfigurationError
from repro.dns.authoritative import (
    ANYCAST_TARGET,
    AnycastPolicy,
    AuthoritativeServer,
    DnsQuery,
    DnsResponse,
    StaticMappingPolicy,
)
from repro.dns.ecs import EcsOption
from repro.dns.scoped_cache import EcsResolver, ScopedDnsCache
from repro.net.ip import IPv4Address


def addr(text):
    return IPv4Address.parse(text)


class TestAuthoritativeScopes:
    def test_ecs_decision_carries_scope(self):
        policy = StaticMappingPolicy(ecs_mapping={"10.0.0.0/24": "fe-nyc"})
        server = AuthoritativeServer(policy)
        query = DnsQuery(
            "h", "ldns-1", ecs=EcsOption.for_address(addr("10.0.0.7"))
        )
        response = server.resolve(query)
        assert response.target_id == "fe-nyc"
        assert response.ecs_scope_len == 24

    def test_ldns_decision_has_zero_scope(self):
        policy = StaticMappingPolicy(ldns_mapping={"ldns-1": "fe-lon"})
        server = AuthoritativeServer(policy)
        query = DnsQuery(
            "h", "ldns-1", ecs=EcsOption.for_address(addr("10.9.9.9"))
        )
        response = server.resolve(query)
        assert response.target_id == "fe-lon"
        assert response.ecs_scope_len == 0

    def test_plain_policy_has_zero_scope(self):
        server = AuthoritativeServer(AnycastPolicy())
        query = DnsQuery(
            "h", "ldns-1", ecs=EcsOption.for_address(addr("10.0.0.1"))
        )
        assert server.resolve(query).ecs_scope_len == 0


class TestScopedCache:
    def test_scope0_shared_across_clients(self):
        cache = ScopedDnsCache()
        response = DnsResponse("anycast", ttl_seconds=60.0, ecs_scope_len=0)
        cache.put("h", response, addr("10.0.0.1"), now=0.0)
        assert cache.get("h", addr("192.168.9.9"), now=1.0) == "anycast"

    def test_scoped_entry_limited_to_subnet(self):
        cache = ScopedDnsCache()
        response = DnsResponse("fe-nyc", ttl_seconds=60.0, ecs_scope_len=24)
        cache.put("h", response, addr("10.0.0.1"), now=0.0)
        assert cache.get("h", addr("10.0.0.200"), now=1.0) == "fe-nyc"
        assert cache.get("h", addr("10.0.1.1"), now=1.0) is None

    def test_scoped_takes_precedence_over_shared(self):
        cache = ScopedDnsCache()
        cache.put("h", DnsResponse("anycast", 60.0, 0), addr("10.0.0.1"), 0.0)
        cache.put("h", DnsResponse("fe-nyc", 60.0, 24), addr("10.0.0.1"), 0.0)
        assert cache.get("h", addr("10.0.0.5"), 1.0) == "fe-nyc"
        assert cache.get("h", addr("10.0.9.5"), 1.0) == "anycast"

    def test_expiry(self):
        cache = ScopedDnsCache()
        cache.put("h", DnsResponse("fe-nyc", 10.0, 24), addr("10.0.0.1"), 0.0)
        assert cache.get("h", addr("10.0.0.1"), 11.0) is None

    def test_same_scope_replaced(self):
        cache = ScopedDnsCache()
        cache.put("h", DnsResponse("fe-old", 60.0, 24), addr("10.0.0.1"), 0.0)
        cache.put("h", DnsResponse("fe-new", 60.0, 24), addr("10.0.0.1"), 1.0)
        assert cache.entry_count("h") == 1
        assert cache.get("h", addr("10.0.0.1"), 2.0) == "fe-new"

    def test_stats(self):
        cache = ScopedDnsCache()
        cache.get("h", addr("10.0.0.1"), 0.0)
        cache.put("h", DnsResponse("t", 60.0, 0), addr("10.0.0.1"), 0.0)
        cache.get("h", addr("10.0.0.1"), 1.0)
        assert cache.stats == (1, 1)

    def test_bad_ttl_rejected(self):
        cache = ScopedDnsCache()
        with pytest.raises(ConfigurationError):
            cache.put("h", DnsResponse("t", 0.0, 0), addr("10.0.0.1"), 0.0)


class TestEcsResolver:
    def test_per_prefix_answers_through_one_resolver(self):
        """Two clients of the same LDNS in different /24s get their own
        answers — the whole point of ECS (§2)."""
        policy = StaticMappingPolicy(
            ecs_mapping={"10.0.0.0/24": "fe-nyc", "10.0.1.0/24": "fe-lon"}
        )
        server = AuthoritativeServer(policy)
        resolver = EcsResolver("ldns-1", server)
        assert resolver.resolve("h", addr("10.0.0.5")) == "fe-nyc"
        assert resolver.resolve("h", addr("10.0.1.5")) == "fe-lon"
        assert resolver.resolve("h", addr("10.0.2.5")) == ANYCAST_TARGET

    def test_cache_prevents_repeat_queries(self):
        policy = StaticMappingPolicy(ecs_mapping={"10.0.0.0/24": "fe-nyc"})
        server = AuthoritativeServer(policy)
        resolver = EcsResolver("ldns-1", server)
        resolver.resolve("h", addr("10.0.0.5"), now=0.0)
        resolver.resolve("h", addr("10.0.0.9"), now=1.0)  # same /24 -> hit
        assert len(server.query_log()) == 1

    def test_scope0_answer_shared_across_prefixes(self):
        server = AuthoritativeServer(AnycastPolicy())
        resolver = EcsResolver("ldns-1", server)
        resolver.resolve("h", addr("10.0.0.5"), now=0.0)
        resolver.resolve("h", addr("172.16.0.1"), now=1.0)
        # The anycast answer carries scope 0, so one upstream query serves
        # every client of the resolver.
        assert len(server.query_log()) == 1

    def test_bad_source_length(self):
        server = AuthoritativeServer(AnycastPolicy())
        with pytest.raises(ConfigurationError):
            EcsResolver("ldns-1", server, source_prefix_length=0)
