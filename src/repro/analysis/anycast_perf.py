"""Figs 3–4: how well does anycast do?

* **Fig 3** — CCDF over beacon requests of (anycast latency − best of the
  three measured unicast latencies), split World / United States / Europe.
  Paper headline: anycast ≥25 ms slower for ~20% of requests, just under
  10% are ≥100 ms slower.
* **Fig 4** — CDF over one day of production (passive) traffic of the
  distance from client to serving front-end, and of the distance *past*
  the closest front-end, both unweighted and query-volume-weighted.
  Paper: ~55% land on the nearest front-end; ~75% within ~400 km of it;
  82% of clients / 87% of volume within 2000 km of their front-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.analysis.stats import (
    CdfSeries,
    WeightedDistribution,
    linear_grid,
    log2_grid,
)
from repro.cdn.frontend import FrontEnd, nearest_frontends
from repro.geo.coords import haversine_km
from repro.geo.geolocation import GeolocationDatabase
from repro.simulation.dataset import StudyDataset

#: Region labels the Fig 3 split uses.
WORLD = "world"
UNITED_STATES = "united-states"
EUROPE = "europe"


@dataclass(frozen=True)
class AnycastPenaltyResult:
    """Fig 3 result."""

    series: Tuple[CdfSeries, ...]
    #: region label -> fraction of requests with anycast at least X ms
    #: slower than best measured unicast, for the paper's key thresholds.
    fraction_slower: Dict[str, Dict[float, float]]
    request_count: int

    def format(self) -> str:
        """Paper-style summary plus CCDF rows."""
        lines = [
            "Fig 3 — CCDF of (anycast - best measured unicast) per request"
        ]
        for region, by_threshold in self.fraction_slower.items():
            parts = ", ".join(
                f">={threshold:.0f}ms: {fraction:5.1%}"
                for threshold, fraction in sorted(by_threshold.items())
            )
            lines.append(f"  {region:14s} {parts}")
        for series in self.series:
            lines.append(series.format_rows())
        return "\n".join(lines)


def anycast_penalty_ccdf(
    dataset: StudyDataset,
    regions: Sequence[str] = (EUROPE, WORLD, UNITED_STATES),
    thresholds: Sequence[float] = (1.0, 10.0, 25.0, 50.0, 100.0),
) -> AnycastPenaltyResult:
    """Compute Fig 3 from the per-request diff log.

    Works in both diff-log modes: an exact log computes the CCDF over
    its raw rows; a bounded log answers from its merged per-region
    sketches, within the sketch's relative error bound.
    """
    diffs = dataset.request_diffs
    if len(diffs) == 0:
        raise AnalysisError("no beacon requests recorded")
    grid = linear_grid(0.0, 100.0, 5.0)
    series: List[CdfSeries] = []
    fraction_slower: Dict[str, Dict[float, float]] = {}
    for region in regions:
        region_name = None if region == WORLD else region
        if diffs.is_bounded:
            sketch = diffs.diff_sketch(region_name)
            if sketch is None or sketch.count == 0:
                continue
            series.append(
                CdfSeries(
                    label=region,
                    xs=tuple(float(x) for x in grid),
                    ys=tuple(sketch.fraction_above(x) for x in grid),
                )
            )
            fraction_slower[region] = {
                float(threshold): sketch.fraction_above(threshold - 1e-9)
                for threshold in thresholds
            }
            continue
        values = diffs.diffs(region_name)
        if not values:
            continue
        dist = WeightedDistribution(values)
        series.append(dist.ccdf_series(region, grid))
        fraction_slower[region] = {
            float(threshold): dist.fraction_above(threshold - 1e-9)
            for threshold in thresholds
        }
    if not series:
        raise AnalysisError("no requests matched any requested region")
    return AnycastPenaltyResult(
        series=tuple(series),
        fraction_slower=fraction_slower,
        request_count=len(diffs),
    )


@dataclass(frozen=True)
class AnycastDistanceResult:
    """Fig 4 result: the four CDFs and headline fractions."""

    series: Tuple[CdfSeries, ...]
    fraction_at_nearest: float
    fraction_at_nearest_weighted: float
    fraction_within_2000km: float
    fraction_within_2000km_weighted: float
    past_closest_p75_km: float
    past_closest_p90_km: float

    def format(self) -> str:
        """Paper-style summary plus CDF rows."""
        lines = [
            "Fig 4 — client-to-anycast-front-end distance (one day of "
            "production traffic)",
            f"  directed to nearest front-end: {self.fraction_at_nearest:5.1%}"
            f" (weighted {self.fraction_at_nearest_weighted:5.1%})",
            f"  within 2000 km of front-end:   "
            f"{self.fraction_within_2000km:5.1%}"
            f" (weighted {self.fraction_within_2000km_weighted:5.1%})",
            f"  past-closest p75: {self.past_closest_p75_km:6.0f} km, "
            f"p90: {self.past_closest_p90_km:6.0f} km",
        ]
        for series in self.series:
            lines.append(series.format_rows())
        return "\n".join(lines)


def anycast_distance_cdf(
    dataset: StudyDataset,
    frontends: Sequence[FrontEnd],
    geolocation: GeolocationDatabase,
    day: int = 0,
    nearest_epsilon_km: float = 1.0,
) -> AnycastDistanceResult:
    """Compute Fig 4 from one day of passive logs.

    Distances use geolocated client positions — including the error
    fraction, which is the paper's footnote-1 caveat about very long
    apparent distances.

    Args:
        day: Which production day to analyze.
        nearest_epsilon_km: Slack under which "distance past closest"
            counts as zero (geolocation is not meter-accurate).
    """
    frontends_by_id = {fe.frontend_id: fe for fe in frontends}
    frontends_tuple = tuple(frontends)

    to_frontend: List[float] = []
    past_closest: List[float] = []
    weights: List[float] = []
    for client_key, counts in dataset.passive.iter_day(day):
        frontend_id = max(counts.items(), key=lambda kv: (kv[1], kv[0]))[0]
        frontend = frontends_by_id.get(frontend_id)
        if frontend is None:
            raise AnalysisError(f"passive log names unknown {frontend_id!r}")
        location = geolocation.lookup(client_key)
        distance = haversine_km(location, frontend.location)
        nearest = nearest_frontends(frontends_tuple, location, 1)[0]
        nearest_km = haversine_km(location, nearest.location)
        to_frontend.append(distance)
        past_closest.append(max(0.0, distance - nearest_km))
        weights.append(float(sum(counts.values())))

    if not to_frontend:
        raise AnalysisError(f"no passive traffic on day {day}")

    grid = log2_grid(64.0, 8192.0)
    dist_plain = WeightedDistribution(to_frontend)
    dist_weighted = WeightedDistribution(to_frontend, weights)
    past_plain = WeightedDistribution(past_closest)
    past_weighted = WeightedDistribution(past_closest, weights)
    series = (
        dist_weighted.cdf_series("weighted clients to front-end", grid),
        dist_plain.cdf_series("clients to front-end", grid),
        past_weighted.cdf_series("weighted clients past closest", grid),
        past_plain.cdf_series("clients past closest", grid),
    )
    return AnycastDistanceResult(
        series=series,
        fraction_at_nearest=past_plain.fraction_at_or_below(nearest_epsilon_km),
        fraction_at_nearest_weighted=past_weighted.fraction_at_or_below(
            nearest_epsilon_km
        ),
        fraction_within_2000km=dist_plain.fraction_at_or_below(2000.0),
        fraction_within_2000km_weighted=dist_weighted.fraction_at_or_below(
            2000.0
        ),
        past_closest_p75_km=past_plain.quantile(0.75),
        past_closest_p90_km=past_plain.quantile(0.90),
    )
