"""Counter-based random streams for the whole-day matrix engine.

The chunked vectorized engine draws from one sequential PCG64 generator
per (seed, day, client): correctness is easy, but a cross-client matrix
engine would have to replay every client's stream in order, which caps
throughput at the sequential-draw floor.  This module replaces sequential
consumption with *counter-based* streams: every random value used by a
beacon synthesis is a pure function of

    (campaign seed, day, client index, beacon row, slot)

hashed through a splitmix64-style finalizer.  Any engine — per-client
oracle or whole-day matrix — evaluates the same function at the same
coordinates and obtains bit-identical values, in any batching order, over
any subset of positions.  That is what keeps ``serial == sharded ==
matrix`` digests exact without ever sharing generator state.

Only the *beacon RTT synthesis* terms live here (rank selection, Gumbel
target picks, jitter/spike/overhead noise, per-day path variation).  The
per-client scalar streams — workload counts, churn, episodes, passive
apportionment, resource-timing support, static path offsets — keep their
existing ``derive_rng`` sequential streams, so those observable counts
are unchanged across every engine.
"""

from __future__ import annotations

import numpy as np

from repro.rand import derive_seed

__all__ = [
    "ROW_CAP",
    "BeaconSlotLayout",
    "DayKeys",
    "gumbel_from_uniform",
    "hashed_uniform",
    "normal_from_uniforms",
    "normal_pair_from_uniforms",
]

# Maximum beacons per (client, day) the slot addressing can represent.
# Row ids are packed as client_index * ROW_CAP + row; at 2**26 rows per
# client-day the packed id stays far below 2**64 even with the slot
# stride multiplied in (indices < 2**21, strides < 2**7).
ROW_CAP = 1 << 26

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_SHIFT_30 = np.uint64(30)
_SHIFT_27 = np.uint64(27)
_SHIFT_31 = np.uint64(31)
_SHIFT_11 = np.uint64(11)
# 53-bit mantissa scaling; the +2**-54 offset keeps draws strictly inside
# (0, 1) so log()/log(-log()) transforms never see 0.0 or 1.0.
_TO_UNIT = 2.0 ** -53
_HALF_ULP = 2.0 ** -54


def _mix(value: np.ndarray) -> np.ndarray:
    """One splitmix64 finalizer round (operates on uint64 arrays)."""
    value = (value ^ (value >> _SHIFT_30)) * _MIX_1
    value = (value ^ (value >> _SHIFT_27)) * _MIX_2
    return value ^ (value >> _SHIFT_31)


def hashed_uniform(key: np.uint64, gids: np.ndarray) -> np.ndarray:
    """Uniform (0, 1) doubles for draw coordinates ``gids`` under ``key``.

    Pure function of (key, gid): evaluating any subset, in any order, in
    any array shape yields the same per-coordinate values.  Two finalizer
    rounds separate the structured gid lattice (rows x slots) from the
    output; the golden-ratio premultiply decorrelates consecutive gids.
    """
    gids = np.asarray(gids, dtype=np.uint64)
    mixed = _mix(_mix(gids * _GOLDEN) ^ key)
    return (mixed >> _SHIFT_11) * _TO_UNIT + _HALF_ULP


def normal_pair_from_uniforms(
    u1: np.ndarray, u2: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Two independent standard normals per (u1, u2) pair (Box-Muller)."""
    radius = np.sqrt(-2.0 * np.log(u1))
    theta = (2.0 * np.pi) * u2
    return radius * np.cos(theta), radius * np.sin(theta)


def normal_from_uniforms(u1: np.ndarray, u2: np.ndarray) -> np.ndarray:
    """One standard normal per (u1, u2) pair (cosine branch only)."""
    return np.sqrt(-2.0 * np.log(u1)) * np.cos((2.0 * np.pi) * u2)


def gumbel_from_uniform(u: np.ndarray) -> np.ndarray:
    """Standard Gumbel(0, 1) deviates via inverse transform."""
    return -np.log(-np.log(u))


class BeaconSlotLayout:
    """Stable slot numbering for the per-row beacon draw coordinates.

    Computed from the beacon methodology alone (candidate pool size and
    target count ceilings), never from runtime state, so every engine and
    every shard agrees on which slot holds which term:

    ====================  =============================================
    slot                  term
    ====================  =============================================
    ``rank``              route-rank selection uniform
    ``pick_base + j``     Gumbel-key uniform for pool position ``j``
    ``jitter_base + k``   Box-Muller uniform ``k`` (pairs cover targets)
    ``spike_base + t``    spike-occurrence uniform for target ``t``
    ``spike_mag + 2t``    spike-magnitude Box-Muller pair for ``t``
    ``overhead + 2t``     measurement-overhead Box-Muller pair for ``t``
    ====================  =============================================
    """

    __slots__ = (
        "pool_max",
        "targets_max",
        "rank",
        "pick_base",
        "jitter_base",
        "spike_base",
        "spike_mag_base",
        "overhead_base",
        "stride",
        "path_stride",
    )

    def __init__(self, pool_max: int, targets_max: int) -> None:
        self.pool_max = int(pool_max)
        self.targets_max = int(targets_max)
        self.rank = 0
        self.pick_base = 1
        self.jitter_base = self.pick_base + self.pool_max
        jitter_pairs = (self.targets_max + 1) // 2
        self.spike_base = self.jitter_base + 2 * jitter_pairs
        self.spike_mag_base = self.spike_base + self.targets_max
        self.overhead_base = self.spike_mag_base + 2 * self.targets_max
        self.stride = self.overhead_base + 2 * self.targets_max
        # Per-(client, path) daily-variation coordinates: path slot 0 is
        # anycast, 1 the closest unicast, 2+j pool position j; each path
        # consumes 3 sub-draws (occurrence uniform + Box-Muller pair).
        self.path_stride = 3 * (2 + self.pool_max)

    def row_gids(self, client_index, rows: np.ndarray) -> np.ndarray:
        """Packed (client, row) draw-coordinate bases, scaled by stride.

        ``rows`` are *absolute* per-day beacon indices, so chunking a
        client-day at any boundary leaves every coordinate unchanged.
        ``client_index`` may be a scalar (one client's rows — the
        chunked oracle) or a per-row array (a cross-client chunk — the
        matrix engine); the coordinates are identical either way.
        """
        base = np.asarray(client_index, dtype=np.uint64) * np.uint64(ROW_CAP)
        return (base + rows.astype(np.uint64)) * np.uint64(self.stride)

    def path_gids(self, client_index: int, path_slots: np.ndarray) -> np.ndarray:
        """Daily-variation coordinate bases for (client, path slot)."""
        base = np.uint64(client_index) * np.uint64(self.path_stride)
        return base + np.asarray(path_slots, dtype=np.uint64) * np.uint64(3)


class DayKeys:
    """The two per-(seed, day) hash keys the beacon synthesis consumes.

    ``beacon`` keys the per-row draw lattice; ``daily`` keys the
    once-per-day per-(client, path) variation draws.  Separate keys keep
    the two coordinate spaces from ever colliding.
    """

    __slots__ = ("beacon", "daily")

    def __init__(self, seed: int, day: int) -> None:
        self.beacon = np.uint64(derive_seed(seed, "campaign-mat", day))
        self.daily = np.uint64(derive_seed(seed, "campaign-mat-daily", day))
