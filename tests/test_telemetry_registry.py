"""Registry semantics: counters, gauges, histograms, and their merges."""

import math
import random

import pytest

from repro.errors import ReproError, TelemetryError
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetrySnapshot,
)
from repro.telemetry.core import Telemetry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("beacons")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_negative_increment_raises(self):
        counter = Counter("beacons")
        counter.inc(3)
        with pytest.raises(TelemetryError):
            counter.inc(-1)
        assert counter.value == 3

    def test_telemetry_error_is_a_repro_error(self):
        assert issubclass(TelemetryError, ReproError)


class TestGauge:
    def test_set_replaces(self):
        gauge = Gauge("wall")
        gauge.set(2.5)
        gauge.set(1.0)
        assert gauge.value == 1.0

    @pytest.mark.parametrize(
        "merge,values,expected",
        [
            ("max", (3.0, 7.0, 5.0), 7.0),
            ("min", (3.0, -2.0, 5.0), -2.0),
            ("sum", (3.0, 7.0, 5.0), 15.0),
            ("last", (3.0, 7.0, 5.0), 5.0),
        ],
    )
    def test_combine_policies(self, merge, values, expected):
        gauge = Gauge("g", merge=merge)
        gauge.set(values[0])
        for value in values[1:]:
            gauge.combine(value)
        assert gauge.value == expected

    def test_unknown_merge_mode_raises(self):
        with pytest.raises(TelemetryError):
            Gauge("g", merge="average")


class TestHistogram:
    def test_bucket_edges_are_log_spaced(self):
        histogram = Histogram("h", start=1.0, growth=2.0, bucket_count=4)
        assert histogram.edges == (1.0, 2.0, 4.0, 8.0)

    def test_observations_land_in_correct_buckets(self):
        histogram = Histogram("h", start=1.0, growth=2.0, bucket_count=4)
        for value in (0.5, 1.0, 1.5, 3.0, 8.0, 100.0):
            histogram.observe(value)
        # <=1 -> bucket 0 (twice); <=2 -> 1; <=4 -> 2; <=8 -> 3; overflow.
        assert histogram.bucket_counts == (2, 1, 1, 1, 1)
        assert histogram.count == 6
        assert histogram.sum == pytest.approx(114.0)

    def test_invalid_layouts_raise(self):
        with pytest.raises(TelemetryError):
            Histogram("h", start=0.0)
        with pytest.raises(TelemetryError):
            Histogram("h", growth=1.0)
        with pytest.raises(TelemetryError):
            Histogram("h", bucket_count=0)

    def test_percentile_bounds(self):
        histogram = Histogram("h", start=1.0, growth=2.0, bucket_count=8)
        assert histogram.percentile(50.0) == 0.0
        histogram.observe_many([1.0] * 100)
        assert histogram.percentile(50.0) <= 1.0
        with pytest.raises(TelemetryError):
            histogram.percentile(101.0)

    def test_percentile_tracks_distribution(self):
        histogram = Histogram("h", start=1e-3, growth=1.5, bucket_count=40)
        rng = random.Random(7)
        values = [rng.uniform(0.01, 10.0) for _ in range(2000)]
        histogram.observe_many(values)
        values.sort()
        for q in (50.0, 90.0, 99.0):
            exact = values[int(q / 100.0 * len(values)) - 1]
            estimate = histogram.percentile(q)
            # Log-bucketed estimates are within one growth factor.
            assert exact / 1.5 <= estimate <= exact * 1.5

    def test_absorb_rejects_mismatched_bucket_count(self):
        histogram = Histogram("h", bucket_count=8)
        with pytest.raises(TelemetryError):
            histogram.absorb([0] * 4, 0.0, 0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("beacons")
        second = registry.counter("beacons")
        assert first is second
        assert len(registry) == 1

    def test_double_registration_raises(self):
        registry = MetricsRegistry()
        registry.register(Counter("beacons"))
        with pytest.raises(TelemetryError):
            registry.register(Counter("beacons"))

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")
        with pytest.raises(TelemetryError):
            registry.histogram("x")

    def test_gauge_policy_conflict_raises(self):
        registry = MetricsRegistry()
        registry.gauge("wall", merge="max")
        with pytest.raises(TelemetryError):
            registry.gauge("wall", merge="sum")

    def test_histogram_layout_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", start=1.0, growth=2.0, bucket_count=8)
        with pytest.raises(TelemetryError):
            registry.histogram("h", start=1.0, growth=2.0, bucket_count=16)

    def test_kind_accessors_partition_metrics(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        registry.histogram("h")
        assert [m.name for m in registry.counters()] == ["c"]
        assert [m.name for m in registry.gauges()] == ["g"]
        assert [m.name for m in registry.histograms()] == ["h"]


def _shard_snapshot(seed: int) -> TelemetrySnapshot:
    """A synthetic worker snapshot with deterministic pseudo-data."""
    telemetry = Telemetry({"seed": 11, "engine": "reference"})
    rng = random.Random(seed)
    telemetry.counter("beacons").inc(rng.randrange(1, 500))
    telemetry.gauge("wall", merge="max").set(rng.uniform(0.1, 5.0))
    histogram = telemetry.histogram("latency")
    histogram.observe_many(rng.uniform(1e-4, 10.0) for _ in range(300))
    telemetry.spans.record_seconds("campaign", rng.uniform(0.5, 2.0))
    telemetry.spans.record_seconds(
        "campaign/day", rng.uniform(0.1, 1.0), index=seed % 3
    )
    return telemetry.snapshot()


class TestSnapshotMerge:
    def test_histogram_merge_is_order_insensitive(self):
        orderings = [
            list(range(6)),
            list(reversed(range(6))),
            [3, 0, 5, 1, 4, 2],
        ]
        merged = []
        for ordering in orderings:
            base = TelemetrySnapshot()
            for position in ordering:
                base.merge(_shard_snapshot(position))
            merged.append(base)
        first = merged[0]
        for other in merged[1:]:
            # Integer state (bucket counts, observation counts, counters,
            # span entry counts) merges bit-identically in any order;
            # float sums only up to addition-order rounding.
            assert other.counters == first.counters
            for name, hist in first.histograms.items():
                assert other.histograms[name]["counts"] == hist["counts"]
                assert (
                    other.histograms[name]["observations"]
                    == hist["observations"]
                )
                assert other.histograms[name]["sum"] == pytest.approx(
                    hist["sum"]
                )
            assert other.gauges == first.gauges  # "max" is order-free
            for path, record in first.spans.items():
                assert other.spans[path].count == record.count
                assert other.spans[path].seconds == pytest.approx(
                    record.seconds
                )

    def test_counters_and_spans_add(self):
        merged = _shard_snapshot(0).merge(_shard_snapshot(1))
        expected = (
            _shard_snapshot(0).counters["beacons"]
            + _shard_snapshot(1).counters["beacons"]
        )
        assert merged.counters["beacons"] == expected
        expected_seconds = (
            _shard_snapshot(0).spans["campaign"].seconds
            + _shard_snapshot(1).spans["campaign"].seconds
        )
        assert merged.spans["campaign"].seconds == pytest.approx(
            expected_seconds
        )

    def test_context_conflict_raises(self):
        a = _shard_snapshot(0)
        b = _shard_snapshot(1)
        b.context["seed"] = 99
        with pytest.raises(TelemetryError):
            a.merge(b)

    def test_workers_context_key_is_exempt(self):
        a = _shard_snapshot(0)
        b = _shard_snapshot(1)
        a.context["workers"] = 4
        b.context["workers"] = 1
        merged = a.merge(b)
        assert merged.context["workers"] == 4

    def test_histogram_layout_conflict_raises(self):
        a = _shard_snapshot(0)
        b = _shard_snapshot(1)
        b.histograms["latency"]["bucket_count"] = 12
        with pytest.raises(TelemetryError):
            a.merge(b)


class TestSerialization:
    def test_json_round_trip(self):
        snapshot = _shard_snapshot(3)
        restored = TelemetrySnapshot.from_json(snapshot.to_json())
        assert restored.to_json() == snapshot.to_json()
        assert restored.counters == snapshot.counters
        assert restored.spans["campaign"].seconds == pytest.approx(
            snapshot.spans["campaign"].seconds
        )

    def test_unknown_format_version_raises(self):
        document = _shard_snapshot(0).to_obj()
        document["format_version"] = 999
        with pytest.raises(TelemetryError):
            TelemetrySnapshot.from_obj(document)

    def test_prometheus_export_shapes(self):
        text = _shard_snapshot(2).to_prometheus()
        assert "# TYPE repro_beacons counter" in text
        assert "# TYPE repro_wall gauge" in text
        assert "# TYPE repro_latency histogram" in text
        assert 'repro_latency_bucket{le="+Inf"}' in text
        assert 'repro_phase_seconds_total{phase="campaign/day"}' in text
        # Cumulative bucket series must be monotonically non-decreasing.
        cumulative = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_latency_bucket")
        ]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == 300

    def test_telemetry_absorb_equals_snapshot_merge(self):
        telemetry = Telemetry({"seed": 11, "engine": "reference"})
        for seed in (0, 1, 2):
            telemetry.absorb(_shard_snapshot(seed))
        via_absorb = telemetry.snapshot()
        via_merge = TelemetrySnapshot()
        for seed in (0, 1, 2):
            via_merge.merge(_shard_snapshot(seed))
        assert via_absorb.counters == via_merge.counters
        assert via_absorb.histograms == via_merge.histograms
        for path, record in via_merge.spans.items():
            assert via_absorb.spans[path].seconds == pytest.approx(
                record.seconds
            )
