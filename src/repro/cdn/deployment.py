"""CDN deployment: front-end placement and attachment to the Internet.

The measured CDN (§3, §4) has "dozens of front end locations around the
world, all within the same Microsoft-operated autonomous system" — most
similar in scale to Level3 (62 locations) and MaxCDN.  The default
deployment here places 64 front-ends, skewed toward North America and
Europe like the paper's (the Fig 4 discussion credits the NA/EU density
for anycast's good behaviour there).

Attachment policy:

* The CDN AS peers with every tier-1 at shared metros (global reachability).
* It peers with transit ASes and — with configurable probability — access
  ISPs at shared metros.  Peering density is the main knob controlling how
  often anycast ingress lands near the client.
* Besides front-end metros, the CDN has *peering-only* PoPs: metros where
  it exchanges traffic but hosts no front-end.  Traffic ingressing there is
  carried over the backbone to the nearest front-end, reproducing §5's
  "border router with a long intradomain route" pathology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.cdn.frontend import FrontEnd
from repro.geo.metros import MetroDatabase
from repro.net.ip import IPv4Prefix, PrefixAllocator
from repro.net.topology import (
    AsRole,
    AutonomousSystem,
    LinkKind,
    TopologyBuilder,
)

#: Default front-end metros (64 locations, NA/EU-heavy like the paper's CDN).
DEFAULT_FRONTEND_METROS: Tuple[str, ...] = (
    # North America (24)
    "nyc", "lax", "chi", "dfw", "hou", "was", "mia", "atl", "bos", "phx",
    "sfo", "sea", "den", "msp", "sdg", "stl", "por", "slc", "kan", "clt",
    "yto", "ymq", "yvr", "mex",
    # Europe (20)
    "lon", "par", "fra", "ber", "ams", "bru", "mad", "bcn", "rom", "mil",
    "zrh", "vie", "prg", "waw", "bud", "ath", "dub", "man", "sto", "hel",
    # Asia (10)
    "tyo", "osa", "sel", "hkg", "tpe", "sin", "kul", "bom", "del", "maa",
    # South America (4)
    "sao", "rio", "bue", "scl",
    # Oceania (4)
    "syd", "mel", "per", "akl",
    # Africa (2)
    "jnb", "cpt",
)

#: Default unicast pool: front-end /24s are carved out of this supernet.
DEFAULT_UNICAST_POOL = "198.18.0.0/16"
#: Default anycast prefix, announced from every CDN PoP.
DEFAULT_ANYCAST_PREFIX = "192.0.2.0/24"


@dataclass(frozen=True)
class DeploymentConfig:
    """Knobs for CDN placement and interconnection.

    Attributes:
        cdn_asn: The CDN's AS number (8075 echoes Microsoft's).
        frontend_metros: Metro codes hosting front-ends; ``None`` selects
            the 64-location default.
        peering_only_metro_count: Extra CDN PoPs with no front-end, chosen
            from the remaining metros.
        transit_peering_probability: Chance of peering with each transit AS
            that shares a metro with the CDN.
        access_peering_probability: Chance of peering with each access ISP
            that shares a metro with the CDN.
        interconnect_density: Probability each shared metro is actually an
            interconnection point on a non-tier-1 peering link (at least one
            always is).  Values below 1.0 model sparse peering: an ISP that
            peers with the CDN, but not in every city both occupy — one of
            the §5 root causes of suboptimal anycast ingress.
        anycast_prefix: The anycast /24.
        unicast_pool: Supernet that per-front-end unicast /24s come from.
    """

    cdn_asn: int = 8075
    cdn_name: str = "Bing-CDN"
    frontend_metros: Optional[Tuple[str, ...]] = None
    peering_only_metro_count: int = 6
    transit_peering_probability: float = 0.8
    access_peering_probability: float = 0.75
    interconnect_density: float = 0.95
    anycast_prefix: str = DEFAULT_ANYCAST_PREFIX
    unicast_pool: str = DEFAULT_UNICAST_POOL

    def __post_init__(self) -> None:
        for name in (
            "transit_peering_probability",
            "access_peering_probability",
            "interconnect_density",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if self.peering_only_metro_count < 0:
            raise ConfigurationError(
                "peering_only_metro_count must be non-negative"
            )

    def resolved_frontend_metros(self) -> Tuple[str, ...]:
        """The configured front-end metro codes (defaults applied)."""
        return (
            self.frontend_metros
            if self.frontend_metros is not None
            else DEFAULT_FRONTEND_METROS
        )


@dataclass(frozen=True)
class CdnDeployment:
    """A placed CDN: front-ends, addressing, and its AS in the topology.

    Create via :func:`attach_cdn`; the CDN AS and all its peering links are
    then part of the builder this was attached to.
    """

    asn: int
    frontends: Tuple[FrontEnd, ...]
    anycast_prefix: IPv4Prefix
    peering_only_metros: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.frontends:
            raise ConfigurationError("a CDN deployment needs >= 1 front-end")

    @property
    def frontend_metros(self) -> FrozenSet[str]:
        """Metros hosting a front-end."""
        return frozenset(fe.metro_code for fe in self.frontends)

    @property
    def pop_metros(self) -> FrozenSet[str]:
        """All CDN PoP metros (front-end plus peering-only)."""
        return self.frontend_metros | self.peering_only_metros

    def frontend_by_id(self, frontend_id: str) -> FrontEnd:
        """Look up a front-end by identifier."""
        for fe in self.frontends:
            if fe.frontend_id == frontend_id:
                return fe
        raise ConfigurationError(f"unknown front-end {frontend_id!r}")

    def frontend_at_metro(self, metro_code: str) -> FrontEnd:
        """The front-end hosted at a metro."""
        for fe in self.frontends:
            if fe.metro_code == metro_code:
                return fe
        raise ConfigurationError(f"no front-end at metro {metro_code!r}")

    def has_frontend_at(self, metro_code: str) -> bool:
        """Whether a metro hosts a front-end."""
        return any(fe.metro_code == metro_code for fe in self.frontends)


def attach_cdn(
    builder: TopologyBuilder,
    config: Optional[DeploymentConfig] = None,
    seed: int = 0,
) -> CdnDeployment:
    """Place the CDN's AS into a topology under construction.

    Must be called after :func:`repro.net.topology.populate_base_internet`
    so the ISPs to peer with exist.

    Returns:
        The deployment handle used by :class:`repro.cdn.network.CdnNetwork`.
    """
    cfg = config or DeploymentConfig()
    rng = random.Random(seed)
    metro_db = builder.metro_db

    frontend_codes = cfg.resolved_frontend_metros()
    if len(set(frontend_codes)) != len(frontend_codes):
        raise ConfigurationError("duplicate front-end metro codes")
    for code in frontend_codes:
        if code not in metro_db:
            raise ConfigurationError(f"unknown front-end metro {code!r}")

    # Peering-only PoPs sit in metros *near* existing front-ends - extra
    # interconnection density in regions the CDN already serves (the S5
    # case study has a border router "very close to a front-end"), not
    # lone outposts whose backbone haul would dwarf the front-end grid.
    frontend_locations = [
        metro_db.get(code).location for code in frontend_codes
    ]
    remaining = sorted(
        (m for m in metro_db if m.code not in set(frontend_codes)),
        key=lambda m: (
            min(m.location.distance_km(loc) for loc in frontend_locations),
            m.code,
        ),
    )
    peering_only = frozenset(
        m.code for m in remaining[: cfg.peering_only_metro_count]
    )

    allocator = PrefixAllocator(IPv4Prefix.parse(cfg.unicast_pool))
    frontends = tuple(
        FrontEnd(
            frontend_id=f"fe-{code}",
            metro=metro_db.get(code),
            unicast_prefix=allocator.allocate_slash24(),
        )
        for code in frontend_codes
    )

    pop_metros = frozenset(frontend_codes) | peering_only
    builder.add_as(
        AutonomousSystem(
            asn=cfg.cdn_asn,
            name=cfg.cdn_name,
            role=AsRole.CDN,
            pop_metros=pop_metros,
        )
    )

    # The CDN buys backstop transit from the tier-1 with the widest
    # footprint (interconnecting at every CDN PoP), so even a prefix
    # announced at a single peering point — the §3.1 unicast
    # configuration — is reachable from every AS.
    tier1s = [a for a in builder.ases() if a.role is AsRole.TIER1]
    if not tier1s:
        raise ConfigurationError(
            "attach_cdn requires a populated base Internet (no tier-1s found)"
        )
    backstop = max(tier1s, key=lambda a: (len(a.pop_metros), -a.asn))
    missing = pop_metros - backstop.pop_metros
    if missing:
        raise ConfigurationError(
            f"backstop AS{backstop.asn} lacks PoPs at {sorted(missing)}; "
            "the base Internet must include an everywhere-present tier-1"
        )
    builder.connect(
        cfg.cdn_asn, backstop.asn, LinkKind.CUSTOMER_PROVIDER, pop_metros
    )

    for as_ in builder.ases():
        if as_.asn in (cfg.cdn_asn, backstop.asn):
            continue
        shared = builder.shared_metros(cfg.cdn_asn, as_.asn)
        if not shared:
            continue
        if as_.role is AsRole.TIER1:
            probability = 1.0
        elif as_.role is AsRole.TRANSIT:
            probability = cfg.transit_peering_probability
        else:
            probability = cfg.access_peering_probability
        if rng.random() >= probability:
            continue
        if as_.role is AsRole.TIER1:
            interconnects = shared  # tier-1s interconnect everywhere shared
        else:
            kept = [
                code
                for code in sorted(shared)
                if rng.random() < cfg.interconnect_density
            ]
            if not kept:
                kept = [rng.choice(sorted(shared))]
            interconnects = frozenset(kept)
        builder.connect(cfg.cdn_asn, as_.asn, LinkKind.PEERING, interconnects)

    return CdnDeployment(
        asn=cfg.cdn_asn,
        frontends=frontends,
        anycast_prefix=IPv4Prefix.parse(cfg.anycast_prefix),
        peering_only_metros=peering_only,
    )
