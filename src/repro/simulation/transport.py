"""Columnar shard-result transport for parallel campaigns.

A shard result used to cross the process boundary as one pickle of the
whole ``(dataset, stats, snapshot, quarantine)`` tuple — including the
full client population (identical in every shard) and a per-sample
object graph.  This module replaces that with a columnar encoding:

* the **manifest** — everything small (counts, calendar, stats,
  telemetry snapshot, quarantine, sink configuration, and a table
  describing the data buffers) — is pickled once;
* the **data buffers** — latency-sample arrays, sketch key/count
  arrays, and the request-diff columns — are appended as raw contiguous
  bytes, no per-element serialization;
* the **client population is not shipped at all**: every shard rebuilds
  the same scenario, so the coordinator re-homes decoded datasets onto
  its own client tuple (it already did this after merging).

Layout: ``MAGIC | u64 manifest length | manifest | buffer bytes...``.
The existing SHA-256 integrity check hashes these encoded bytes
directly, so corruption anywhere — manifest or raw buffers — is
detected before a merge.

When ``multiprocessing.shared_memory`` is available and the payload is
large enough, workers ship the encoded bytes through a shared-memory
block and the envelope carries only its name; otherwise (platforms
without it, tiny payloads, in-process pools) the bytes travel inline
through the normal pool pipe.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.measurement.aggregate import (
    GroupedDailyAggregates,
    LatencyDigest,
    RequestDiffLog,
)
from repro.measurement.logs import PassiveLog
from repro.measurement.sketch import LatencySketch
from repro.simulation.dataset import StudyDataset
from repro.telemetry import get_logger

try:  # pragma: no cover - platform probe
    from multiprocessing import resource_tracker, shared_memory

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover - exercised only where absent
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]
    HAVE_SHARED_MEMORY = False

_log = get_logger("transport")

#: Leading bytes of every columnar shard payload.
MAGIC = b"RPRO-SHARD3\x00"

#: Payloads smaller than this ship inline even when shared memory is
#: available — a shared-memory block has fixed setup cost that only
#: pays off for real data volumes.
SHM_MIN_BYTES = 256 * 1024

_LEN = struct.Struct("<Q")


class _ColumnWriter:
    """Collects contiguous arrays; returns table indices for specs."""

    def __init__(self) -> None:
        self.table: List[Tuple[str, int]] = []
        self.chunks: List[bytes] = []

    def put(self, values: np.ndarray) -> int:
        arr = np.ascontiguousarray(values)
        self.table.append((arr.dtype.str, int(arr.size)))
        self.chunks.append(arr.tobytes())
        return len(self.table) - 1

    def put_buffer(self, raw, dtype: str) -> int:
        """Append an existing C buffer (``array`` module) verbatim."""
        return self.put(np.frombuffer(raw, dtype=np.dtype(dtype)))


class _ColumnReader:
    """Resolves table indices back into zero-copy numpy views."""

    def __init__(self, table: List[Tuple[str, int]], data: memoryview) -> None:
        self._views: List[np.ndarray] = []
        offset = 0
        for dtype_str, size in table:
            dtype = np.dtype(dtype_str)
            nbytes = dtype.itemsize * size
            self._views.append(
                np.frombuffer(data[offset : offset + nbytes], dtype=dtype)
            )
            offset += nbytes
        self.consumed = offset

    def get(self, index: int) -> np.ndarray:
        return self._views[index]


def _sketch_spec(sketch: LatencySketch, columns: _ColumnWriter) -> Dict[str, Any]:
    state = sketch.column_state()
    return {
        "mantissa_bits": state["mantissa_bits"],
        "base_mantissa_bits": state["base_mantissa_bits"],
        "max_buckets": state["max_buckets"],
        "min_trackable": state["min_trackable"],
        "pos_keys": columns.put(state["pos_keys"]),
        "pos_counts": columns.put(state["pos_counts"]),
        "neg_keys": columns.put(state["neg_keys"]),
        "neg_counts": columns.put(state["neg_counts"]),
        "zero": state["zero"],
        "count": state["count"],
        "min": state["min"],
        "max": state["max"],
        "sum": state["sum"],
    }


def _sketch_from_spec(
    spec: Dict[str, Any], columns: _ColumnReader
) -> LatencySketch:
    return LatencySketch.from_columns(
        mantissa_bits=spec["mantissa_bits"],
        base_mantissa_bits=spec["base_mantissa_bits"],
        max_buckets=spec["max_buckets"],
        min_trackable=spec["min_trackable"],
        pos_keys=columns.get(spec["pos_keys"]),
        pos_counts=columns.get(spec["pos_counts"]),
        neg_keys=columns.get(spec["neg_keys"]),
        neg_counts=columns.get(spec["neg_counts"]),
        zero=spec["zero"],
        count=spec["count"],
        minimum=spec["min"],
        maximum=spec["max"],
        total=spec["sum"],
    )


def _aggregates_spec(
    aggregates: GroupedDailyAggregates, columns: _ColumnWriter
) -> Dict[str, Any]:
    # Exact digests for one day coalesce into a single float64 column;
    # each row records its [start, stop) slice instead of a column
    # index.  One tobytes per day instead of one per digest is what
    # keeps encode (and the mirrored decode) at memcpy speed — a
    # paper-scale day holds tens of thousands of digests.
    days: Dict[int, Dict[str, Any]] = {}
    for day in aggregates.days:
        rows: List[Any] = []
        chunks: List[np.ndarray] = []
        offset = 0
        for group, target_id, digest in aggregates.iter_day(day):
            if digest.is_exact:
                view = digest.values_view()
                rows.append(
                    [group, target_id, offset, offset + view.size]
                )
                if view.size:
                    chunks.append(view)
                    offset += view.size
            else:
                assert digest.sketch is not None
                rows.append(
                    [group, target_id, _sketch_spec(digest.sketch, columns)]
                )
        days[day] = {
            "rows": rows,
            "samples": (
                columns.put(np.concatenate(chunks)) if chunks else None
            ),
        }
    return {
        "grouping": aggregates.grouping,
        "exact_threshold": aggregates.exact_threshold,
        "relative_accuracy": aggregates.relative_accuracy,
        "max_buckets": aggregates.max_buckets,
        "days": days,
    }


def _aggregates_from_spec(
    spec: Dict[str, Any], columns: _ColumnReader
) -> GroupedDailyAggregates:
    aggregates = GroupedDailyAggregates(
        spec["grouping"],
        exact_threshold=spec["exact_threshold"],
        relative_accuracy=spec["relative_accuracy"],
        max_buckets=spec["max_buckets"],
    )
    for day, day_spec in spec["days"].items():
        day = int(day)
        per_day = aggregates._days.setdefault(day, {})
        # Exact digests decode in bulk from the day's coalesced sample
        # column: one reduceat pair recovers every digest's extrema and
        # the zero-copy run sink appends the slices.  A per-digest
        # extend() would pay a Python call plus two tiny numpy
        # reductions for each of tens of thousands of digests.
        values: Optional[np.ndarray] = None
        if day_spec["samples"] is not None:
            values = columns.get(day_spec["samples"])
        runs: List[Tuple[str, str, int, int]] = []
        for row in day_spec["rows"]:
            if isinstance(row[2], dict):
                group, target_id, sketch_spec = row
                digest = LatencyDigest.from_sketch(
                    _sketch_from_spec(sketch_spec, columns),
                    exact_threshold=spec["exact_threshold"],
                    relative_accuracy=spec["relative_accuracy"],
                    max_buckets=spec["max_buckets"],
                )
                per_day.setdefault(group, {})[target_id] = digest
                continue
            group, target_id, start, stop = row
            if start == stop:
                per_day.setdefault(group, {})[target_id] = (
                    aggregates._new_digest()
                )
                continue
            runs.append((group, target_id, start, stop))
        if not runs:
            continue
        assert values is not None
        starts = np.fromiter(
            (run[2] for run in runs), dtype=np.intp, count=len(runs)
        )
        lows = np.minimum.reduceat(values, starts)
        highs = np.maximum.reduceat(values, starts)
        aggregates.observe_runs(
            day,
            [
                (group, target_id, start, stop, lows[i], highs[i])
                for i, (group, target_id, start, stop) in enumerate(runs)
            ],
            values,
        )
    return aggregates


def _diffs_spec(diffs: RequestDiffLog, columns: _ColumnWriter) -> Dict[str, Any]:
    if diffs.is_bounded:
        return {
            "bounded": True,
            "relative_accuracy": diffs.relative_accuracy,
            "max_buckets": diffs.max_buckets,
            "region_names": list(diffs.region_names),
            "total": len(diffs),
            "sketches": [
                [day, region, _sketch_spec(sketch, columns)]
                for (day, region), sketch in sorted(
                    diffs.day_region_sketches().items()
                )
            ],
        }
    return {
        "bounded": False,
        "region_names": list(diffs.region_names),
        "day": columns.put_buffer(diffs._day, "=i4"),
        "client_index": columns.put_buffer(diffs._client_index, "=i4"),
        "region_code": columns.put_buffer(diffs._region_code, "=i1"),
        "anycast": columns.put_buffer(diffs._anycast, "=f4"),
        "best_unicast": columns.put_buffer(diffs._best_unicast, "=f4"),
    }


def _diffs_from_spec(
    spec: Dict[str, Any], columns: _ColumnReader
) -> RequestDiffLog:
    if spec["bounded"]:
        diffs = RequestDiffLog(
            bounded=True,
            relative_accuracy=spec["relative_accuracy"],
            max_buckets=spec["max_buckets"],
        )
        for name in spec["region_names"]:
            diffs.region_code(name)
        for day, region, sketch_spec in spec["sketches"]:
            diffs._sketches[(int(day), region)] = _sketch_from_spec(
                sketch_spec, columns
            )
        diffs._total = int(spec["total"])
        return diffs
    diffs = RequestDiffLog()
    for name in spec["region_names"]:
        diffs.region_code(name)
    diffs._day.frombytes(columns.get(spec["day"]).tobytes())
    diffs._client_index.frombytes(
        columns.get(spec["client_index"]).tobytes()
    )
    diffs._region_code.frombytes(
        columns.get(spec["region_code"]).tobytes()
    )
    diffs._anycast.frombytes(columns.get(spec["anycast"]).tobytes())
    diffs._best_unicast.frombytes(
        columns.get(spec["best_unicast"]).tobytes()
    )
    return diffs


def _passive_spec(passive: PassiveLog) -> Dict[str, Any]:
    if passive.is_bounded:
        return {
            "bounded": True,
            "totals": {
                day: passive.day_totals(day) for day in passive.days
            },
        }
    return {"bounded": False, "days": passive._days}


def _passive_from_spec(spec: Dict[str, Any]) -> PassiveLog:
    if spec["bounded"]:
        passive = PassiveLog(bounded=True)
        for day, totals in spec["totals"].items():
            for frontend_id, count in totals.items():
                passive.record(int(day), "", frontend_id, int(count))
        return passive
    passive = PassiveLog()
    for day, per_client in spec["days"].items():
        for client_key, counts in per_client.items():
            for frontend_id, count in counts.items():
                passive.record(int(day), client_key, frontend_id, int(count))
    return passive


def encode_shard_payload(
    dataset: StudyDataset,
    stats: Any,
    snapshot: Any,
    quarantine: Any,
) -> bytes:
    """Encode one shard's results as columnar transport bytes."""
    columns = _ColumnWriter()
    manifest = {
        "calendar": dataset.calendar,
        "beacon_count": dataset.beacon_count,
        "measurement_count": dataset.measurement_count,
        "covered_ranges": dataset.covered_ranges,
        "load_summary": dataset.load_summary,
        "client_count": len(dataset.clients),
        "ecs": _aggregates_spec(dataset.ecs_aggregates, columns),
        "ldns": _aggregates_spec(dataset.ldns_aggregates, columns),
        "diffs": _diffs_spec(dataset.request_diffs, columns),
        "passive": _passive_spec(dataset.passive),
        "stats": stats,
        "snapshot": snapshot,
        "quarantine": quarantine,
        "columns": columns.table,
    }
    manifest_bytes = pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
    return b"".join(
        [MAGIC, _LEN.pack(len(manifest_bytes)), manifest_bytes]
        + columns.chunks
    )


def decode_shard_payload(
    payload: bytes, clients: Tuple[Any, ...]
) -> Tuple[StudyDataset, Any, Any, Any]:
    """Decode columnar transport bytes back into shard results.

    ``clients`` is the coordinator's own client tuple — shards never
    ship theirs (every shard rebuilds an identical population).

    Raises:
        MeasurementError: when the payload is not a columnar shard
            encoding or its buffer table disagrees with its length (the
            SHA-256 envelope check should catch corruption first; this
            is the structural backstop).
    """
    if payload[: len(MAGIC)] != MAGIC:
        raise MeasurementError(
            "shard payload is not a columnar transport encoding"
        )
    header_end = len(MAGIC) + _LEN.size
    if len(payload) < header_end:
        raise MeasurementError(
            "shard payload truncated inside its length header"
        )
    (manifest_len,) = _LEN.unpack(payload[len(MAGIC) : header_end])
    manifest_end = header_end + manifest_len
    if manifest_end > len(payload):
        raise MeasurementError(
            "shard payload truncated inside its manifest"
        )
    manifest = pickle.loads(payload[header_end:manifest_end])
    columns = _ColumnReader(
        manifest["columns"], memoryview(payload)[manifest_end:]
    )
    if manifest_end + columns.consumed != len(payload):
        raise MeasurementError(
            "shard payload length disagrees with its buffer table"
        )
    if manifest["client_count"] != len(clients):
        raise MeasurementError(
            "shard payload was produced over a different client "
            f"population ({manifest['client_count']} != {len(clients)})"
        )
    dataset = StudyDataset(
        calendar=manifest["calendar"],
        clients=clients,
        ecs_aggregates=_aggregates_from_spec(manifest["ecs"], columns),
        ldns_aggregates=_aggregates_from_spec(manifest["ldns"], columns),
        request_diffs=_diffs_from_spec(manifest["diffs"], columns),
        passive=_passive_from_spec(manifest["passive"]),
        beacon_count=manifest["beacon_count"],
        measurement_count=manifest["measurement_count"],
        covered_ranges=manifest["covered_ranges"],
        # .get(): payloads written before load awareness carry no key.
        load_summary=manifest.get("load_summary"),
    )
    return (
        dataset,
        manifest["stats"],
        manifest["snapshot"],
        manifest["quarantine"],
    )


# ----------------------------------------------------------------------
# Shared-memory shipping
# ----------------------------------------------------------------------


def ship_payload(payload: bytes, use_shm: bool) -> Tuple[bytes, Optional[str]]:
    """Place encoded payload bytes for the coordinator.

    Returns ``(inline_bytes, shm_name)`` — exactly one is meaningful.
    Large payloads go into a ``multiprocessing.shared_memory`` block
    (the worker unregisters it from its resource tracker and hands
    ownership to the coordinator, which unlinks after reading); small
    payloads, in-process runs, and platforms without shared memory fall
    back to inline bytes through the pool pipe.
    """
    if (
        not use_shm
        or not HAVE_SHARED_MEMORY
        or len(payload) < SHM_MIN_BYTES
    ):
        return payload, None
    try:
        block = shared_memory.SharedMemory(create=True, size=len(payload))
    except OSError as error:  # pragma: no cover - resource exhaustion
        _log.warning(
            "shared-memory allocation failed; shipping inline",
            extra={"bytes": len(payload), "error": str(error)},
        )
        return payload, None
    try:
        block.buf[: len(payload)] = payload
        # Ownership transfers to the coordinator: stop this process's
        # resource tracker from unlinking the block at worker exit.
        try:
            resource_tracker.unregister(block._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
        return b"", block.name
    finally:
        block.close()


def receive_payload(
    inline: bytes, shm_name: Optional[str], size: int
) -> bytes:
    """Fetch payload bytes the worker shipped; frees the SHM block.

    ``size`` is the exact payload length — shared-memory blocks round
    up to page granularity, so the block may be larger than the data.
    """
    if shm_name is None:
        return inline
    if not HAVE_SHARED_MEMORY:  # pragma: no cover - defensive
        raise MeasurementError(
            f"shard shipped via shared memory ({shm_name!r}) but this "
            "platform has none"
        )
    block = shared_memory.SharedMemory(name=shm_name)
    try:
        payload = bytes(block.buf[:size])
    finally:
        block.close()
        block.unlink()
    return payload


def release_payload(shm_name: Optional[str]) -> None:
    """Unlink an unclaimed shared-memory block (stale/abandoned shard)."""
    if shm_name is None or not HAVE_SHARED_MEMORY:
        return
    try:
        block = shared_memory.SharedMemory(name=shm_name)
    except FileNotFoundError:
        return
    block.close()
    block.unlink()
