"""Footnote-1 analysis: how much of the distance tail is geolocation error?

Fig 4's caption carries the caveat: "No geolocation database is perfect.
A fraction of very long client-to-front-end distances may be attributable
to bad client geolocation data."  Because the simulator knows both the
*reported* and the *true* client positions, this analysis can do what the
paper could not: split the long-distance tail into genuine routing
misdirection and pure measurement artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import AnalysisError
from repro.cdn.frontend import FrontEnd
from repro.geo.coords import haversine_km
from repro.geo.geolocation import GeolocationDatabase
from repro.simulation.dataset import StudyDataset


@dataclass(frozen=True)
class GeoArtifactResult:
    """Split of the long-distance client→front-end tail.

    Attributes:
        threshold_km: Distance above which a client counts as "far".
        far_reported: Clients whose *reported* distance exceeds the
            threshold (what the paper could measure).
        far_true: Clients whose *true* distance exceeds it (reality).
        artifact_count: Far-reported clients that are artifacts — their
            true distance is under the threshold.
        masked_count: Truly-far clients whose bad geolocation *hides* them
            (reported under the threshold).
    """

    threshold_km: float
    far_reported: int
    far_true: int
    artifact_count: int
    masked_count: int
    client_count: int

    @property
    def artifact_fraction(self) -> float:
        """Fraction of the reported tail that is a geolocation artifact."""
        if self.far_reported == 0:
            return 0.0
        return self.artifact_count / self.far_reported

    def format(self) -> str:
        """Footnote-1 style summary."""
        return "\n".join(
            [
                "Footnote 1 — geolocation artifacts in the distance tail",
                f"  clients analyzed:                  {self.client_count}",
                f"  reported > {self.threshold_km:.0f} km:              "
                f"{self.far_reported}",
                f"  truly   > {self.threshold_km:.0f} km:              "
                f"{self.far_true}",
                f"  artifacts (reported-far only):     {self.artifact_count}"
                f" ({self.artifact_fraction:.1%} of the reported tail)",
                f"  masked (truly far, reported near): {self.masked_count}",
            ]
        )


def geolocation_artifacts(
    dataset: StudyDataset,
    frontends: Sequence[FrontEnd],
    geolocation: GeolocationDatabase,
    day: int = 0,
    threshold_km: float = 3000.0,
) -> GeoArtifactResult:
    """Quantify footnote 1 on one production day of passive logs."""
    if threshold_km <= 0:
        raise AnalysisError("threshold_km must be positive")
    frontends_by_id = {fe.frontend_id: fe for fe in frontends}
    far_reported = far_true = artifacts = masked = count = 0
    for client_key, counts in dataset.passive.iter_day(day):
        frontend_id = max(counts.items(), key=lambda kv: (kv[1], kv[0]))[0]
        frontend = frontends_by_id.get(frontend_id)
        if frontend is None:
            raise AnalysisError(f"passive log names unknown {frontend_id!r}")
        record = geolocation.record(client_key)
        reported_km = haversine_km(
            record.reported_location, frontend.location
        )
        true_km = haversine_km(record.true_location, frontend.location)
        count += 1
        reported_far = reported_km > threshold_km
        truly_far = true_km > threshold_km
        far_reported += reported_far
        far_true += truly_far
        if reported_far and not truly_far:
            artifacts += 1
        if truly_far and not reported_far:
            masked += 1
    if count == 0:
        raise AnalysisError(f"no passive traffic on day {day}")
    return GeoArtifactResult(
        threshold_km=threshold_km,
        far_reported=far_reported,
        far_true=far_true,
        artifact_count=artifacts,
        masked_count=masked,
        client_count=count,
    )
