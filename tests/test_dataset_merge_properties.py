"""Property tests: the dataset merge algebra under random shard layouts.

Hypothesis drives random shard orderings, subsets, and duplications over
precomputed per-slice partial datasets, checking the invariants the
resilient parallel executor leans on:

* merging any permutation of a disjoint shard split reproduces the
  serial dataset bit-for-bit (``digest()`` is order-insensitive);
* merging the same shard twice is rejected (duplicate-merge detection
  via covered-range overlap);
* ``digest()`` is stable across calls and depends only on the *set* of
  merged shards, never the merge order;
* covered and missing ranges always tile the population exactly.

The range helpers (:func:`normalize_ranges`, :func:`ranges_overlap`) get
their own pure-function properties against a brute-force index-set
model.
"""

import functools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import MeasurementError
from repro.clients.population import ClientPopulationConfig
from repro.measurement.aggregate import GroupedDailyAggregates, RequestDiffLog
from repro.measurement.logs import PassiveLog
from repro.simulation.campaign import CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.dataset import (
    StudyDataset,
    normalize_ranges,
    ranges_overlap,
)
from repro.simulation.scenario import Scenario, ScenarioConfig

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: The population splits into this many equal shard partials.
SEGMENTS = 4
POPULATION = 40


@functools.lru_cache(maxsize=None)
def _scenario() -> Scenario:
    return Scenario.build(
        ScenarioConfig(
            seed=23,
            population=ClientPopulationConfig(prefix_count=POPULATION),
            calendar=SimulationCalendar(num_days=1),
        )
    )


@functools.lru_cache(maxsize=None)
def _serial_digest() -> str:
    return CampaignRunner(_scenario()).run().digest()


@functools.lru_cache(maxsize=None)
def _partials():
    """One partial dataset per contiguous shard of the population.

    Computed once; every merge below copies out of these sources (the
    merge implementations never alias), so examples can reuse them.
    """
    scenario = _scenario()
    size = POPULATION // SEGMENTS
    return tuple(
        CampaignRunner(
            scenario, client_slice=(i * size, (i + 1) * size)
        ).run()
        for i in range(SEGMENTS)
    )


def _empty_accumulator() -> StudyDataset:
    """A dataset with no measurements and explicitly empty coverage."""
    scenario = _scenario()
    return StudyDataset(
        calendar=scenario.calendar,
        clients=scenario.clients,
        ecs_aggregates=GroupedDailyAggregates("ecs"),
        ldns_aggregates=GroupedDailyAggregates("ldns"),
        request_diffs=RequestDiffLog(),
        passive=PassiveLog(),
        covered_ranges=(),
    )


def _merge_in_order(order) -> StudyDataset:
    merged = _empty_accumulator()
    for index in order:
        merged.merge(_partials()[index])
    return merged


class TestMergeAlgebraProperties:
    @given(order=st.permutations(range(SEGMENTS)))
    @SETTINGS
    def test_any_merge_order_reproduces_serial_digest(self, order):
        merged = _merge_in_order(order)
        assert merged.digest() == _serial_digest()
        assert not merged.is_partial
        assert merged.coverage_fraction == 1.0

    @given(
        indices=st.lists(
            st.integers(0, SEGMENTS - 1), min_size=2, max_size=2 * SEGMENTS
        ).filter(lambda xs: len(set(xs)) < len(xs))
    )
    @SETTINGS
    def test_duplicate_shard_merge_rejected(self, indices):
        merged = _empty_accumulator()
        with pytest.raises(MeasurementError):
            for index in indices:
                merged.merge(_partials()[index])

    @given(
        subset=st.sets(
            st.integers(0, SEGMENTS - 1), min_size=1, max_size=SEGMENTS
        ),
        data=st.data(),
    )
    @SETTINGS
    def test_digest_depends_on_shard_set_not_order(self, subset, data):
        one_order = data.draw(st.permutations(sorted(subset)))
        other_order = data.draw(st.permutations(sorted(subset)))
        first = _merge_in_order(one_order)
        second = _merge_in_order(other_order)
        assert first.digest() == second.digest()
        # Stable across repeated calls on the same object, too.
        assert first.digest() == first.digest()

    @given(
        subset=st.sets(
            st.integers(0, SEGMENTS - 1), min_size=0, max_size=SEGMENTS
        )
    )
    @SETTINGS
    def test_coverage_and_gaps_tile_the_population(self, subset):
        merged = _merge_in_order(sorted(subset))
        size = POPULATION // SEGMENTS
        expected_covered = {
            i for index in subset for i in range(index * size, (index + 1) * size)
        }
        covered = {
            i
            for start, stop in merged.covered_ranges
            for i in range(start, stop)
        }
        missing = {
            i
            for start, stop in merged.missing_ranges()
            for i in range(start, stop)
        }
        assert covered == expected_covered
        assert covered | missing == set(range(POPULATION))
        assert not covered & missing
        assert merged.coverage_fraction == pytest.approx(
            len(covered) / POPULATION
        )
        assert merged.is_partial == (len(subset) < SEGMENTS)

    @given(subset=st.sets(st.integers(0, SEGMENTS - 1), min_size=1))
    @SETTINGS
    def test_partial_digests_are_distinct_per_shard_set(self, subset):
        # A partial dataset can never impersonate the full one: digests
        # of different shard sets differ (missing ranges are hashed).
        merged = _merge_in_order(sorted(subset))
        if len(subset) < SEGMENTS:
            assert merged.digest() != _serial_digest()
        else:
            assert merged.digest() == _serial_digest()


_spans = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)).map(
        lambda pair: (min(pair), max(pair))
    ),
    max_size=8,
)


def _index_set(ranges):
    return {i for start, stop in ranges for i in range(start, stop)}


class TestRangeHelperProperties:
    @given(ranges=_spans)
    @SETTINGS
    def test_normalize_preserves_index_set(self, ranges):
        normalized = normalize_ranges(tuple(ranges))
        assert _index_set(normalized) == _index_set(ranges)

    @given(ranges=_spans)
    @SETTINGS
    def test_normalize_is_sorted_disjoint_and_coalesced(self, ranges):
        normalized = normalize_ranges(tuple(ranges))
        for start, stop in normalized:
            assert start < stop
        for (_, stop), (start, _) in zip(normalized, normalized[1:]):
            assert stop < start  # disjoint AND non-adjacent

    @given(ranges=_spans)
    @SETTINGS
    def test_normalize_is_idempotent(self, ranges):
        once = normalize_ranges(tuple(ranges))
        assert normalize_ranges(once) == once

    @given(a=_spans, b=_spans)
    @SETTINGS
    def test_overlap_matches_index_set_intersection(self, a, b):
        left = normalize_ranges(tuple(a))
        right = normalize_ranges(tuple(b))
        expected = bool(_index_set(left) & _index_set(right))
        assert ranges_overlap(left, right) == expected
        assert ranges_overlap(right, left) == expected
