"""Smoke tests for the calibration/diagnostic tools in tools/."""

import runpy
import sys

import pytest


@pytest.mark.parametrize(
    "script,argv",
    [
        ("tools/calibrate.py", ["calibrate.py", "60", "3", "5"]),
        ("tools/diagnose_structural.py", ["diagnose_structural.py", "60"]),
    ],
)
def test_tool_runs(script, argv, monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", argv)
    runpy.run_path(script, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()


def test_diagnose_sources_runs(monkeypatch, capsys):
    # diagnose_sources builds a fixed 600-client scenario; shrink it by
    # patching the population config the script constructs.
    import repro.simulation.scenario as scenario_module
    from repro.clients.population import ClientPopulationConfig

    original = scenario_module.ScenarioConfig

    class Tiny(original):  # type: ignore[misc,valid-type]
        def __init__(self, *args, **kwargs):
            kwargs["population"] = ClientPopulationConfig(prefix_count=60)
            super().__init__(*args, **kwargs)

    for module in list(sys.modules.values()):
        if module is not None and getattr(module, "ScenarioConfig", None) is original:
            monkeypatch.setattr(module, "ScenarioConfig", Tiny)
    monkeypatch.setattr(sys, "argv", ["diagnose_sources.py"])
    runpy.run_path("tools/diagnose_sources.py", run_name="__main__")
    assert "overall" in capsys.readouterr().out
