"""Property suite: window state is a pure function of the event multiset.

The sliding :class:`~repro.service.window.PredictionWindow` backs the
online predictor, and its correctness argument rests on three algebraic
properties Hypothesis probes here with random event multisets:

* **Order-freedom** — ``observe`` commutes: any arrival order (and any
  shard interleaving) of the same events reaches the same
  ``state_digest``.
* **Eviction batching** — advancing the window per event, per day, or
  once at the end leaves identical retained state; eviction drops whole
  days and never rewrites survivors.
* **Evicted events never influence predictions** — a window that held
  and then evicted old days predicts exactly like one that never saw
  them, and late stragglers for evicted days are counted but change
  nothing.

The same pure-function discipline is probed for the service's rolling
:class:`~repro.service.events.StreamDigest` (order-insensitive,
mergeable) and for the window's checkpoint round-trip.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import BeaconEvent, OnlinePredictor, StreamDigest
from repro.service.window import PredictionWindow

pytestmark = pytest.mark.service

CLIENTS = (
    ("10.0.1.0/24", "ldns-a"),
    ("10.0.2.0/24", "ldns-a"),
    ("10.0.3.0/24", "ldns-b"),
)
TARGETS = ("anycast", "fe-a", "fe-b")

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def beacon_events(min_day=0, max_day=3, max_size=60):
    """Strategy: a list of beacon events over a small day range."""

    def build(row):
        day, client_index, target_index, rtt = row
        client_key, ldns_id = CLIENTS[client_index]
        return BeaconEvent(
            day=day,
            client_key=client_key,
            ldns_id=ldns_id,
            target_id=TARGETS[target_index],
            rtt_ms=rtt,
        )

    row = st.tuples(
        st.integers(min_value=min_day, max_value=max_day),
        st.integers(min_value=0, max_value=len(CLIENTS) - 1),
        st.integers(min_value=0, max_value=len(TARGETS) - 1),
        st.floats(min_value=0.5, max_value=500.0,
                  allow_nan=False, allow_infinity=False),
    )
    return st.lists(row.map(build), max_size=max_size)


def fill(window, events):
    for event in events:
        window.observe(event)
    return window


class TestOrderFreedom:
    @SETTINGS
    @given(events=beacon_events(), data=st.data())
    def test_any_arrival_order_reaches_the_same_state(self, events, data):
        shuffled = data.draw(st.permutations(events))
        a = fill(PredictionWindow(window_days=4), events)
        b = fill(PredictionWindow(window_days=4), shuffled)
        assert a.state_digest() == b.state_digest()
        # Each beacon feeds both grouping planes (ECS and LDNS).
        assert a.sample_count() == b.sample_count() == 2 * len(events)

    @SETTINGS
    @given(events=beacon_events(), split=st.integers(0, 60))
    def test_shard_interleaving_is_invisible(self, events, split):
        """Round-robin interleaving of two shard streams == one stream."""
        split = min(split, len(events))
        left, right = events[:split], events[split:]
        interleaved = []
        for i in range(max(len(left), len(right))):
            if i < len(left):
                interleaved.append(left[i])
            if i < len(right):
                interleaved.append(right[i])
        a = fill(PredictionWindow(window_days=4), events)
        b = fill(PredictionWindow(window_days=4), interleaved)
        assert a.state_digest() == b.state_digest()

    @SETTINGS
    @given(events=beacon_events(), split=st.integers(0, 60))
    def test_stream_digest_is_order_free_and_mergeable(
        self, events, split
    ):
        split = min(split, len(events))
        whole = StreamDigest()
        for event in events:
            whole.update(event)
        left, right = StreamDigest(), StreamDigest()
        for event in events[:split]:
            left.update(event)
        for event in reversed(events[split:]):
            right.update(event)
        assert left.merge(right).hexdigest() == whole.hexdigest()
        assert left.count == whole.count == len(events)


class TestEvictionBatching:
    @SETTINGS
    @given(events=beacon_events())
    def test_advance_cadence_does_not_matter(self, events):
        ordered = sorted(events, key=lambda e: e.day)
        per_event = PredictionWindow(window_days=1)
        for event in ordered:
            per_event.advance_to(event.day)
            per_event.observe(event)
        at_end = PredictionWindow(window_days=1)
        for event in ordered:
            at_end.observe(event)
        if ordered:
            last = ordered[-1].day
            per_event.advance_to(last)
            at_end.advance_to(last)
        assert per_event.state_digest() == at_end.state_digest()
        assert per_event.days == at_end.days

    @SETTINGS
    @given(events=beacon_events())
    def test_advance_keeps_exactly_the_window(self, events):
        window = fill(PredictionWindow(window_days=2), events)
        horizon = 3
        evicted = window.advance_to(horizon)
        assert all(day <= horizon - 2 for day in evicted)
        assert all(
            horizon - 2 < day <= max(e.day for e in events)
            for day in window.days
        )


class TestEvictedEventsNeverInfluence:
    @SETTINGS
    @given(
        old=beacon_events(min_day=0, max_day=0, max_size=40),
        current=beacon_events(min_day=1, max_day=1, max_size=40),
    )
    def test_predictions_ignore_evicted_days(self, old, current):
        """A window that evicted day 0 predicts day 1 like one that
        never saw day 0 at all."""
        with_history = PredictionWindow(window_days=1)
        fill(with_history, old)
        with_history.advance_to(1)  # evicts day 0
        fill(with_history, current)
        fresh = fill(PredictionWindow(window_days=1), current)
        assert with_history.state_digest() == fresh.state_digest()
        a = OnlinePredictor(with_history).tick(1)
        b = OnlinePredictor(fresh).tick(1)
        assert a == b

    @SETTINGS
    @given(
        current=beacon_events(min_day=1, max_day=2, max_size=40),
        stragglers=beacon_events(min_day=0, max_day=0, max_size=10),
    )
    def test_late_stragglers_are_counted_but_change_nothing(
        self, current, stragglers
    ):
        window = PredictionWindow(window_days=2)
        fill(window, current)
        window.advance_to(2)  # day 0 now outside the window
        before = window.state_digest()
        for event in stragglers:
            assert window.observe(event) is False
        assert window.late_drops == len(stragglers)
        assert window.state_digest() == before


class TestCheckpointRoundTrip:
    @SETTINGS
    @given(events=beacon_events())
    def test_to_obj_from_obj_preserves_state(self, events):
        window = fill(PredictionWindow(window_days=2), events)
        restored = PredictionWindow.from_obj(window.to_obj())
        assert restored.state_digest() == window.state_digest()
        assert restored.days == window.days
        assert restored.sample_count() == window.sample_count()

    @SETTINGS
    @given(events=beacon_events(max_size=40))
    def test_sketched_window_round_trips(self, events):
        window = fill(
            PredictionWindow(window_days=4, exact_threshold=4), events
        )
        restored = PredictionWindow.from_obj(window.to_obj())
        assert restored.state_digest() == window.state_digest()
