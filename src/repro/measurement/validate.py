"""Schema-validated record ingestion with a quarantine side channel.

The paper's pipeline (§3.2) ingests JavaScript beacon timings from real
browsers, which means the raw streams carry client-side garbage:
negative durations from clock adjustments, absurd values from suspended
tabs, NaNs from torn uploads.  Bing's backend filtered these before any
Figure 2–7 analysis; this module is that filter for the simulated
pipeline.

Every record that crosses an ingestion boundary — a beacon fetch landing
in the backend, a passive-log count, a dataset parsed back off disk —
passes through a :class:`ValidationGate` holding one of three policies:

* ``strict``  — raise :class:`repro.errors.ValidationError` on the first
  invalid record (CI / debugging posture: dirty data is a bug);
* ``lenient`` — drop invalid records into the :class:`QuarantineLog`
  (production posture: keep serving, account for every loss);
* ``repair``  — clamp repairable records (negative → 0, absurd → the
  plausibility ceiling) and annotate them in the quarantine log;
  unrepairable records (NaN, truncation markers) still drop.

The gate is deliberately deterministic and order-free: whether a record
is admitted depends only on its value, never on neighbors or arrival
order, so a sharded campaign quarantines bit-identically to a serial
one.  The :class:`QuarantineLog` is mergeable the same way every other
sink in :mod:`repro.measurement` is — exact per-reason counts always,
with a bounded sample of offending records kept under a canonical total
order so capped logs merge order-insensitively.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError

#: Version of the record schema the validators enforce.  Bumps when the
#: set of validated fields or the plausibility envelope changes, so
#: exports carry which rules their records survived.
RECORD_SCHEMA_VERSION = 1

#: RTTs above this are physically implausible for a CDN fetch (the
#: paper's beacon timeout was far lower); they read as suspended-tab or
#: clock-step artifacts.
MAX_PLAUSIBLE_RTT_MS = 60_000.0

#: Bounded number of offending-record samples a quarantine log retains
#: (per-reason *counts* are always exact).
QUARANTINE_SAMPLE_CAP = 1000

#: float32 columns round the ceiling up slightly; compare float32 data
#: in its own precision so boundary-valid samples stay valid.
_MAX_PLAUSIBLE_RTT_MS_F32 = float(np.float32(60_000.0))

# Reason codes, the quarantine log's vocabulary.
REASON_NEGATIVE_RTT = "negative-rtt"
REASON_NON_FINITE_RTT = "non-finite-rtt"
REASON_ABSURD_RTT = "absurd-rtt"
REASON_TRUNCATED = "truncated-record"
REASON_NEGATIVE_COUNT = "negative-count"

#: The record fields the current schema validates, by record type.
RECORD_SCHEMA: Dict[str, Tuple[str, ...]] = {
    "beacon": ("day", "client_key", "record_index", "rtt_ms"),
    "passive": ("day", "client_key", "frontend_id", "count"),
}


class ValidationPolicy(enum.Enum):
    """What an ingestion boundary does with an invalid record."""

    STRICT = "strict"
    LENIENT = "lenient"
    REPAIR = "repair"

    @classmethod
    def parse(cls, value: "ValidationPolicy | str") -> "ValidationPolicy":
        """Coerce a policy name (as the CLI provides) into a policy.

        Raises:
            ValidationError: on an unknown policy name.
        """
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            valid = ", ".join(p.value for p in cls)
            raise ValidationError(
                f"unknown validation policy {value!r}; expected one of: "
                f"{valid}",
                reason="bad-policy",
            ) from None


def classify_rtt(rtt_ms: float) -> Optional[Tuple[str, Optional[float]]]:
    """Classify one RTT sample against the record schema.

    Returns ``None`` for a valid sample, else ``(reason, repaired)``
    where ``repaired`` is the clamped value the ``repair`` policy would
    substitute — or ``None`` when the record is unrepairable (NaN,
    truncation marker) and must drop under every non-strict policy.
    """
    if rtt_ms != rtt_ms:  # NaN
        return (REASON_NON_FINITE_RTT, None)
    if rtt_ms == float("-inf"):
        # The dirty-data injector (and a torn upload) encode a cut-off
        # record as -inf: there is no value to clamp back to.
        return (REASON_TRUNCATED, None)
    if rtt_ms == float("inf"):
        return (REASON_NON_FINITE_RTT, None)
    if rtt_ms < 0.0:
        return (REASON_NEGATIVE_RTT, 0.0)
    if rtt_ms > MAX_PLAUSIBLE_RTT_MS:
        return (REASON_ABSURD_RTT, MAX_PLAUSIBLE_RTT_MS)
    return None


@dataclass(frozen=True)
class QuarantinedRecord:
    """One record rejected (or repaired) at an ingestion boundary.

    Attributes:
        day: Campaign day of the record.
        client_key: The /24 (or group key) the record belongs to; a
            boundary that has no finer identity uses the group label.
        record_index: Flat index of the record within its (day, client)
            block, or ``-1`` when the boundary has no per-record index
            (e.g. dataset-load validation).
        reason: Machine-readable reason code.
        value: The offending value, as observed.
        repaired: True when the ``repair`` policy clamped the record and
            kept it; False when it was dropped.
    """

    day: int
    client_key: str
    record_index: int
    reason: str
    value: float
    repaired: bool = False

    def sort_key(self) -> Tuple[int, str, int, str]:
        """The canonical total order capped sample sets are kept under."""
        return (self.day, self.client_key, self.record_index, self.reason)


class QuarantineLog:
    """Mergeable, reason-coded account of rejected and repaired records.

    Per-reason counts and the dropped/repaired totals are always exact;
    the retained :attr:`samples` are capped at
    :data:`QUARANTINE_SAMPLE_CAP`.  The cap keeps the *smallest* records
    under :meth:`QuarantinedRecord.sort_key`, which makes capping
    merge-order-insensitive: the global smallest-N of a union is always
    contained in the union of each part's smallest-N, so a merged capped
    log equals the capped log of a serial run bit-for-bit (and
    :meth:`digest` is therefore canonical).
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._dropped = 0
        self._repaired = 0
        self._samples: List[QuarantinedRecord] = []
        self._sorted = True

    # -- recording ------------------------------------------------------

    def record(
        self,
        day: int,
        client_key: str,
        record_index: int,
        reason: str,
        value: float,
        repaired: bool = False,
    ) -> None:
        """Account one rejected (or repaired) record."""
        self._counts[reason] = self._counts.get(reason, 0) + 1
        if repaired:
            self._repaired += 1
        else:
            self._dropped += 1
        self._samples.append(
            QuarantinedRecord(
                day=day,
                client_key=client_key,
                record_index=record_index,
                reason=reason,
                value=float(value),
                repaired=repaired,
            )
        )
        self._sorted = False
        if len(self._samples) >= 2 * QUARANTINE_SAMPLE_CAP:
            self._prune()

    def _prune(self) -> None:
        self._samples.sort(key=QuarantinedRecord.sort_key)
        del self._samples[QUARANTINE_SAMPLE_CAP:]
        self._sorted = True

    # -- queries --------------------------------------------------------

    @property
    def counts(self) -> Dict[str, int]:
        """Exact per-reason counts (dropped and repaired together)."""
        return dict(self._counts)

    @property
    def total(self) -> int:
        """Total flagged records (dropped + repaired)."""
        return self._dropped + self._repaired

    @property
    def dropped(self) -> int:
        """Records removed from the data plane."""
        return self._dropped

    @property
    def repaired(self) -> int:
        """Records clamped by the ``repair`` policy but kept."""
        return self._repaired

    @property
    def samples(self) -> Tuple[QuarantinedRecord, ...]:
        """The retained sample records, canonically ordered and capped."""
        if not self._sorted or len(self._samples) > QUARANTINE_SAMPLE_CAP:
            self._prune()
        return tuple(self._samples)

    def summary(self) -> Dict[str, Any]:
        """The compact accounting block run manifests embed."""
        return {
            "record_schema_version": RECORD_SCHEMA_VERSION,
            "total": self.total,
            "dropped": self._dropped,
            "repaired": self._repaired,
            "reasons": dict(sorted(self._counts.items())),
        }

    # -- merge / serialization ------------------------------------------

    def merge(self, other: "QuarantineLog") -> "QuarantineLog":
        """Fold another (shard's) quarantine log into this one (in place)."""
        for reason, count in other._counts.items():
            self._counts[reason] = self._counts.get(reason, 0) + count
        self._dropped += other._dropped
        self._repaired += other._repaired
        self._samples.extend(other._samples)
        self._sorted = False
        if len(self._samples) > QUARANTINE_SAMPLE_CAP:
            self._prune()
        return self

    def digest(self) -> str:
        """Canonical SHA-256 over counts and the capped sample set.

        Order-insensitive: serial and shard-merged logs of the same run
        digest identically.
        """
        hasher = hashlib.sha256()
        hasher.update(repr(sorted(self._counts.items())).encode())
        hasher.update(repr((self._dropped, self._repaired)).encode())
        for sample in self.samples:
            hasher.update(
                repr(
                    (
                        sample.day,
                        sample.client_key,
                        sample.record_index,
                        sample.reason,
                        sample.value,
                        sample.repaired,
                    )
                ).encode()
            )
        return hasher.hexdigest()

    def to_obj(self) -> Dict[str, Any]:
        """JSON-compatible form (checkpoint manifests, ``--quarantine-out``)."""
        return {
            "record_schema_version": RECORD_SCHEMA_VERSION,
            "counts": dict(sorted(self._counts.items())),
            "dropped": self._dropped,
            "repaired": self._repaired,
            "sample_cap": QUARANTINE_SAMPLE_CAP,
            "samples": [
                {
                    "day": s.day,
                    "client_key": s.client_key,
                    "record_index": s.record_index,
                    "reason": s.reason,
                    # JSON has no NaN/inf; repr round-trips exactly.
                    "value": repr(s.value),
                    "repaired": s.repaired,
                }
                for s in self.samples
            ],
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "QuarantineLog":
        """Rebuild a log from :meth:`to_obj` output.

        Raises:
            ValidationError: on a malformed or wrong-version document.
        """
        version = obj.get("record_schema_version")
        if version != RECORD_SCHEMA_VERSION:
            raise ValidationError(
                f"unsupported quarantine record schema version {version!r}",
                reason="bad-schema-version",
            )
        log = cls()
        try:
            log._counts = {
                str(reason): int(count)
                for reason, count in obj["counts"].items()
            }
            log._dropped = int(obj["dropped"])
            log._repaired = int(obj["repaired"])
            log._samples = [
                QuarantinedRecord(
                    day=int(s["day"]),
                    client_key=str(s["client_key"]),
                    record_index=int(s["record_index"]),
                    reason=str(s["reason"]),
                    value=float(s["value"]),
                    repaired=bool(s["repaired"]),
                )
                for s in obj["samples"]
            ]
        except (KeyError, TypeError, ValueError) as error:
            raise ValidationError(
                f"malformed quarantine log document ({error})",
                reason="bad-document",
            ) from error
        log._sorted = False
        return log


class ValidationGate:
    """One ingestion boundary's policy enforcement point.

    Both measurement engines, the passive log, and the dataset loaders
    funnel through instances of this class, so "what counts as a valid
    record" has exactly one definition.  Counters are plain integers
    (published to telemetry by the campaign's finalize phase) to keep
    the per-record fast path free of registry lookups.
    """

    def __init__(
        self,
        policy: "ValidationPolicy | str" = ValidationPolicy.LENIENT,
        quarantine: Optional[QuarantineLog] = None,
    ) -> None:
        self.policy = ValidationPolicy.parse(policy)
        self.quarantine = quarantine if quarantine is not None else QuarantineLog()
        self.records_total = 0
        self.dropped_total = 0
        self.repaired_total = 0

    def _reject(
        self,
        day: int,
        client_key: str,
        record_index: int,
        reason: str,
        value: float,
        repaired: Optional[float],
    ) -> Optional[float]:
        """Apply the policy to one classified-invalid record."""
        if self.policy is ValidationPolicy.STRICT:
            raise ValidationError(
                f"invalid record (day {day}, client {client_key}, "
                f"record {record_index}): {reason} (value {value!r})",
                reason=reason,
            )
        if self.policy is ValidationPolicy.REPAIR and repaired is not None:
            self.repaired_total += 1
            self.quarantine.record(
                day, client_key, record_index, reason, value, repaired=True
            )
            return repaired
        self.dropped_total += 1
        self.quarantine.record(
            day, client_key, record_index, reason, value, repaired=False
        )
        return None

    def admit(
        self, day: int, client_key: str, record_index: int, rtt_ms: float
    ) -> Optional[float]:
        """Validate one RTT record; the scalar (reference-engine) path.

        Returns the admitted value (possibly repaired), or ``None`` when
        the record was quarantined.

        Raises:
            ValidationError: under the ``strict`` policy.
        """
        self.records_total += 1
        # Fast path: the comparison chain is False for NaN, so every
        # invalid shape falls through to classification.
        if 0.0 <= rtt_ms <= MAX_PLAUSIBLE_RTT_MS:
            return rtt_ms
        verdict = classify_rtt(rtt_ms)
        assert verdict is not None
        reason, repaired = verdict
        return self._reject(
            day, client_key, record_index, reason, rtt_ms, repaired
        )

    def admit_matrix(
        self, day: int, client_key: str, rtts: np.ndarray
    ) -> Optional[np.ndarray]:
        """Validate a ``(B, T)`` RTT block; the vectorized-engine path.

        Returns ``None`` when every cell is valid (the caller keeps its
        zero-copy fast path), else a boolean admit mask.  Under the
        ``repair`` policy, repairable cells are clamped *in place* and
        admitted.  Record indices are the flat ``b * T + t`` offsets, the
        same layout the reference engine counts fetches in, so the two
        engines quarantine the same record coordinates.

        Raises:
            ValidationError: under the ``strict`` policy.
        """
        self.records_total += int(rtts.size)
        with np.errstate(invalid="ignore"):
            valid = (rtts >= 0.0) & (rtts <= MAX_PLAUSIBLE_RTT_MS)
        if valid.all():
            return None
        columns = rtts.shape[1]
        for row, col in np.argwhere(~valid):
            value = float(rtts[row, col])
            verdict = classify_rtt(value)
            assert verdict is not None
            reason, repaired = verdict
            admitted = self._reject(
                day,
                client_key,
                int(row) * columns + int(col),
                reason,
                value,
                repaired,
            )
            if admitted is not None:
                rtts[row, col] = admitted
                valid[row, col] = True
        return valid

    def admit_bulk_valid(self, rtts: np.ndarray) -> bool:
        """All-valid probe over an arbitrary RTT batch (matrix engine).

        Returns ``True`` — after counting every cell as checked — when
        the whole batch is valid, letting the caller skip per-block
        bookkeeping entirely.  Returns ``False`` *without counting
        anything* otherwise: the caller must then re-run the batch
        through :meth:`admit_matrix` in reference-engine block order so
        quarantine coordinates and ``records_total`` land exactly where
        the per-client engines put them.
        """
        with np.errstate(invalid="ignore"):
            valid = (rtts >= 0.0) & (rtts <= MAX_PLAUSIBLE_RTT_MS)
        if valid.all():
            self.records_total += int(rtts.size)
            return True
        return False

    def admit_count(
        self, day: int, client_key: str, frontend_id: str, count: int
    ) -> Optional[int]:
        """Validate one passive-log query count (the passive boundary)."""
        self.records_total += 1
        if count >= 0:
            return count
        admitted = self._reject(
            day, client_key, -1, REASON_NEGATIVE_COUNT, float(count), 0.0
        )
        return None if admitted is None else int(admitted)


def validate_dataset(
    dataset,
    policy: "ValidationPolicy | str" = ValidationPolicy.LENIENT,
    quarantine: Optional[QuarantineLog] = None,
) -> Tuple[ValidationGate, int]:
    """Validate a dataset at a load/merge boundary, in place.

    Scans every latency sample in both aggregate sinks and every
    request-diff row for schema violations, applying the policy (strict
    raise / lenient drop / repair clamp).  Valid datasets — everything
    the campaign gates produce — pass untouched, so round-trips are
    exact; the scan exists for data that arrived from *outside* a gate:
    hand-edited exports, foreign files, bit rot that survived framing.

    Returns ``(gate, removed)`` where ``removed`` is how many samples
    were dropped from the dataset.
    """
    gate = ValidationGate(policy, quarantine=quarantine)
    removed = 0
    for aggregates in (dataset.ecs_aggregates, dataset.ldns_aggregates):
        for day in aggregates.days:
            for group, target_id, digest in aggregates.iter_day(day):
                if not digest.is_exact:
                    # Sketch-mode digests retain no samples to rescan;
                    # the campaign gates already validated them at
                    # ingest.  Bucket keys derive from admitted values,
                    # so a range check on the retained extrema is the
                    # strongest test still available.
                    gate.records_total += digest.count
                    if digest.count and (
                        digest.minimum() < 0.0
                        or digest.maximum() > MAX_PLAUSIBLE_RTT_MS
                    ):
                        raise ValidationError(
                            "sketch-mode digest for "
                            f"({day}, {group!r}, {target_id!r}) holds "
                            "out-of-range samples that can no longer be "
                            "individually quarantined; re-run the "
                            "campaign with validation enabled"
                        )
                    continue
                values = digest.values_view()
                gate.records_total += int(values.size)
                with np.errstate(invalid="ignore"):
                    valid = (values >= 0.0) & (values <= MAX_PLAUSIBLE_RTT_MS)
                if valid.all():
                    continue
                gate.records_total -= int(values.size)
                kept: List[float] = []
                for value in digest.values():
                    admitted = gate.admit(day, group, -1, value)
                    if admitted is not None:
                        kept.append(admitted)
                if aggregates is dataset.ecs_aggregates:
                    # Each joined measurement contributes one ECS sample
                    # (and one LDNS sample); counting the ECS removals
                    # keeps measurement_count honest without doubling.
                    removed += digest.count - len(kept)
                replacement = type(digest)(
                    kept,
                    exact_threshold=digest.exact_threshold,
                    relative_accuracy=digest.relative_accuracy,
                )
                aggregates._days[day][group][target_id] = replacement
    diffs = dataset.request_diffs
    if diffs.is_bounded:
        # Bounded logs hold sketches of already-gated diffs, not rows.
        gate.records_total += len(diffs)
        if removed:
            dataset.measurement_count = max(
                0, dataset.measurement_count - removed
            )
        return gate, removed
    anycast = np.frombuffer(diffs._anycast, dtype=np.float32)
    best = np.frombuffer(diffs._best_unicast, dtype=np.float32)
    with np.errstate(invalid="ignore"):
        row_valid = (
            (anycast >= 0.0)
            & (anycast <= _MAX_PLAUSIBLE_RTT_MS_F32)
            & (best >= 0.0)
            & (best <= _MAX_PLAUSIBLE_RTT_MS_F32)
        )
    if row_valid.all():
        gate.records_total += int(anycast.size)
    else:
        # Release the frombuffer views: a Python array refuses to resize
        # while numpy still exports its buffer.
        del anycast, best
        for i in sorted(
            (int(i) for i in np.flatnonzero(~row_valid)), reverse=True
        ):
            day = int(diffs._day[i])
            client_key = str(diffs._client_index[i])
            kept_a = gate.admit(day, client_key, i, float(diffs._anycast[i]))
            kept_b = gate.admit(
                day, client_key, i, float(diffs._best_unicast[i])
            )
            if kept_a is not None and kept_b is not None:
                # Both halves survived (repair policy): keep the row.
                diffs._anycast[i] = kept_a
                diffs._best_unicast[i] = kept_b
                continue
            for col in (
                diffs._day,
                diffs._client_index,
                diffs._region_code,
                diffs._anycast,
                diffs._best_unicast,
            ):
                del col[i]
        gate.records_total += int(row_valid.sum())
    if removed:
        dataset.measurement_count = max(
            0, dataset.measurement_count - removed
        )
    return gate, removed
