"""Crash-safe framed segment files: length + CRC JSON lines.

A multi-minute campaign's export must survive the two failure modes a
production log pipeline sees constantly: a writer killed mid-flush (torn
tail) and bytes damaged at rest (bit rot).  Plain ``json.dump`` survives
neither — one lost byte makes the whole document unparseable.

This module frames a file as a sequence of independently verifiable
lines::

    <payload-byte-length> <crc32-hex> <compact-json-payload>\\n

* Every frame carries its own length and CRC32, so damage is localized:
  a corrupt frame is *skipped*, not fatal.
* Files end with a footer frame recording the frame count, so a reader
  can tell "complete" from "cut off after a valid frame".
* Writers targeting a path go through a temp file + ``fsync`` +
  ``os.replace``, so a crash mid-export leaves the previous file intact
  — readers never observe a half-written path.

Readers come in two postures: :func:`read_segment_file` with
``strict=True`` raises :class:`repro.errors.StorageError` on any damage
(the default for loads feeding an analysis), while ``strict=False``
salvages what it can and reports exactly what was lost in a
:class:`RecoveryReport` — truncating torn tails and skipping corrupt
frames instead of raising mid-parse.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterable, List, Tuple, Union

from repro.errors import StorageError

#: Frame kind key every frame carries.
FRAME_KIND_KEY = "kind"
FOOTER_KIND = "footer"


def format_frame(obj: Dict[str, Any]) -> str:
    """Render one object as a framed line.

    The payload is compact JSON with ASCII escapes, so the byte length
    equals the character length and the frame survives any text-mode
    round trip.
    """
    payload = json.dumps(obj, separators=(",", ":"), sort_keys=True)
    data = payload.encode("ascii")
    return f"{len(data)} {zlib.crc32(data):08x} {payload}\n"


def footer_frame(frame_count: int) -> Dict[str, Any]:
    """The closing frame: how many frames precede it."""
    return {FRAME_KIND_KEY: FOOTER_KIND, "frames": frame_count}


@dataclass
class RecoveryReport:
    """What a non-strict read salvaged, and what it could not.

    Attributes:
        frames_total: Well-formed frames decoded (excluding the footer).
        frames_corrupt: Frames skipped for a length/CRC/JSON mismatch.
        torn_tail: True when the file ended mid-frame (the torn bytes
            were discarded).
        footer_seen: True when a valid footer closed the file *and* its
            recorded frame count matched what was read before it.
    """

    frames_total: int = 0
    frames_corrupt: int = 0
    torn_tail: bool = False
    footer_seen: bool = False
    salvaged_kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when nothing was lost: every frame intact, footer valid."""
        return (
            self.footer_seen
            and self.frames_corrupt == 0
            and not self.torn_tail
        )

    def to_obj(self) -> Dict[str, Any]:
        """JSON-compatible form for manifests."""
        return {
            "frames_total": self.frames_total,
            "frames_corrupt": self.frames_corrupt,
            "torn_tail": self.torn_tail,
            "footer_seen": self.footer_seen,
            "complete": self.complete,
            "salvaged_kinds": dict(sorted(self.salvaged_kinds.items())),
        }


def _parse_frame(line: str) -> Dict[str, Any]:
    """Decode one framed line; raises ``ValueError`` on any mismatch."""
    length_text, _, rest = line.partition(" ")
    crc_text, _, payload = rest.partition(" ")
    length = int(length_text)  # ValueError on damage
    data = payload.encode("ascii", errors="strict")
    if len(data) != length:
        raise ValueError(
            f"frame length mismatch: declared {length}, got {len(data)}"
        )
    if zlib.crc32(data) != int(crc_text, 16):
        raise ValueError("frame CRC mismatch")
    obj = json.loads(payload)
    if not isinstance(obj, dict):
        raise ValueError("frame payload is not an object")
    return obj


def write_segment_file(
    path_or_file: Union[str, IO[str]],
    frames: Iterable[Dict[str, Any]],
) -> int:
    """Write frames (plus the footer) crash-safely; returns frame count.

    Writing to a path goes through ``<path>.tmp-<pid>`` and an atomic
    ``os.replace``, with an ``fsync`` in between, so the destination
    either keeps its old content or holds the complete new file — never
    a prefix.  Writing to an open stream emits the frames directly (the
    caller owns that stream's durability).
    """
    if isinstance(path_or_file, str):
        tmp_path = f"{path_or_file}.tmp-{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="ascii") as handle:
                count = _write_frames(handle, frames)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path_or_file)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        return count
    return _write_frames(path_or_file, frames)


def _write_frames(handle: IO[str], frames: Iterable[Dict[str, Any]]) -> int:
    count = 0
    for frame in frames:
        handle.write(format_frame(frame))
        count += 1
    handle.write(format_frame(footer_frame(count)))
    return count


def read_segment_text(
    text: str, strict: bool = True, source: str = "<stream>"
) -> Tuple[List[Dict[str, Any]], RecoveryReport]:
    """Decode framed text into its frames plus a recovery report.

    With ``strict=True`` any damage — a corrupt frame, a torn tail, a
    missing or miscounting footer — raises :class:`StorageError`.  With
    ``strict=False`` the reader salvages every intact frame, skipping
    corrupt ones and truncating the torn tail, and the report says
    exactly what happened.
    """
    report = RecoveryReport()
    frames: List[Dict[str, Any]] = []
    lines = text.split("\n")
    # A file that ends with a newline splits into [... , ""]; anything
    # else in the final slot is a frame the writer never finished.
    tail = lines.pop() if lines else ""
    footer_count = None
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            obj = _parse_frame(line)
        except (ValueError, UnicodeEncodeError, json.JSONDecodeError) as error:
            if strict:
                raise StorageError(
                    f"{source}: corrupt frame at line {index + 1} ({error})"
                ) from error
            report.frames_corrupt += 1
            continue
        if obj.get(FRAME_KIND_KEY) == FOOTER_KIND:
            footer_count = obj.get("frames")
            continue
        frames.append(obj)
        report.frames_total += 1
        kind = str(obj.get(FRAME_KIND_KEY))
        report.salvaged_kinds[kind] = report.salvaged_kinds.get(kind, 0) + 1
    if tail:
        if strict:
            raise StorageError(
                f"{source}: torn tail (file ends mid-frame, "
                f"{len(tail)} trailing bytes)"
            )
        report.torn_tail = True
    # Only an exact match on an intact file reads as a complete close;
    # a corrupt or missing frame leaves the footer's count unmet.
    report.footer_seen = (
        footer_count is not None and footer_count == report.frames_total
    )
    if strict and not report.footer_seen:
        raise StorageError(
            f"{source}: missing or miscounting footer "
            f"(declared {footer_count!r}, read {report.frames_total})"
        )
    return frames, report


def read_segment_file(
    path_or_file: Union[str, IO[str]], strict: bool = True
) -> Tuple[List[Dict[str, Any]], RecoveryReport]:
    """Read and decode a framed segment file (path or open stream)."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8", newline="") as handle:
            text = handle.read()
        source = path_or_file
    else:
        text = path_or_file.read()
        source = getattr(path_or_file, "name", "<stream>")
    return read_segment_text(text, strict=strict, source=source)


def atomic_write_text(path: str, text: str) -> None:
    """Write text to a path via temp file + fsync + atomic rename."""
    tmp_path = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
