"""Streaming aggregation of beacon measurements.

A month-long campaign produces millions of joined measurements; holding
them as objects would dwarf memory.  Analyses only ever need (a) per-day
per-(group, target) latency distributions and (b) the per-request anycast
minus best-unicast difference (Fig 3).  These sinks accumulate exactly
that, with compact ``array`` storage.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import AnalysisError, MeasurementError
from repro.latency.sampling import percentile


class LatencyDigest:
    """Append-only latency sample accumulator with percentile queries.

    Samples live in a C-double array; the sorted view is computed lazily
    and invalidated on append, so an analysis pass issuing consecutive
    percentile queries sorts at most once.  Large digests sort into a
    numpy array (one ``np.sort`` over the buffer, O(1) interpolated
    quantile lookups); small ones stay on plain Python lists, which are
    cheaper below the array-conversion overhead.
    """

    __slots__ = ("_values", "_sorted", "_sorted_array")

    #: Sample count at which percentile queries switch from a sorted
    #: Python list to a sorted numpy array.
    _NUMPY_SORT_THRESHOLD = 64

    def __init__(self, values: Optional[Sequence[float]] = None) -> None:
        self._values = array("d", values or ())
        self._sorted: Optional[List[float]] = None
        self._sorted_array: Optional[np.ndarray] = None

    def add(self, value: float) -> None:
        """Append one sample."""
        self._values.append(value)
        self._invalidate()

    def extend(self, values: Union[np.ndarray, Sequence[float]]) -> None:
        """Append a batch of samples (the vectorized engine's bulk path).

        Accepts any float sequence; numpy arrays append through the
        buffer protocol without a per-element Python loop.
        """
        if isinstance(values, np.ndarray):
            self._values.frombytes(
                np.ascontiguousarray(values, dtype=np.float64).tobytes()
            )
        else:
            self._values.extend(values)
        self._invalidate()

    def merge(self, other: "LatencyDigest") -> None:
        """Fold another digest's samples into this one."""
        self._values.extend(other._values)
        self._invalidate()

    def _invalidate(self) -> None:
        self._sorted = None
        self._sorted_array = None

    @property
    def count(self) -> int:
        """Number of samples."""
        return len(self._values)

    def percentile(self, q: float) -> float:
        """The q-th percentile of the samples (linear interpolation).

        Raises:
            AnalysisError: if empty, or ``q`` outside [0, 100].
        """
        if not self._values:
            raise AnalysisError("empty digest has no percentiles")
        if len(self._values) < self._NUMPY_SORT_THRESHOLD:
            if self._sorted is None:
                self._sorted = sorted(self._values)
            return percentile(self._sorted, q)
        if not 0.0 <= q <= 100.0:
            raise AnalysisError(f"percentile must be in [0, 100], got {q}")
        if self._sorted_array is None:
            # np.frombuffer views the array's buffer; np.sort copies, so
            # the cached result is safe against later appends (which
            # invalidate it anyway).
            self._sorted_array = np.sort(
                np.frombuffer(self._values, dtype=np.float64)
            )
        ordered = self._sorted_array
        rank = (q / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return float(ordered[low])
        fraction = rank - low
        return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)

    def median(self) -> float:
        """Shorthand for the 50th percentile."""
        return self.percentile(50.0)

    def minimum(self) -> float:
        """Smallest sample."""
        if not self._values:
            raise AnalysisError("empty digest has no minimum")
        return min(self._values)

    def values(self) -> Tuple[float, ...]:
        """All samples (copy)."""
        return tuple(self._values)


class GroupedDailyAggregates:
    """day → group → target → :class:`LatencyDigest`.

    One instance aggregates by ECS group (client /24), another by LDNS id;
    the structure is identical, only the grouping key differs.  The nested
    layout keeps per-group queries (``targets_for``) O(targets), which the
    predictor calls once per group per day.
    """

    def __init__(self, grouping: str) -> None:
        if not grouping:
            raise MeasurementError("grouping label cannot be empty")
        self._grouping = grouping
        self._days: Dict[int, Dict[str, Dict[str, LatencyDigest]]] = {}

    @property
    def grouping(self) -> str:
        """Label of the grouping dimension ('ecs' or 'ldns')."""
        return self._grouping

    def observe(self, day: int, group: str, target_id: str, rtt_ms: float) -> None:
        """Add one measurement."""
        per_day = self._days.setdefault(day, {})
        per_group = per_day.get(group)
        if per_group is None:
            per_group = {}
            per_day[group] = per_group
        digest = per_group.get(target_id)
        if digest is None:
            digest = LatencyDigest()
            per_group[target_id] = digest
        digest.add(rtt_ms)

    def observe_many(
        self,
        day: int,
        group: str,
        target_id: str,
        rtts_ms: Union[np.ndarray, Sequence[float]],
    ) -> None:
        """Add a batch of measurements for one (day, group, target).

        The bulk counterpart of :meth:`observe` — one dictionary walk and
        one :meth:`LatencyDigest.extend` per batch instead of per sample.
        """
        if len(rtts_ms) == 0:
            return
        per_day = self._days.setdefault(day, {})
        per_group = per_day.get(group)
        if per_group is None:
            per_group = {}
            per_day[group] = per_group
        digest = per_group.get(target_id)
        if digest is None:
            digest = LatencyDigest()
            per_group[target_id] = digest
        digest.extend(rtts_ms)

    @property
    def days(self) -> Tuple[int, ...]:
        """Days with any data, ascending."""
        return tuple(sorted(self._days))

    def groups_on(self, day: int) -> Tuple[str, ...]:
        """Distinct group keys observed on a day."""
        return tuple(sorted(self._days.get(day, {})))

    def digest(self, day: int, group: str, target_id: str) -> Optional[LatencyDigest]:
        """The digest for one (day, group, target), or ``None``."""
        return self._days.get(day, {}).get(group, {}).get(target_id)

    def targets_for(self, day: int, group: str) -> Dict[str, LatencyDigest]:
        """target_id → digest for one group-day."""
        return dict(self._days.get(day, {}).get(group, {}))

    def iter_day(self, day: int) -> Iterator[Tuple[str, str, LatencyDigest]]:
        """Iterate (group, target, digest) triples for a day."""
        for group, per_group in self._days.get(day, {}).items():
            for target_id, digest in per_group.items():
                yield group, target_id, digest

    def merge(self, other: "GroupedDailyAggregates") -> "GroupedDailyAggregates":
        """Fold another instance's samples into this one (in place).

        Used to combine per-shard partial aggregates from a parallel
        campaign; digests are copied, never aliased, so the source stays
        independently usable.

        Raises:
            MeasurementError: if the grouping dimensions differ.
        """
        if other._grouping != self._grouping:
            raise MeasurementError(
                f"cannot merge {other._grouping!r} aggregates into "
                f"{self._grouping!r} aggregates"
            )
        for day, per_day in other._days.items():
            mine_day = self._days.setdefault(day, {})
            for group, per_group in per_day.items():
                mine_group = mine_day.setdefault(group, {})
                for target_id, digest in per_group.items():
                    mine = mine_group.get(target_id)
                    if mine is None:
                        mine_group[target_id] = LatencyDigest(digest.values())
                    else:
                        mine.merge(digest)
        return self


@dataclass(frozen=True)
class RequestDiffRow:
    """One beacon execution summarized for Fig 3."""

    client_index: int
    region_code: int
    anycast_rtt_ms: float
    best_unicast_rtt_ms: float
    day: int = 0

    @property
    def diff_ms(self) -> float:
        """Anycast minus best-of-measured-unicast latency."""
        return self.anycast_rtt_ms - self.best_unicast_rtt_ms


class RequestDiffLog:
    """Per-request anycast-vs-best-unicast differences, column-packed.

    Region codes index into :attr:`region_names`, assigned on first use.
    """

    def __init__(self) -> None:
        self._client_index = array("i")
        self._region_code = array("b")
        self._anycast = array("f")
        self._best_unicast = array("f")
        self._day = array("i")
        self._region_names: List[str] = []
        self._region_codes: Dict[str, int] = {}

    def region_code(self, region_name: str) -> int:
        """Stable small-int code for a region name."""
        code = self._region_codes.get(region_name)
        if code is None:
            code = len(self._region_names)
            if code > 127:
                raise MeasurementError("too many distinct regions")
            self._region_names.append(region_name)
            self._region_codes[region_name] = code
        return code

    @property
    def region_names(self) -> Tuple[str, ...]:
        """Known region names, by code."""
        return tuple(self._region_names)

    def observe(
        self,
        day: int,
        client_index: int,
        region_name: str,
        anycast_rtt_ms: float,
        best_unicast_rtt_ms: float,
    ) -> None:
        """Record one beacon execution's summary."""
        self._day.append(day)
        self._client_index.append(client_index)
        self._region_code.append(self.region_code(region_name))
        self._anycast.append(anycast_rtt_ms)
        self._best_unicast.append(best_unicast_rtt_ms)

    def observe_many(
        self,
        day: int,
        client_index: int,
        region_name: str,
        anycast_rtts_ms: Union[np.ndarray, Sequence[float]],
        best_unicast_rtts_ms: Union[np.ndarray, Sequence[float]],
    ) -> None:
        """Record one client-day's beacon summaries in bulk.

        Both value sequences must have equal length; the day, client, and
        region are shared by every row (which is exactly the shape one
        vectorized (client, day) block produces).
        """
        n = len(anycast_rtts_ms)
        if len(best_unicast_rtts_ms) != n:
            raise MeasurementError(
                "anycast and best-unicast batches must have equal length"
            )
        if n == 0:
            return
        code = self.region_code(region_name)
        self._day.extend([day] * n)
        self._client_index.extend([client_index] * n)
        self._region_code.extend([code] * n)
        # float32 storage, same cast the scalar append performs.
        self._anycast.frombytes(
            np.ascontiguousarray(anycast_rtts_ms, dtype=np.float32).tobytes()
        )
        self._best_unicast.frombytes(
            np.ascontiguousarray(
                best_unicast_rtts_ms, dtype=np.float32
            ).tobytes()
        )

    def __len__(self) -> int:
        return len(self._day)

    def diffs(self, region_name: Optional[str] = None) -> List[float]:
        """Anycast minus best-unicast per request, optionally one region."""
        if region_name is None:
            return [
                a - b for a, b in zip(self._anycast, self._best_unicast)
            ]
        if region_name not in self._region_codes:
            return []
        want = self._region_codes[region_name]
        return [
            a - b
            for a, b, code in zip(
                self._anycast, self._best_unicast, self._region_code
            )
            if code == want
        ]

    def rows(self) -> Iterator[RequestDiffRow]:
        """Iterate all rows (mostly for tests; analyses use columns)."""
        for i in range(len(self._day)):
            yield RequestDiffRow(
                client_index=self._client_index[i],
                region_code=self._region_code[i],
                anycast_rtt_ms=self._anycast[i],
                best_unicast_rtt_ms=self._best_unicast[i],
                day=self._day[i],
            )

    def merge(self, other: "RequestDiffLog") -> "RequestDiffLog":
        """Append another log's rows to this one (in place).

        Region codes are remapped through region *names*, so logs whose
        regions were first observed in different orders (as happens with
        per-shard logs) merge correctly.
        """
        code_map = [
            self.region_code(name) for name in other._region_names
        ]
        self._day.extend(other._day)
        self._client_index.extend(other._client_index)
        self._region_code.extend(
            code_map[code] for code in other._region_code
        )
        self._anycast.extend(other._anycast)
        self._best_unicast.extend(other._best_unicast)
        return self
