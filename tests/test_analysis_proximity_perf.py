"""Tests for Figs 1–3 analyses: proximity and per-request penalty."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.anycast_perf import (
    EUROPE,
    UNITED_STATES,
    WORLD,
    anycast_penalty_ccdf,
)
from repro.analysis.proximity import (
    diminishing_returns,
    nth_closest_distance_cdf,
)
from repro.cdn.frontend import FrontEnd
from repro.geo.geolocation import GeolocationDatabase
from repro.geo.metros import MetroDatabase
from repro.net.ip import IPv4Prefix, PrefixAllocator

from tests.helpers import make_client, make_dataset

METROS = MetroDatabase()


def make_frontends(codes):
    allocator = PrefixAllocator(IPv4Prefix.parse("198.18.0.0/16"))
    return tuple(
        FrontEnd(f"fe-{c}", METROS.get(c), allocator.allocate_slash24())
        for c in codes
    )


class TestNthClosest:
    def test_medians_ordered(self):
        nyc = METROS.get("nyc").location
        clients = [make_client(1, location=nyc, daily_queries=5.0)]
        frontends = make_frontends(["nyc", "phl", "bos", "chi", "lax"])
        result = nth_closest_distance_cdf(clients, frontends, max_n=4)
        assert list(result.medians_km) == sorted(result.medians_km)
        assert result.medians_km[0] == pytest.approx(0.0, abs=1.0)
        # 2nd closest to NYC among these is Philadelphia (~130 km).
        assert result.medians_km[1] == pytest.approx(130, abs=15)

    def test_weighting_changes_result(self):
        nyc = METROS.get("nyc").location
        lax = METROS.get("lax").location
        clients = [
            make_client(1, location=nyc, daily_queries=1.0),
            make_client(2, location=lax, daily_queries=99.0),
        ]
        frontends = make_frontends(["nyc", "chi"])
        weighted = nth_closest_distance_cdf(clients, frontends, max_n=1)
        unweighted = nth_closest_distance_cdf(
            clients, frontends, max_n=1, weighted=False
        )
        # The heavy LA client is far from both front-ends, dragging the
        # weighted median up.
        assert weighted.medians_km[0] > unweighted.medians_km[0]

    def test_geolocation_used_when_given(self):
        nyc = METROS.get("nyc").location
        lon = METROS.get("lon").location
        client = make_client(1, location=nyc)
        geo = GeolocationDatabase(error_fraction=0.0)
        geo.register(client.key, lon)  # database believes London
        frontends = make_frontends(["nyc", "lon"])
        result = nth_closest_distance_cdf([client], frontends, geo, max_n=1)
        assert result.medians_km[0] == pytest.approx(0.0, abs=1.0)

    def test_validation(self):
        clients = [make_client(1)]
        frontends = make_frontends(["nyc"])
        with pytest.raises(AnalysisError):
            nth_closest_distance_cdf(clients, frontends, max_n=0)
        with pytest.raises(AnalysisError):
            nth_closest_distance_cdf(clients, frontends, max_n=5)

    def test_format(self):
        clients = [make_client(1, location=METROS.get("nyc").location)]
        result = nth_closest_distance_cdf(
            clients, make_frontends(["nyc", "chi"]), max_n=2
        )
        assert "Fig 2" in result.format()


class TestDiminishingReturns:
    def build(self):
        """A London client whose nearest candidate is slow and whose
        3rd-nearest is fast — so growing the candidate set helps."""
        lon = METROS.get("lon").location
        client = make_client(1, location=lon, ldns_id="ldns-lon")
        key = client.key
        ecs = [
            (0, key, "fe-lon", [40.0] * 5),
            (0, key, "fe-par", [35.0] * 5),
            (1, key, "fe-ams", [12.0] * 5),
        ]
        dataset = make_dataset([client], num_days=2, ecs_samples=ecs)
        geo = GeolocationDatabase(error_fraction=0.0)
        geo.register("ldns-lon", lon)
        frontends = make_frontends(["lon", "par", "ams", "fra", "mad"])
        return dataset, frontends, geo

    def test_min_latency_shrinks_with_candidates(self):
        dataset, frontends, geo = self.build()
        result = diminishing_returns(
            dataset, frontends, geo, candidate_sizes=(1, 3, 5)
        )
        assert result.medians_ms[1] == 40.0
        assert result.medians_ms[3] == 12.0   # Amsterdam becomes visible
        assert result.medians_ms[5] == 12.0   # no further gain
        assert result.gain_ms(1, 3) == pytest.approx(28.0)
        assert result.gain_ms(3, 5) == 0.0
        assert "Fig 1" in result.format()

    def test_anycast_measurements_ignored(self):
        dataset, frontends, geo = self.build()
        dataset.ecs_aggregates.observe(0, dataset.clients[0].key, "anycast", 1.0)
        result = diminishing_returns(
            dataset, frontends, geo, candidate_sizes=(1,)
        )
        assert result.medians_ms[1] == 40.0

    def test_validation(self):
        dataset, frontends, geo = self.build()
        with pytest.raises(AnalysisError):
            diminishing_returns(dataset, frontends, geo, candidate_sizes=())


class TestAnycastPenalty:
    def build(self):
        clients = [make_client(1)]
        dataset = make_dataset(clients, num_days=1)
        diffs = dataset.request_diffs
        # Europe: 2 requests, one 30 ms worse, one equal.
        diffs.observe(0, 0, EUROPE, 50.0, 20.0)
        diffs.observe(0, 0, EUROPE, 20.0, 20.0)
        # US: one request 5 ms worse.
        diffs.observe(0, 0, UNITED_STATES, 25.0, 20.0)
        return dataset

    def test_fractions(self):
        result = anycast_penalty_ccdf(self.build())
        europe = result.fraction_slower[EUROPE]
        assert europe[25.0] == pytest.approx(0.5)
        assert europe[100.0] == 0.0
        world = result.fraction_slower[WORLD]
        assert world[1.0] == pytest.approx(2 / 3)
        assert result.request_count == 3

    def test_series_labels(self):
        result = anycast_penalty_ccdf(self.build())
        labels = {s.label for s in result.series}
        assert {EUROPE, WORLD, UNITED_STATES} <= labels
        assert "Fig 3" in result.format()

    def test_empty_rejected(self):
        dataset = make_dataset([make_client(1)], num_days=1)
        with pytest.raises(AnalysisError, match="no beacon requests"):
            anycast_penalty_ccdf(dataset)

    def test_missing_region_skipped(self):
        dataset = make_dataset([make_client(1)], num_days=1)
        dataset.request_diffs.observe(0, 0, EUROPE, 30.0, 20.0)
        result = anycast_penalty_ccdf(dataset)
        assert UNITED_STATES not in result.fraction_slower
        assert EUROPE in result.fraction_slower
