"""Fig 6 — how long poor anycast paths persist across April 2015.

Paper: the majority of ever-poor /24s are poor on a single day; ~10% are
poor on five or more days; only ~5% are poor five or more days in a row.
"""

from conftest import write_figure


def test_fig6_poor_path_duration(benchmark, paper_study):
    result = benchmark(paper_study.fig6_poor_path_duration)
    write_figure(
        "fig6_poor_path_duration", result.format(),
        [result.days_poor, result.max_consecutive],
        title="Fig 6 - poor-path duration (CDF of ever-poor /24s)",
        x_label="days",
    )

    # Many problems are short-lived; a persistent minority exists.  (The
    # reproduction's poor set skews more persistent than the paper's 60%
    # single-day — see EXPERIMENTS.md for the deviation discussion.)
    assert result.fraction_single_day >= 0.10
    assert result.fraction_five_plus_days < 0.60
    # Consecutive persistence is rarer than total-day persistence.
    assert (
        result.fraction_five_plus_consecutive
        <= result.fraction_five_plus_days
    )
    # The days-poor CDF starts below the max-consecutive CDF nowhere
    # (total days >= max run, so its CDF is weakly lower).
    for days_y, run_y in zip(result.days_poor.ys, result.max_consecutive.ys):
        assert days_y <= run_y + 1e-9
