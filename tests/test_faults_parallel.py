"""Chaos tests: fault injection, retries, degradation, and resume.

The central invariant under test: a campaign that survives injected
faults via retries produces a dataset *bit-identical* to the fault-free
run (same :meth:`StudyDataset.digest`), because every retry re-derives
the exact same per-(client, day) RNG streams.  A campaign that cannot
survive either fails loudly (:class:`ShardFailureError` naming the shard
and attempt count) or — with ``allow_partial`` — degrades to a dataset
that declares its missing client ranges.
"""

import os

import pytest

from repro.errors import ConfigurationError, ShardFailureError
from repro.clients.population import ClientPopulationConfig
from repro.faults import (
    DEFAULT_HANG_SECONDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    InjectedTransientError,
    WorkerFaultInjector,
    corrupt_payload,
)
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.checkpoint import (
    load_shard_checkpoint,
    shard_payload_path,
    write_shard_checkpoint,
)
from repro.simulation.clock import SimulationCalendar
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.telemetry import build_run_manifest

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def chaos_config() -> ScenarioConfig:
    return ScenarioConfig(
        seed=23,
        population=ClientPopulationConfig(prefix_count=40),
        calendar=SimulationCalendar(num_days=2),
    )


@pytest.fixture(scope="module")
def chaos_scenario(chaos_config) -> Scenario:
    return Scenario.build(chaos_config)


@pytest.fixture(scope="module")
def clean_digest(chaos_scenario) -> str:
    """Digest of the fault-free serial run — the golden fingerprint."""
    return CampaignRunner(chaos_scenario).run().digest()


def _chaos_campaign(spec: str, **overrides) -> CampaignConfig:
    overrides.setdefault("max_retries", 3)
    overrides.setdefault("retry_backoff_seconds", 0.0)
    return CampaignConfig(fault_plan=FaultPlan.from_spec(spec), **overrides)


class TestFaultPlanParsing:
    def test_spec_grammar(self):
        plan = FaultPlan.from_spec("crash:2,hang, exception:3@0 ,merge:1@7")
        assert plan.specs == (
            FaultSpec(FaultKind.CRASH, count=2),
            FaultSpec(FaultKind.HANG, count=1),
            FaultSpec(FaultKind.EXCEPTION, count=3, shard=0),
            FaultSpec(FaultKind.MERGE, count=1, shard=7),
        )
        assert plan.spec_string() == "crash:2,hang:1,exception:3@0,merge:1@7"

    def test_malformed_specs_rejected(self):
        for bad in ("gremlin:1", "crash:x", "crash:1@y", "", " , ", "crash:0"):
            with pytest.raises(ConfigurationError):
                FaultPlan.from_spec(bad)

    def test_compile_is_deterministic(self):
        plan = FaultPlan.from_spec("crash:2,exception:1")
        first = plan.compile(23, shards=4).firing_points()
        second = plan.compile(23, shards=4).firing_points()
        assert first == second
        assert len(first) == 3

    def test_compile_depends_on_seed_and_shards_only(self):
        plan = FaultPlan.from_spec("crash:3")
        assert (
            plan.compile(1, shards=4).firing_points()
            != plan.compile(2, shards=4).firing_points()
            or plan.compile(1, shards=2).firing_points()
            != plan.compile(1, shards=4).firing_points()
        )

    def test_faults_stack_per_shard(self):
        plan = FaultPlan.from_spec("crash:3@1")
        compiled = plan.compile(23, shards=2)
        assert compiled.firing_points() == (
            (1, 0, "crash"), (1, 1, "crash"), (1, 2, "crash"),
        )
        assert compiled.faults_on(1) == 3
        assert compiled.fault_for(1, 3) is None

    def test_pinned_shard_wraps_modulo(self):
        compiled = FaultPlan.from_spec("merge:1@7").compile(23, shards=2)
        assert compiled.fault_for(1, 0) is FaultKind.MERGE

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("crash:1").compile(23, shards=0)


class TestWorkerFaultInjector:
    def test_crash_raises_at_worker_start(self):
        injector = WorkerFaultInjector(
            FaultKind.CRASH, seed=23, shard_index=0, attempt=0
        )
        with pytest.raises(InjectedCrashError):
            injector.on_worker_start()

    def test_exception_fires_on_exactly_one_day(self):
        injector = WorkerFaultInjector(
            FaultKind.EXCEPTION, seed=23, shard_index=0, attempt=0
        )
        fired = []
        for day in range(5):
            try:
                injector.on_day(day, 5)
            except InjectedTransientError:
                fired.append(day)
        assert len(fired) == 1

    def test_hang_sleeps_for_configured_duration(self):
        naps = []
        injector = WorkerFaultInjector(
            FaultKind.HANG, seed=23, shard_index=0, attempt=0,
            hang_seconds=4.5, sleep=naps.append,
        )
        injector.hang_before_return()
        assert naps == [4.5]

    def test_corrupt_transforms_payload(self):
        payload = b"shard payload bytes"
        injector = WorkerFaultInjector(
            FaultKind.CORRUPT, seed=23, shard_index=0, attempt=0
        )
        mangled = injector.transform_payload(payload)
        assert mangled != payload and len(mangled) == len(payload)
        assert corrupt_payload(b"") == b"\xff"

    def test_no_fault_is_inert(self):
        injector = WorkerFaultInjector(
            None, seed=23, shard_index=0, attempt=0,
            sleep=lambda _: pytest.fail("slept without a hang fault"),
        )
        injector.on_worker_start()
        for day in range(3):
            injector.on_day(day, 3)
        injector.hang_before_return()
        assert injector.transform_payload(b"x") == b"x"
        assert not injector.fires_on_merge

    def test_default_hang_duration(self):
        injector = WorkerFaultInjector(
            FaultKind.HANG, seed=23, shard_index=0, attempt=0
        )
        assert injector.hang_seconds == DEFAULT_HANG_SECONDS


class TestChaosRecovery:
    """Per fault kind: retried runs match the fault-free digest exactly."""

    @pytest.mark.parametrize(
        "spec", ["crash:1", "exception:1", "corrupt:1", "merge:1"]
    )
    def test_retried_run_is_bit_identical(
        self, chaos_scenario, clean_digest, spec
    ):
        runner = ParallelCampaignRunner(
            chaos_scenario, _chaos_campaign(spec), workers=2
        )
        dataset = runner.run()
        assert dataset.digest() == clean_digest
        assert not dataset.is_partial
        counters = runner.telemetry.snapshot().counters
        assert counters["faults.injected_total"] == 1
        assert counters["shard.retries_total"] == 1
        assert counters["shard.failures_total"] == 1
        assert len(runner.fired_faults) == 1
        assert runner.fired_faults[0][2] == spec.split(":")[0]

    def test_hang_recovered_via_shard_timeout(
        self, chaos_scenario, clean_digest
    ):
        # The timeout must sit well above a loaded machine's clean-shard
        # runtime (spurious timeouts cascade into retry exhaustion) but
        # well below the injected hang.
        plan = FaultPlan.from_spec("hang:1", hang_seconds=12.0)
        runner = ParallelCampaignRunner(
            chaos_scenario,
            CampaignConfig(
                fault_plan=plan, max_retries=2, shard_timeout=3.0,
                retry_backoff_seconds=0.0,
            ),
            workers=2,
        )
        assert runner.run().digest() == clean_digest
        assert runner.fired_faults[0][2] == "hang"

    def test_stacked_mixed_faults_recovered(
        self, chaos_scenario, clean_digest
    ):
        runner = ParallelCampaignRunner(
            chaos_scenario,
            _chaos_campaign("crash:1,corrupt:1,merge:1,exception:1"),
            workers=2,
        )
        assert runner.run().digest() == clean_digest
        counters = runner.telemetry.snapshot().counters
        assert counters["faults.injected_total"] == 4
        assert counters["shard.retries_total"] == 4

    def test_single_worker_inline_recovery(
        self, chaos_scenario, clean_digest
    ):
        runner = ParallelCampaignRunner(
            chaos_scenario, _chaos_campaign("exception:1"), workers=1
        )
        assert runner.run().digest() == clean_digest
        assert runner.workers == 1

    def test_serial_runner_surfaces_injected_fault(self, chaos_scenario):
        # Without the resilient executor there is no retry: the injected
        # fault surfaces as its typed error.
        runner = CampaignRunner(
            chaos_scenario,
            CampaignConfig(fault_plan=FaultPlan.from_spec("crash:1")),
        )
        with pytest.raises(InjectedCrashError):
            runner.run()


class TestExhaustion:
    def test_exhausted_retries_raise_typed_error(self, chaos_scenario):
        runner = ParallelCampaignRunner(
            chaos_scenario,
            _chaos_campaign("crash:3@1", max_retries=2),
            workers=2,
        )
        with pytest.raises(ShardFailureError) as excinfo:
            runner.run()
        error = excinfo.value
        assert error.shard_index == 1
        assert error.attempts == 3
        assert error.client_range == (20, 40)
        assert "shard 1" in str(error)

    def test_allow_partial_degrades_with_declared_gaps(self, chaos_scenario):
        runner = ParallelCampaignRunner(
            chaos_scenario,
            _chaos_campaign("crash:3@1", max_retries=2, allow_partial=True),
            workers=2,
        )
        dataset = runner.run()
        assert dataset.is_partial
        assert dataset.missing_ranges() == ((20, 40),)
        assert dataset.coverage_fraction == pytest.approx(0.5)
        snapshot = runner.telemetry.snapshot()
        assert snapshot.gauges["campaign.client_coverage"]["value"] == (
            pytest.approx(0.5)
        )
        manifest = build_run_manifest(snapshot, dataset=dataset)
        assert manifest["missing_client_ranges"] == [[20, 40]]
        assert manifest["client_coverage"] == pytest.approx(0.5)

    def test_partial_digest_differs_from_full(
        self, chaos_scenario, clean_digest
    ):
        runner = ParallelCampaignRunner(
            chaos_scenario,
            _chaos_campaign("crash:3@1", max_retries=2, allow_partial=True),
            workers=2,
        )
        assert runner.run().digest() != clean_digest

    def test_all_shards_lost_yields_empty_partial(self, chaos_scenario):
        runner = ParallelCampaignRunner(
            chaos_scenario,
            _chaos_campaign(
                "crash:3@0,crash:3@1", max_retries=2, allow_partial=True
            ),
            workers=2,
        )
        dataset = runner.run()
        assert dataset.coverage_fraction == 0.0
        assert dataset.beacon_count == 0
        assert dataset.missing_ranges() == ((0, 40),)


class TestCheckpointResume:
    def test_resume_completes_partial_campaign(
        self, chaos_scenario, clean_digest, tmp_path
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        first = ParallelCampaignRunner(
            chaos_scenario,
            _chaos_campaign(
                "crash:3@1", max_retries=2, allow_partial=True,
                checkpoint_dir=checkpoint_dir,
            ),
            workers=2,
        )
        assert first.run().is_partial
        assert os.path.exists(os.path.join(checkpoint_dir, "shard-0000.json"))

        second = ParallelCampaignRunner(
            chaos_scenario,
            CampaignConfig(checkpoint_dir=checkpoint_dir, resume=True),
            workers=2,
        )
        dataset = second.run()
        assert dataset.digest() == clean_digest
        counters = second.telemetry.snapshot().counters
        assert counters["checkpoint.loaded_total"] == 1
        assert counters["checkpoint.saved_total"] == 1  # the re-run shard

    def test_corrupted_checkpoint_is_rerun_not_trusted(
        self, chaos_scenario, clean_digest, tmp_path
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        seeded = ParallelCampaignRunner(
            chaos_scenario,
            CampaignConfig(checkpoint_dir=checkpoint_dir),
            workers=2,
        )
        assert seeded.run().digest() == clean_digest

        payload = shard_payload_path(checkpoint_dir, 0)
        with open(payload, "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xff\xff\xff")

        resumed = ParallelCampaignRunner(
            chaos_scenario,
            CampaignConfig(checkpoint_dir=checkpoint_dir, resume=True),
            workers=2,
        )
        assert resumed.run().digest() == clean_digest
        counters = resumed.telemetry.snapshot().counters
        assert counters["checkpoint.invalid_total"] == 1
        assert counters["checkpoint.loaded_total"] == 1

    def test_mismatched_checkpoint_identity_is_ignored(
        self, chaos_scenario, tmp_path
    ):
        directory = str(tmp_path)
        dataset = CampaignRunner(
            chaos_scenario, client_slice=(0, 20)
        ).run()
        write_shard_checkpoint(
            directory, 0, (0, 20), dataset, seed=23, config_hash="abc"
        )
        assert (
            load_shard_checkpoint(
                directory, 0, (0, 20), seed=23, config_hash="abc"
            )
            is not None
        )
        # Different config hash, seed, or range: "not mine", never loaded.
        assert (
            load_shard_checkpoint(
                directory, 0, (0, 20), seed=23, config_hash="zzz"
            )
            is None
        )
        assert (
            load_shard_checkpoint(
                directory, 0, (0, 20), seed=24, config_hash="abc"
            )
            is None
        )
        assert (
            load_shard_checkpoint(
                directory, 0, (0, 21), seed=23, config_hash="abc"
            )
            is None
        )

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(resume=True)


class TestEngineDifferential:
    """The same faulted campaign fires identically under both engines."""

    def test_firing_points_and_counters_match_across_engines(
        self, chaos_scenario
    ):
        spec = "crash:1,exception:1,merge:1"
        fault_counter_names = (
            "faults.injected_total",
            "shard.retries_total",
            "shard.failures_total",
        )
        results = {}
        for engine in ("reference", "vectorized"):
            clean = ParallelCampaignRunner(
                chaos_scenario, CampaignConfig(engine=engine), workers=2
            ).run()
            chaos = ParallelCampaignRunner(
                chaos_scenario,
                _chaos_campaign(spec, engine=engine),
                workers=2,
            )
            dataset = chaos.run()
            # Within an engine, surviving the plan is digest-neutral.
            assert dataset.digest() == clean.digest()
            counters = chaos.telemetry.snapshot().counters
            results[engine] = (
                chaos.fired_faults,
                {name: counters[name] for name in fault_counter_names},
                {
                    name: value
                    for name, value in counters.items()
                    if name.startswith("faults.injected.")
                },
            )
        assert results["reference"] == results["vectorized"]
        fired = results["reference"][0]
        assert sorted(kind for _, _, kind in fired) == [
            "crash", "exception", "merge",
        ]


class TestCliResilienceFlags:
    def test_flags_build_campaign_config(self):
        from repro.cli import _campaign_config, build_parser

        args = build_parser().parse_args(
            [
                "run", "out.json",
                "--fault-plan", "crash:1,exception:2@0",
                "--max-retries", "5",
                "--shard-timeout", "2.5",
                "--allow-partial",
                "--resume-from", "/tmp/ckpt",
            ]
        )
        config = _campaign_config(args)
        assert config.fault_plan is not None
        assert config.fault_plan.spec_string() == "crash:1,exception:2@0"
        assert config.max_retries == 5
        assert config.shard_timeout == 2.5
        assert config.allow_partial is True
        assert config.checkpoint_dir == "/tmp/ckpt"
        assert config.resume is True

    def test_defaults_are_fault_free(self):
        from repro.cli import _campaign_config, build_parser

        args = build_parser().parse_args(["run", "out.json"])
        config = _campaign_config(args)
        assert config.fault_plan is None
        assert config.resume is False
        assert config.checkpoint_dir is None
