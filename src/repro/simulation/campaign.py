"""The measurement campaign: a month of beacons and production traffic.

This is the simulated counterpart of §3.2's data collection.  For every
day and client /24:

* production queries are served over the client's current anycast route
  (churn state) and logged passively (front-end counts — §3.2.1);
* a volume-proportional number of beacon sessions run, each measuring the
  anycast target plus three unicast front-ends (§3.2.2–3.3); the three
  log streams flow through :class:`repro.measurement.backend.BeaconBackend`
  whose joined rows feed the ECS- and LDNS-grouped aggregates;
* per-session, the anycast minus best-unicast difference is recorded for
  Fig 3.

Latencies come from cached per-path baselines plus per-measurement jitter
and any active poor-path episode inflation on the anycast route.

**Determinism and sharding.**  Every random draw that shapes a client's
measurements comes from an RNG derived from ``(seed, "campaign", day,
client_key)`` (or an even finer path), never from a stream shared across
clients.  A client's measurements are therefore bit-identical no matter
the iteration order, shard assignment, or worker count — which is what
lets :class:`repro.simulation.parallel.ParallelCampaignRunner` split the
population into contiguous shards, run them in separate processes, and
merge the partial datasets into the exact dataset a serial run produces.

**Engines.**  Two measurement engines share this campaign skeleton (day
loop, churn/episode plans, passive traffic, query/beacon volumes — all
identical between them):

* ``"reference"`` — the scalar oracle: every beacon fetch runs through
  :class:`repro.measurement.beacon.BeaconRunner` and draws one sample at
  a time from the per-(client, day) ``random.Random`` stream;
* ``"vectorized"`` — :class:`_VectorizedBeaconEngine`: each (client,
  day) block of beacons is synthesized as numpy arrays from a
  ``numpy.random.Generator`` derived from the same seed chain, and
  flows into the sinks through bulk APIs.

Each engine honors the determinism contract above *within itself*
(serial ≡ sharded ≡ parallel for a fixed engine); the two engines'
datasets agree statistically but not bit-for-bit, since they consume
different random streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.dns.authoritative import ANYCAST_TARGET
from repro.faults import (
    FaultKind,
    FaultPlan,
    RecordFaultInjector,
    WorkerFaultInjector,
)
from repro.telemetry import RunContext, Telemetry, config_digest, get_logger
from repro.geo.regions import region_of_point
from repro.measurement.aggregate import GroupedDailyAggregates, RequestDiffLog
from repro.measurement.sketch import (
    DEFAULT_MAX_BUCKETS,
    DEFAULT_RELATIVE_ACCURACY,
    MIN_MAX_BUCKETS,
)
from repro.telemetry.memory import peak_rss_bytes
from repro.measurement.backend import BeaconBackend, JoinedBatch, JoinedSegment
from repro.measurement.beacon import BeaconConfig, BeaconRunner, BeaconTargetSelector
from repro.measurement.logs import HttpLogEntry, JoinedMeasurement, PassiveLog
from repro.measurement.validate import (
    QuarantineLog,
    ValidationGate,
    ValidationPolicy,
)
from repro.clients.population import ClientPrefix
from repro.rand import derive_rng, derive_seed
from repro.simulation.churn import DayRoutePlan
from repro.simulation.dataset import StudyDataset
from repro.simulation.episodes import EpisodeScope
from repro.simulation.scenario import Scenario

_log = get_logger("campaign")


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign-level knobs.

    Attributes:
        beacon: Beacon methodology parameters.
        progress_callback: Optional per-day hook ``f(day, num_days)`` for
            long runs (the library never prints on its own).  Ignored by
            sharded parallel runs.
        workers: Worker-process count for the campaign, or ``None`` to
            inherit :attr:`repro.simulation.scenario.ScenarioConfig.workers`.
        engine: Measurement engine — ``"reference"`` (scalar oracle) or
            ``"vectorized"`` (numpy-batched, several times faster), or
            ``None`` to inherit
            :attr:`repro.simulation.scenario.ScenarioConfig.engine`.
            Either engine is deterministic per seed and bit-identical
            across worker counts; the two engines' datasets agree
            statistically, not bit-for-bit.
        fault_plan: Optional deterministic fault schedule
            (:class:`repro.faults.FaultPlan`) injected into the run —
            worker crashes, hangs, transient exceptions, corrupted shard
            payloads, merge failures.  Faults never touch the campaign's
            measurement RNG streams, so a run that survives them via
            retries is bit-identical to the fault-free run.
        max_retries: Retries per shard after its first attempt (so a
            shard gets ``max_retries + 1`` attempts total).
        shard_timeout: Seconds the coordinator waits for one shard
            attempt before declaring it hung and retrying.  ``None``
            waits forever.  Only enforceable for worker-process shards;
            an in-process run cannot be interrupted.
        allow_partial: When a shard exhausts its retries, drop its
            client range and finish with a partial dataset (whose
            :meth:`~repro.simulation.dataset.StudyDataset.missing_ranges`
            names the gap) instead of raising
            :class:`repro.errors.ShardFailureError`.
        checkpoint_dir: Spill each completed shard's partial dataset
            here (see :mod:`repro.simulation.checkpoint`).
        resume: Reuse intact, matching shard checkpoints from
            ``checkpoint_dir`` instead of re-running those shards.
        retry_backoff_seconds: Base of the exponential backoff between
            a shard's failed attempt and its retry
            (``base * 2**attempt``).
        validation: Record-validation policy both engines enforce at the
            ingestion boundaries (see :mod:`repro.measurement.validate`):
            ``"strict"`` raises on the first invalid record, ``"lenient"``
            (the default) drops invalid records into the campaign's
            quarantine log, ``"repair"`` clamps repairable records and
            annotates them.
        sketch_threshold: Per-digest sample count above which latency
            digests promote from exact sample retention to bounded
            :class:`repro.measurement.sketch.LatencySketch` aggregation,
            and the request-diff and passive logs switch to their
            bounded forms.  ``None`` (the default) keeps everything
            exact — bit-compatible with every historical digest.
            Setting it makes campaign memory independent of client
            count (the constant-memory mode); percentile queries then
            answer within the sketch's relative error bound, and
            per-row/per-client queries on the diff and passive logs
            become unavailable.
        sketch_accuracy: Relative accuracy of the sketches used above
            the threshold (worst-case relative quantile error; the
            default 0.01 guarantees <= 1%).
        sketch_max_buckets: Hard per-sketch bucket cap.  A sketch that
            exceeds it halves its resolution (deterministically merging
            adjacent bucket pairs) until it fits, doubling its relative
            error bound per halving — this is what makes peak memory
            genuinely flat in client count rather than merely
            log-linear.  Must be >= 8.
    """

    beacon: BeaconConfig = BeaconConfig()
    progress_callback: Optional[Callable[[int, int], None]] = None
    workers: Optional[int] = None
    engine: Optional[str] = None
    fault_plan: Optional[FaultPlan] = None
    max_retries: int = 2
    shard_timeout: Optional[float] = None
    allow_partial: bool = False
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    retry_backoff_seconds: float = 0.05
    validation: str = "lenient"
    sketch_threshold: Optional[int] = None
    sketch_accuracy: float = DEFAULT_RELATIVE_ACCURACY
    sketch_max_buckets: int = DEFAULT_MAX_BUCKETS

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.sketch_threshold is not None and self.sketch_threshold < 1:
            raise ConfigurationError("sketch_threshold must be >= 1")
        if not 0.0 < self.sketch_accuracy <= 0.5:
            raise ConfigurationError(
                "sketch_accuracy must be in (0, 0.5]"
            )
        if self.sketch_max_buckets < MIN_MAX_BUCKETS:
            raise ConfigurationError(
                f"sketch_max_buckets must be >= {MIN_MAX_BUCKETS}"
            )
        if self.validation not in ("strict", "lenient", "repair"):
            raise ConfigurationError(
                f"unknown validation policy {self.validation!r}; expected "
                "'strict', 'lenient', or 'repair'"
            )
        if self.engine not in (None, "reference", "vectorized"):
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected 'reference' or "
                "'vectorized'"
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ConfigurationError("shard_timeout must be > 0")
        if self.retry_backoff_seconds < 0:
            raise ConfigurationError("retry_backoff_seconds must be >= 0")
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError(
                "resume requires a checkpoint_dir to resume from"
            )


def largest_remainder_apportion(
    total: int, fractions: Sequence[float]
) -> List[int]:
    """Split ``total`` into integer parts proportional to ``fractions``.

    Uses largest-remainder (Hamilton) apportionment: each part gets the
    floor of its exact share, and leftover units go to the parts with the
    largest fractional remainders (ties to the earliest index, keeping the
    result deterministic).  The parts always sum exactly to ``total`` —
    unlike independent rounding, which can over- or under-count.

    Raises:
        ConfigurationError: if ``total`` is negative or ``fractions`` is
            empty.
    """
    if total < 0:
        raise ConfigurationError("total must be non-negative")
    if not fractions:
        raise ConfigurationError("fractions cannot be empty")
    shares = [total * fraction for fraction in fractions]
    counts = [int(share) for share in shares]
    leftover = total - sum(counts)
    if leftover > 0:
        by_remainder = sorted(
            range(len(shares)),
            key=lambda i: (counts[i] - shares[i], i),
        )
        for i in by_remainder[:leftover]:
            counts[i] += 1
    return counts


@dataclass
class PathCacheStats:
    """Hit/miss counters for one campaign's :class:`_PathCache`.

    During a run the counters live in the campaign's telemetry registry
    (``path_cache.*`` counters); this dataclass is the stable public
    view built from a snapshot (:meth:`from_snapshot`), kept for callers
    and for standalone construction in tests.
    """

    anycast_hits: int = 0
    anycast_misses: int = 0
    unicast_hits: int = 0
    unicast_misses: int = 0

    @property
    def anycast_hit_rate(self) -> float:
        """Anycast-path cache hit rate (0 when never queried)."""
        total = self.anycast_hits + self.anycast_misses
        return self.anycast_hits / total if total else 0.0

    @property
    def unicast_hit_rate(self) -> float:
        """Unicast-path cache hit rate (0 when never queried)."""
        total = self.unicast_hits + self.unicast_misses
        return self.unicast_hits / total if total else 0.0

    def merge(self, other: "PathCacheStats") -> "PathCacheStats":
        """Fold another cache's counters into this one (in place)."""
        self.anycast_hits += other.anycast_hits
        self.anycast_misses += other.anycast_misses
        self.unicast_hits += other.unicast_hits
        self.unicast_misses += other.unicast_misses
        return self

    @classmethod
    def from_snapshot(cls, snapshot) -> "PathCacheStats":
        """The view over a telemetry snapshot's ``path_cache.*`` counters."""
        counters = snapshot.counters
        return cls(
            anycast_hits=int(counters.get("path_cache.anycast.hits_total", 0)),
            anycast_misses=int(
                counters.get("path_cache.anycast.misses_total", 0)
            ),
            unicast_hits=int(counters.get("path_cache.unicast.hits_total", 0)),
            unicast_misses=int(
                counters.get("path_cache.unicast.misses_total", 0)
            ),
        )


@dataclass
class CampaignStats:
    """Instrumentation emitted by a campaign run.

    The numbers originate in the run's telemetry registry
    (:class:`repro.telemetry.Telemetry`); this dataclass is the public
    view distilled from its snapshot (:meth:`from_snapshot`) — kept
    constructible directly for tests and ad-hoc arithmetic.

    Attributes:
        wall_seconds: Total wall-clock time of the run.
        beacon_count: Beacon sessions executed.
        measurement_count: Joined measurements produced.
        day_seconds: Wall-clock time per simulated day.  For sharded runs
            these are summed across shards, so they read as CPU-seconds.
        path_cache: Per-:class:`_PathCache` hit/miss counters.
        workers: Worker processes the campaign ran with.
        engine: Measurement engine the campaign ran with.
    """

    wall_seconds: float = 0.0
    beacon_count: int = 0
    measurement_count: int = 0
    day_seconds: List[float] = field(default_factory=list)
    path_cache: PathCacheStats = field(default_factory=PathCacheStats)
    workers: int = 1
    engine: str = "reference"

    @property
    def beacons_per_second(self) -> float:
        """Beacon throughput over the whole run."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.beacon_count / self.wall_seconds

    def merge(self, other: "CampaignStats") -> "CampaignStats":
        """Fold another (shard's) stats into this one (in place).

        Wall time takes the max — concurrent shards overlap — while the
        per-day times add up as total effort spent on each day.
        """
        self.wall_seconds = max(self.wall_seconds, other.wall_seconds)
        self.beacon_count += other.beacon_count
        self.measurement_count += other.measurement_count
        if len(other.day_seconds) > len(self.day_seconds):
            self.day_seconds.extend(
                [0.0] * (len(other.day_seconds) - len(self.day_seconds))
            )
        for day, seconds in enumerate(other.day_seconds):
            self.day_seconds[day] += seconds
        self.path_cache.merge(other.path_cache)
        return self

    @classmethod
    def from_snapshot(cls, snapshot) -> "CampaignStats":
        """The view over a (possibly merged) telemetry snapshot.

        Wall time reads from the ``campaign.wall_seconds`` gauge (merge
        policy ``max``, matching how concurrent shards overlap) and the
        per-day seconds from the indexed ``campaign/day`` span record
        (summed across shards, i.e. CPU-seconds).
        """
        counters = snapshot.counters
        wall = snapshot.gauges.get("campaign.wall_seconds", {}).get("value")
        if wall is None:
            root = snapshot.spans.get("campaign")
            wall = root.seconds if root is not None else 0.0
        return cls(
            wall_seconds=float(wall),
            beacon_count=int(counters.get("campaign.beacons_total", 0)),
            measurement_count=int(
                counters.get("campaign.measurements_total", 0)
            ),
            day_seconds=snapshot.day_seconds("campaign/day"),
            path_cache=PathCacheStats.from_snapshot(snapshot),
            workers=int(snapshot.context.get("workers", 1)),
            engine=str(snapshot.context.get("engine", "reference")),
        )

    def format(self) -> str:
        """A short human-readable summary for the CLI."""
        lines = [
            (
                f"campaign stats: {self.beacon_count:,} beacons in "
                f"{self.wall_seconds:.2f}s "
                f"({self.beacons_per_second:,.0f} beacons/s, "
                f"workers={self.workers}, engine={self.engine})"
            ),
            (
                "path cache: anycast "
                f"{self.path_cache.anycast_hit_rate:.1%} hit "
                f"({self.path_cache.anycast_hits:,}/"
                f"{self.path_cache.anycast_hits + self.path_cache.anycast_misses:,}), "
                "unicast "
                f"{self.path_cache.unicast_hit_rate:.1%} hit "
                f"({self.path_cache.unicast_hits:,}/"
                f"{self.path_cache.unicast_hits + self.path_cache.unicast_misses:,})"
            ),
        ]
        if self.day_seconds:
            slowest = max(self.day_seconds)
            lines.append(
                f"per-day: mean {sum(self.day_seconds) / len(self.day_seconds):.2f}s, "
                f"max {slowest:.2f}s over {len(self.day_seconds)} days"
            )
        return "\n".join(lines)


class _PathCache:
    """Per-client cached (frontend_id, baseline_rtt_ms) lookups.

    Baselines include the path's *persistent quality offset* (see
    :meth:`repro.latency.model.LatencyModel.sample_static_offset_ms`),
    drawn from a seed-derived RNG so it is stable for the whole study.
    """

    def __init__(self, scenario: Scenario, telemetry: Telemetry) -> None:
        self._scenario = scenario
        self._anycast: Dict[Tuple[str, int], Tuple[str, float]] = {}
        self._unicast: Dict[Tuple[str, str], float] = {}
        self._anycast_hits = telemetry.counter(
            "path_cache.anycast.hits_total",
            "anycast (client, rank) baseline lookups served from cache",
        )
        self._anycast_misses = telemetry.counter(
            "path_cache.anycast.misses_total",
            "anycast baselines computed from routing + latency model",
        )
        self._unicast_hits = telemetry.counter(
            "path_cache.unicast.hits_total",
            "unicast (client, front-end) baseline lookups served from cache",
        )
        self._unicast_misses = telemetry.counter(
            "path_cache.unicast.misses_total",
            "unicast baselines computed from routing + latency model",
        )

    @property
    def stats(self) -> PathCacheStats:
        """The public counter view (values live in the registry)."""
        return PathCacheStats(
            anycast_hits=int(self._anycast_hits.value),
            anycast_misses=int(self._anycast_misses.value),
            unicast_hits=int(self._unicast_hits.value),
            unicast_misses=int(self._unicast_misses.value),
        )

    def _static_offset(self, client_key: str, path_key: str, anycast: bool) -> float:
        scenario = self._scenario
        rng = derive_rng(
            scenario.config.seed, "path-quality", client_key, path_key
        )
        return scenario.latency_model.sample_static_offset_ms(
            rng, anycast=anycast
        )

    def anycast(self, client_key: str, rank: int) -> Tuple[str, float]:
        """Serving front-end and baseline RTT over the anycast route."""
        cached = self._anycast.get((client_key, rank))
        if cached is None:
            self._anycast_misses.inc()
            scenario = self._scenario
            client = scenario.client_by_key(client_key)
            path = scenario.network.anycast_path(
                client.asn, client.home_metro, client.location, rank
            )
            baseline = scenario.latency_model.baseline_rtt_ms(
                path.path_km,
                path.backbone_km,
                path.as_hops,
                client.access_delay_ms,
            )
            # The anycast path's quality is a property of the client's
            # steady route, keyed by the ingress so a route change also
            # changes path quality.
            baseline += self._static_offset(
                client_key, f"anycast-{path.ingress_metro}", anycast=True
            )
            cached = (path.frontend.frontend_id, baseline)
            self._anycast[(client_key, rank)] = cached
        else:
            self._anycast_hits.inc()
        return cached

    def unicast(self, client_key: str, frontend_id: str) -> float:
        """Baseline RTT to one front-end's unicast prefix."""
        baseline = self._unicast.get((client_key, frontend_id))
        if baseline is None:
            self._unicast_misses.inc()
            scenario = self._scenario
            client = scenario.client_by_key(client_key)
            path = scenario.network.unicast_path(
                frontend_id, client.asn, client.home_metro, client.location
            )
            baseline = scenario.latency_model.baseline_rtt_ms(
                path.path_km,
                path.backbone_km,
                path.as_hops,
                client.access_delay_ms,
            )
            baseline += self._static_offset(
                client_key, frontend_id, anycast=False
            )
            self._unicast[(client_key, frontend_id)] = baseline
        else:
            self._unicast_hits.inc()
        return baseline


#: Beacon sessions synthesized per numpy block.  Days heavier than this
#: are processed in fixed-size blocks over the same per-(client, day)
#: stream, bounding the engine's transient matrices at roughly
#: ``_MAX_BLOCK_BEACONS x targets`` doubles regardless of volume.
_MAX_BLOCK_BEACONS = 4096


class _VectorizedBeaconEngine:
    """Batched beacon synthesis: one numpy block per (client, day).

    The scalar reference engine walks every beacon fetch through Python —
    target selection, jitter draw, sink append — one call at a time.
    This engine synthesizes a whole (client, day) block of ``B`` beacons
    × ``T`` targets as arrays:

    * session-rank switches, random-pick indices, daily congestion
      offsets, jitter bodies, spike masks, spike magnitudes, and
      primitive-timing overheads are batched draws from one
      ``numpy.random.Generator`` seeded by
      ``derive_seed(seed, "campaign-vec", day, client)``;
    * per-target fixed components (cached path baseline + persistent
      offset + daily congestion offset + episode inflation) assemble into
      a ``(B, T)`` base matrix that the jitter adds onto;
    * results flow into the sinks through the bulk APIs
      (:meth:`BeaconBackend.on_joined_batch`,
      :meth:`RequestDiffLog.observe_many`) — no per-sample Python calls.

    Because every draw derives from ``(seed, day, client)``, the engine
    is deterministic per seed and bit-identical across serial, sharded,
    and re-ordered runs — the same contract the reference engine has,
    just over a different stream, so digests differ between engines while
    the distributions match (pinned by the equivalence tests).
    """

    def __init__(
        self,
        scenario: Scenario,
        selector: BeaconTargetSelector,
        paths: "_PathCache",
        beacon_config: BeaconConfig,
        backend: BeaconBackend,
        request_diffs: RequestDiffLog,
        gate: ValidationGate,
    ) -> None:
        self._scenario = scenario
        self._selector = selector
        self._paths = paths
        self._beacon_config = beacon_config
        self._backend = backend
        self._request_diffs = request_diffs
        self._gate = gate
        self._latency = scenario.latency_model
        self._seed = scenario.config.seed

    def _unicast_fixed_ms(
        self,
        client_key: str,
        target_id: str,
        daily_offset_ms: float,
        degraded_frontend: Optional[str],
        unicast_inflation: float,
    ) -> float:
        """Baseline + daily offset (+ episode inflation) for one target."""
        fixed = self._paths.unicast(client_key, target_id) + daily_offset_ms
        if target_id == degraded_frontend:
            fixed += unicast_inflation
        return fixed

    def run_client_day(
        self,
        day: int,
        client: ClientPrefix,
        client_index: int,
        region: str,
        resource_timing_supported: bool,
        plan: DayRoutePlan,
        beacons: int,
        anycast_extra_ms: float,
        degraded_frontend: Optional[str],
        unicast_inflation_ms: float,
        dirty_slots: Optional[Dict[int, FaultKind]] = None,
    ) -> None:
        """Synthesize and sink one client-day's ``beacons`` sessions.

        Days up to ``_MAX_BLOCK_BEACONS`` sessions run as a single block
        and consume the per-(client, day) stream exactly as they always
        have.  Heavier days (large simulated populations behind one /24)
        are split into fixed-size blocks over the same stream, so the
        transient ``(B, T)`` matrices — the campaign's peak-memory
        driver — stay bounded no matter the day's volume.  Daily
        congestion offsets are cached per unicast path across blocks
        (one draw per path per day, first-touch order), preserving the
        one-offset-per-path-per-day semantics.  Block boundaries are a
        pure function of ``beacons``, so chunked runs remain
        deterministic and shard-order-independent.
        """
        key = client.key
        gen = np.random.default_rng(
            derive_seed(self._seed, "campaign-vec", day, key)
        )
        daily_offset_cache: Dict[int, float] = {}
        for start in range(0, beacons, _MAX_BLOCK_BEACONS):
            self._run_block(
                day,
                client,
                client_index,
                region,
                resource_timing_supported,
                plan,
                min(_MAX_BLOCK_BEACONS, beacons - start),
                start,
                anycast_extra_ms,
                degraded_frontend,
                unicast_inflation_ms,
                gen,
                daily_offset_cache,
                dirty_slots,
            )

    def _daily_offsets_for(
        self,
        gen: np.random.Generator,
        cache: Dict[int, float],
        path_keys: List[int],
    ) -> None:
        """Draw daily congestion offsets for any not-yet-seen paths.

        ``path_keys`` uses ``-1`` for the closest target and pool indices
        for picked targets; draws happen in the given order, one batch
        call, so the single-block case consumes the stream exactly as
        the unchunked implementation did.
        """
        missing = [k for k in path_keys if k not in cache]
        if not missing:
            return
        drawn = self._latency.sample_daily_variation_batch_ms(
            gen, len(missing), anycast=False
        )
        for path_key, offset in zip(missing, drawn):
            cache[path_key] = float(offset)

    def _run_block(
        self,
        day: int,
        client: ClientPrefix,
        client_index: int,
        region: str,
        resource_timing_supported: bool,
        plan: DayRoutePlan,
        beacons: int,
        beacon_start: int,
        anycast_extra_ms: float,
        degraded_frontend: Optional[str],
        unicast_inflation_ms: float,
        gen: np.random.Generator,
        daily_offset_cache: Dict[int, float],
        dirty_slots: Optional[Dict[int, FaultKind]] = None,
    ) -> None:
        """Synthesize and sink one block of ``beacons`` sessions."""
        key = client.key
        ldns_id = client.ldns_id

        # Anycast fixed component per possible session rank (1 or 2).
        rank_frontends: List[str] = []
        rank_fixed: List[float] = []
        for rank in plan.ranks:
            frontend_id, baseline = self._paths.anycast(key, rank)
            rank_frontends.append(frontend_id)
            rank_fixed.append(baseline + anycast_extra_ms)
        if len(plan.ranks) > 1:
            on_first_rank = gen.random(beacons) < plan.fractions[0]
            anycast_fixed = np.where(
                on_first_rank, rank_fixed[0], rank_fixed[1]
            )
        else:
            on_first_rank = None
            anycast_fixed = np.full(beacons, rank_fixed[0])

        closest = self._selector.closest(ldns_id)
        pick_indices = self._selector.sample_pick_indices(
            ldns_id, gen, beacons
        )
        picks = pick_indices.shape[1]
        targets = 2 + picks
        pool = self._selector.pick_pool(ldns_id)
        if picks:
            picked_pool_indices = np.unique(pick_indices)
        else:
            picked_pool_indices = np.empty(0, dtype=np.intp)

        # One daily congestion draw per unicast path the day's beacons
        # touch: the closest target first, then the picked pool targets
        # in index order (cached across blocks of the same day).
        self._daily_offsets_for(
            gen,
            daily_offset_cache,
            [-1] + [int(i) for i in picked_pool_indices],
        )
        daily_offsets = [daily_offset_cache[-1]] + [
            daily_offset_cache[int(i)] for i in picked_pool_indices
        ]

        jitter = self._latency.sample_jitter_batch_ms(
            gen, (beacons, targets)
        )
        if not resource_timing_supported:
            cfg = self._beacon_config
            overhead = gen.normal(
                cfg.primitive_overhead_mean_ms,
                cfg.primitive_overhead_sigma_ms,
                (beacons, targets),
            )
            jitter = jitter + np.maximum(overhead, 0.0)

        fixed = np.empty((beacons, targets))
        fixed[:, 0] = anycast_fixed
        fixed[:, 1] = self._unicast_fixed_ms(
            key, closest, daily_offsets[0], degraded_frontend,
            unicast_inflation_ms,
        )
        if picks:
            pool_fixed = np.zeros(len(pool))
            for position, pool_index in enumerate(picked_pool_indices):
                pool_fixed[pool_index] = self._unicast_fixed_ms(
                    key,
                    pool[pool_index],
                    daily_offsets[1 + position],
                    degraded_frontend,
                    unicast_inflation_ms,
                )
            fixed[:, 2:] = pool_fixed[pick_indices]

        # Browser timing APIs report integer milliseconds (same rounding
        # the reference engine applies per fetch).
        rtts = np.rint(fixed + jitter)

        if dirty_slots:
            # Record faults land on flat b * T + t slots — the same
            # coordinates the reference engine counts fetches in (day
            # level, so rebase into this block's rows).
            for flat, kind in dirty_slots.items():
                b, t = divmod(flat, targets)
                b -= beacon_start
                if not 0 <= b < beacons:
                    continue
                rtts[b, t] = RecordFaultInjector.dirty_value(
                    kind, float(rtts[b, t])
                )

        admit = self._gate.admit_matrix(day, key, rtts)
        if admit is None:
            # Every cell valid (the overwhelmingly common case): the
            # original zero-copy bulk path.
            best_unicast = rtts[:, 1:].min(axis=1)
            self._request_diffs.observe_many(
                day, client_index, region, rtts[:, 0], best_unicast
            )
        else:
            # A session contributes a diff row only when its anycast
            # fetch and at least one unicast fetch were admitted — the
            # same rule the reference engine's per-fetch tracking
            # applies.
            row_ok = admit[:, 0] & admit[:, 1:].any(axis=1)
            if row_ok.any():
                best_unicast = np.where(
                    admit[:, 1:], rtts[:, 1:], np.inf
                ).min(axis=1)
                self._request_diffs.observe_many(
                    day,
                    client_index,
                    region,
                    rtts[row_ok, 0],
                    best_unicast[row_ok],
                )

        segments: List[JoinedSegment] = []

        def add_segment(
            target_id: str, frontend_id: str, values: np.ndarray
        ) -> None:
            if values.size:
                segments.append(
                    JoinedSegment(target_id, frontend_id, values)
                )

        anycast_ok = (
            np.ones(beacons, dtype=bool) if admit is None else admit[:, 0]
        )
        if on_first_rank is None:
            add_segment(
                ANYCAST_TARGET, rank_frontends[0], rtts[anycast_ok, 0]
            )
        else:
            for rank_position, mask in ((0, on_first_rank), (1, ~on_first_rank)):
                add_segment(
                    ANYCAST_TARGET,
                    rank_frontends[rank_position],
                    rtts[mask & anycast_ok, 0],
                )
        if admit is None:
            add_segment(closest, closest, rtts[:, 1])
        else:
            add_segment(closest, closest, rtts[admit[:, 1], 1])
        if picks:
            pick_rtts = rtts[:, 2:]
            pick_ok = None if admit is None else admit[:, 2:]
            for pool_index in picked_pool_indices:
                target_id = pool[pool_index]
                selected = pick_indices == pool_index
                if pick_ok is not None:
                    selected = selected & pick_ok
                add_segment(target_id, target_id, pick_rtts[selected])
        self._backend.on_joined_batch(
            JoinedBatch(
                day=day,
                client_key=key,
                ldns_id=ldns_id,
                segments=tuple(segments),
            )
        )


class CampaignRunner:
    """Runs a scenario's measurement campaign into a dataset.

    Args:
        scenario: The built study environment.
        config: Campaign knobs.
        client_slice: Optional half-open ``(start, stop)`` index range
            into ``scenario.clients`` — only those clients are measured.
            The churn and episode processes still evolve over the whole
            population (they are global, sequential processes), so a
            sliced run observes exactly what a full run observes for the
            same clients.  Used by the sharded parallel executor.
        telemetry: Optional :class:`repro.telemetry.Telemetry` to record
            into (the study layer shares one across campaign and
            analysis); a fresh instance with the run's context is
            created when omitted.
        fault_injector: Optional
            :class:`repro.faults.WorkerFaultInjector` firing this run's
            scheduled fault (crash at start, transient exception at a
            derived day, hang at the end).  When omitted but
            ``config.fault_plan`` is set, the plan is compiled for this
            single run (one shard, attempt 0) — the injected fault then
            surfaces as a raised ``Injected*Error`` with no retry;
            retries are the resilient executor's job
            (:class:`repro.simulation.parallel.ParallelCampaignRunner`).

    After :meth:`run` returns, :attr:`stats` holds the run's
    :class:`CampaignStats` and :attr:`telemetry` the full telemetry
    (snapshot it for merging, export, or the run report).
    """

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[CampaignConfig] = None,
        client_slice: Optional[Tuple[int, int]] = None,
        telemetry: Optional[Telemetry] = None,
        fault_injector: Optional[WorkerFaultInjector] = None,
    ) -> None:
        self._scenario = scenario
        self._config = config or CampaignConfig()
        if client_slice is not None:
            start, stop = client_slice
            if not 0 <= start <= stop <= len(scenario.clients):
                raise ConfigurationError(
                    f"client_slice {client_slice!r} outside population of "
                    f"{len(scenario.clients)} clients"
                )
        self._client_slice = client_slice
        if fault_injector is None and self._config.fault_plan is not None:
            compiled = self._config.fault_plan.compile(
                scenario.config.seed, shards=1
            )
            fault_injector = WorkerFaultInjector(
                compiled.fault_for(0, 0),
                seed=scenario.config.seed,
                shard_index=0,
                attempt=0,
                hang_seconds=compiled.hang_seconds,
            )
        self._fault_injector = fault_injector
        engine = self._config.engine or scenario.config.engine
        self.telemetry = telemetry or Telemetry(
            RunContext(
                seed=scenario.config.seed,
                engine=engine,
                workers=1,
                config_hash=config_digest(scenario.config),
            )
        )
        self.stats: Optional[CampaignStats] = None
        #: Records rejected or repaired by this run's validation gate.
        self.quarantine = QuarantineLog()

    def run(self) -> StudyDataset:
        """Execute every day of the calendar and return the dataset.

        The whole run is traced under the ``campaign`` span (setup →
        per-day → finalize); counters and histograms land in
        :attr:`telemetry`, from whose snapshot :attr:`stats` is built.
        """
        tel = self.telemetry
        if self._fault_injector is not None:
            self._fault_injector.on_worker_start()
        with tel.span("campaign"):
            dataset = self._run_instrumented(tel)
        if self._fault_injector is not None:
            self._fault_injector.hang_before_return()
        root = tel.spans.records.get("campaign")
        tel.gauge(
            "campaign.wall_seconds",
            "campaign wall-clock (max across concurrent shards)",
        ).set(root.seconds if root is not None else 0.0)
        self.stats = CampaignStats.from_snapshot(tel.snapshot())
        return dataset

    def _run_instrumented(self, tel: Telemetry) -> StudyDataset:
        scenario = self._scenario
        cfg = self._config
        calendar = scenario.calendar
        engine = cfg.engine or scenario.config.engine

        beacons_counter = tel.counter(
            "campaign.beacons_total", "beacon sessions executed (§3.2.2)"
        )
        queries_counter = tel.counter(
            "campaign.queries_total",
            "production queries served over anycast (§3.2.1)",
        )
        passive_counter = tel.counter(
            "campaign.passive_records_total",
            "per-(day, client, front-end) passive-log appends",
        )
        client_days_counter = tel.counter(
            "campaign.client_days_total",
            "client-days that produced traffic",
        )
        idle_counter = tel.counter(
            "campaign.idle_client_days_total",
            "client-days skipped for zero query volume",
        )
        beacons_hist = tel.histogram(
            "campaign.beacons_per_client_day",
            "beacon sessions per (client, day) block",
        )
        day_hist = tel.histogram(
            "campaign.day_seconds", "wall-clock per simulated day"
        )

        with tel.span("setup"):
            selector = BeaconTargetSelector(
                scenario.network.frontends, scenario.geolocation, cfg.beacon
            )
            runner = BeaconRunner(selector, cfg.beacon)
            paths = _PathCache(scenario, tel)
            workload = scenario.workload_model
            latency = scenario.latency_model

            # Every record this run ingests — beacon fetches in either
            # engine, passive-log counts — passes this gate.
            gate = ValidationGate(
                ValidationPolicy.parse(cfg.validation),
                quarantine=self.quarantine,
            )
            # Dirty-data faults compile against the *full* population
            # and calendar, so a sharded run dirties exactly the records
            # a serial run does.
            record_faults: Optional[RecordFaultInjector] = None
            if cfg.fault_plan is not None:
                compiled_records = cfg.fault_plan.compile_records(
                    scenario.config.seed,
                    calendar.num_days,
                    len(scenario.clients),
                )
                if not compiled_records.empty:
                    record_faults = RecordFaultInjector(compiled_records)

            # Churn and episodes are global day-ordered processes;
            # computing every day's plans up front keeps the day loop
            # pure per-client work and gives sharded runs identical
            # global dynamics.
            churn = scenario.new_churn_model()
            episodes = scenario.new_episode_model()
            day_plans = [churn.plans_for_day(day) for day in calendar.days()]
            day_inflations = [
                episodes.inflations_for_day(day) for day in calendar.days()
            ]

            if self._client_slice is None:
                clients = scenario.clients
            else:
                start, stop = self._client_slice
                clients = scenario.clients[start:stop]

            bounded = cfg.sketch_threshold is not None
            ecs_aggregates = GroupedDailyAggregates(
                "ecs",
                exact_threshold=cfg.sketch_threshold,
                relative_accuracy=cfg.sketch_accuracy,
                max_buckets=cfg.sketch_max_buckets,
            )
            ldns_aggregates = GroupedDailyAggregates(
                "ldns",
                exact_threshold=cfg.sketch_threshold,
                relative_accuracy=cfg.sketch_accuracy,
                max_buckets=cfg.sketch_max_buckets,
            )
            request_diffs = RequestDiffLog(
                bounded=bounded,
                relative_accuracy=cfg.sketch_accuracy,
                max_buckets=cfg.sketch_max_buckets,
            )
            passive = PassiveLog(bounded=bounded)

        vectorized: Optional[_VectorizedBeaconEngine] = None
        if engine == "vectorized":
            def on_joined_batch(batch: JoinedBatch) -> None:
                for segment in batch.segments:
                    ecs_aggregates.observe_many(
                        batch.day, batch.client_key,
                        segment.target_id, segment.rtts_ms,
                    )
                    ldns_aggregates.observe_many(
                        batch.day, batch.ldns_id,
                        segment.target_id, segment.rtts_ms,
                    )

            backend = BeaconBackend(batch_observers=(on_joined_batch,))
            vectorized = _VectorizedBeaconEngine(
                scenario, selector, paths, cfg.beacon, backend,
                request_diffs, gate,
            )
            batches_counter = tel.counter(
                "engine.vectorized.batches_total",
                "(client, day) blocks synthesized as numpy batches",
            )
        else:
            def on_joined(row: JoinedMeasurement) -> None:
                ecs_aggregates.observe(
                    row.day, row.client_key, row.target_id, row.rtt_ms
                )
                ldns_aggregates.observe(
                    row.day, row.ldns_id, row.target_id, row.rtt_ms
                )

            backend = BeaconBackend([on_joined])

        scenario_seed = scenario.config.seed

        with tel.span("invariants"):
            # Per-client invariants, hoisted out of the day loop: Resource
            # Timing support (a property of the client's browser, drawn from
            # a per-client derived RNG so it is shard-independent) and the
            # Fig 3 region label — the paper splits out the United States
            # specifically, not all of North America.
            metro_db = scenario.metro_db
            resource_timing: Dict[str, bool] = {}
            regions: Dict[str, str] = {}
            for client in clients:
                key = client.key
                resource_timing[key] = (
                    derive_rng(scenario_seed, "resource-timing", key).random()
                    < cfg.beacon.resource_timing_support
                )
                if metro_db.get(client.home_metro).country == "US":
                    regions[key] = "united-states"
                else:
                    regions[key] = str(region_of_point(client.location))

        _log.info(
            "campaign starting",
            extra={
                "clients": len(clients),
                "days": calendar.num_days,
                "engine": engine,
                "sliced": self._client_slice is not None,
            },
        )

        beacon_count = 0
        for day in calendar.days():
          if self._fault_injector is not None:
            # Transient-exception site: the injected failure surfaces at
            # the start of a seed-derived day, i.e. genuinely mid-run.
            self._fault_injector.on_day(day, calendar.num_days)
          with tel.span("day", index=day):
            day_start_time = time.perf_counter()
            plans = day_plans[day]
            inflations = day_inflations[day]
            is_weekend = calendar.is_weekend(day)
            day_start = calendar.seconds_at(day)
            # Sub-phase times are accumulated with bare perf_counter
            # reads (not nested spans) to keep per-client overhead off
            # the hot path, then recorded once per day below.
            workload_seconds = 0.0
            passive_seconds = 0.0
            beacon_seconds = 0.0

            for client in clients:
                section_start = time.perf_counter()
                key = client.key
                # Everything this client does today draws from its own
                # derived stream — independent of every other client.
                rng = derive_rng(scenario_seed, "campaign", day, key)
                plan = plans[key]
                effect = inflations.get(key)
                anycast_inflation = 0.0
                degraded_frontend: Optional[str] = None
                unicast_inflation = 0.0
                if effect is not None:
                    if effect.scope is EpisodeScope.ANYCAST:
                        anycast_inflation = effect.inflation_ms
                    else:
                        candidates = selector.candidates(client.ldns_id)
                        degraded_frontend = candidates[
                            int(effect.selector * len(candidates))
                        ]
                        unicast_inflation = effect.inflation_ms

                queries = workload.daily_queries(client, is_weekend, rng)
                if queries <= 0:
                    idle_counter.inc()
                    workload_seconds += time.perf_counter() - section_start
                    continue
                client_days_counter.inc()
                queries_counter.inc(queries)
                section_now = time.perf_counter()
                workload_seconds += section_now - section_start
                section_start = section_now

                # Passive production traffic: split across the day's
                # routes with largest-remainder apportionment, so the
                # recorded counts sum exactly to the day's query volume.
                rank_frontends = tuple(
                    paths.anycast(key, rank)[0] for rank in plan.ranks
                )
                for frontend_id, count in zip(
                    rank_frontends,
                    largest_remainder_apportion(queries, plan.fractions),
                ):
                    admitted_count = gate.admit_count(
                        day, key, frontend_id, count
                    )
                    if admitted_count is not None:
                        passive.record(day, key, frontend_id, admitted_count)
                passive_counter.inc(len(rank_frontends))

                beacons = workload.daily_beacons(queries, rng)
                section_now = time.perf_counter()
                passive_seconds += section_now - section_start
                section_start = section_now
                if beacons <= 0:
                    continue
                beacons_counter.inc(beacons)
                beacons_hist.observe(beacons)
                client_index = scenario.client_index(key)
                region = regions[key]
                rt_supported = resource_timing[key]

                # Per-(client, day) invariants hoisted out of the beacon
                # loop: the daily congestion offsets (stable within the
                # day, drawn from derived RNGs) and one serve closure
                # reading the session rank from a cell.
                anycast_offset = latency.sample_daily_variation_ms(
                    derive_rng(
                        scenario_seed, "daily-variation", day, key,
                        ANYCAST_TARGET,
                    ),
                    anycast=True,
                )

                # Record faults for this (day, client) cell, as flat
                # session * T + position slots.  The target count T is a
                # per-client constant shared by both engines, so the
                # slot map is engine- and shard-independent.
                dirty_slots: Optional[Dict[int, FaultKind]] = None
                if record_faults is not None:
                    n_targets = 2 + min(
                        cfg.beacon.random_picks,
                        len(selector.pick_pool(client.ldns_id)),
                    )
                    dirty_slots = record_faults.slots_for(
                        day, client_index, beacons * n_targets
                    )

                if vectorized is not None:
                    vectorized.run_client_day(
                        day=day,
                        client=client,
                        client_index=client_index,
                        region=region,
                        resource_timing_supported=rt_supported,
                        plan=plan,
                        beacons=beacons,
                        anycast_extra_ms=anycast_inflation + anycast_offset,
                        degraded_frontend=degraded_frontend,
                        unicast_inflation_ms=unicast_inflation,
                        dirty_slots=dirty_slots,
                    )
                    beacon_count += beacons
                    batches_counter.inc()
                    beacon_seconds += time.perf_counter() - section_start
                    continue

                unicast_offsets: Dict[str, float] = {}
                session_rank_cell = [plan.ranks[0]]

                def serve(target_id: str) -> Tuple[str, float]:
                    if target_id == ANYCAST_TARGET:
                        frontend_id, baseline = paths.anycast(
                            key, session_rank_cell[0]
                        )
                        extra = anycast_inflation + anycast_offset
                    else:
                        frontend_id = target_id
                        baseline = paths.unicast(key, target_id)
                        offset = unicast_offsets.get(target_id)
                        if offset is None:
                            offset = latency.sample_daily_variation_ms(
                                derive_rng(
                                    scenario_seed, "daily-variation", day,
                                    key, target_id,
                                ),
                                anycast=False,
                            )
                            unicast_offsets[target_id] = offset
                        extra = offset
                        if target_id == degraded_frontend:
                            extra += unicast_inflation
                    rtt = (
                        baseline
                        + latency.sample_jitter_ms(rng)
                        + extra
                    )
                    return frontend_id, rtt

                record_index = 0
                for _ in range(beacons):
                    session_rank_cell[0] = plan.sample_rank(rng)

                    fetches = runner.run_beacon(
                        ldns_id=client.ldns_id,
                        resource_timing_supported=rt_supported,
                        serve=serve,
                        rng=rng,
                        now=day_start,
                    )
                    beacon_count += 1

                    anycast_rtt: Optional[float] = None
                    best_unicast: Optional[float] = None
                    for fetch in fetches:
                        rtt_ms = fetch.rtt_ms
                        if dirty_slots:
                            kind = dirty_slots.get(record_index)
                            if kind is not None:
                                rtt_ms = RecordFaultInjector.dirty_value(
                                    kind, rtt_ms
                                )
                        admitted = gate.admit(day, key, record_index, rtt_ms)
                        record_index += 1
                        if admitted is None:
                            # Quarantined: the record never reaches any
                            # log stream, so it cannot join.
                            continue
                        backend.on_dns(
                            fetch.measurement_id, client.ldns_id, fetch.target_id
                        )
                        backend.on_server(
                            fetch.measurement_id, fetch.serving_frontend_id
                        )
                        backend.on_http(
                            HttpLogEntry(
                                day=day,
                                measurement_id=fetch.measurement_id,
                                client_key=key,
                                rtt_ms=admitted,
                                used_resource_timing=fetch.used_resource_timing,
                            )
                        )
                        if fetch.target_id == ANYCAST_TARGET:
                            anycast_rtt = admitted
                        elif best_unicast is None or admitted < best_unicast:
                            best_unicast = admitted

                    if anycast_rtt is not None and best_unicast is not None:
                        request_diffs.observe(
                            day, client_index, region, anycast_rtt, best_unicast
                        )

                beacon_seconds += time.perf_counter() - section_start

            runner.purge_caches(calendar.seconds_at(day) + 86_400.0)
            day_elapsed = time.perf_counter() - day_start_time
            day_hist.observe(day_elapsed)
            tel.spans.record_seconds("campaign/day/workload", workload_seconds)
            tel.spans.record_seconds("campaign/day/passive", passive_seconds)
            tel.spans.record_seconds("campaign/day/beacons", beacon_seconds)
            _log.debug(
                "day complete",
                extra={"day": day, "seconds": round(day_elapsed, 4)},
            )
          if cfg.progress_callback is not None:
            cfg.progress_callback(day, calendar.num_days)

        with tel.span("finalize"):
            if backend.pending_count:
                raise ConfigurationError(
                    f"{backend.pending_count} measurements never joined — "
                    "campaign bookkeeping bug"
                )
            tel.counter(
                "campaign.measurements_total",
                "joined measurements (three-way DNS/server/HTTP join, §3.2.2)",
            ).inc(backend.joined_count)
            # A gauge, not a counter: every shard runs the full calendar,
            # so "days simulated" is a property of the run, not additive.
            tel.gauge(
                "campaign.days", "calendar days simulated"
            ).set(calendar.num_days)
            dns_hits, dns_misses = runner.cache_stats()
            tel.counter(
                "dns.cache.hits_total",
                "LDNS resolver-cache hits during beacon fetches",
            ).inc(dns_hits)
            tel.counter(
                "dns.cache.misses_total",
                "LDNS resolver-cache misses (fresh resolutions)",
            ).inc(dns_misses)

            # Validation accounting: the gate counts with plain ints on
            # the hot path; publish them once here.
            tel.counter(
                "validate.records_total",
                "records checked at the ingestion boundaries",
            ).inc(gate.records_total)
            tel.counter(
                "validate.quarantined_total",
                "invalid records dropped into the quarantine log",
            ).inc(gate.dropped_total)
            tel.counter(
                "validate.repaired_total",
                "invalid records clamped and kept (repair policy)",
            ).inc(gate.repaired_total)
            for reason, count in sorted(self.quarantine.counts.items()):
                tel.counter(
                    f"validate.quarantined.{reason}_total",
                    f"records flagged as {reason}",
                ).inc(count)
            if record_faults is not None:
                planted = record_faults.planted
                tel.counter(
                    "faults.records_planted_total",
                    "records dirtied by the dirty-data fault injector",
                ).inc(sum(planted.values()))
                for kind_value, count in sorted(planted.items()):
                    tel.counter(
                        f"faults.records.{kind_value}_total",
                        f"records dirtied as {kind_value}",
                    ).inc(count)

            # Memory accounting: lifetime peak RSS (max-merged across
            # shards) plus sketch-compression counters when the bounded
            # mode is on.
            tel.gauge(
                "campaign.peak_rss_bytes",
                "OS-reported peak resident set of the campaign process",
                merge="max",
            ).set(float(peak_rss_bytes()))
            if cfg.sketch_threshold is not None:
                exact_digests = sketch_digests = 0
                sketch_buckets = sketch_samples = sketch_halvings = 0
                for aggregates in (ecs_aggregates, ldns_aggregates):
                    e, s, b, n, h = aggregates.sketch_stats()
                    exact_digests += e
                    sketch_digests += s
                    sketch_buckets += b
                    sketch_samples += n
                    sketch_halvings += h
                diff_sketches, diff_buckets, diff_samples, diff_halvings = (
                    request_diffs.sketch_stats()
                )
                tel.counter(
                    "sketch.digests_exact_total",
                    "latency digests still below the sketch threshold",
                ).inc(exact_digests)
                tel.counter(
                    "sketch.digests_promoted_total",
                    "latency digests promoted to bounded sketches",
                ).inc(sketch_digests)
                tel.counter(
                    "sketch.buckets_total",
                    "sketch buckets held across all promoted digests "
                    "and diff sketches",
                ).inc(sketch_buckets + diff_buckets)
                tel.counter(
                    "sketch.samples_compressed_total",
                    "samples represented by sketches instead of raw "
                    "retention",
                ).inc(sketch_samples + diff_samples)
                tel.counter(
                    "sketch.diff_sketches_total",
                    "bounded (day, region) request-diff sketches",
                ).inc(diff_sketches)
                tel.counter(
                    "sketch.compressions_total",
                    "resolution halvings forced by the per-sketch "
                    "bucket cap",
                ).inc(sketch_halvings + diff_halvings)

        _log.info(
            "campaign complete",
            extra={
                "beacons": beacon_count,
                "measurements": backend.joined_count,
            },
        )
        covered = (
            (self._client_slice,)
            if self._client_slice is not None
            else None  # None -> full coverage
        )
        return StudyDataset(
            calendar=calendar,
            clients=scenario.clients,
            ecs_aggregates=ecs_aggregates,
            ldns_aggregates=ldns_aggregates,
            request_diffs=request_diffs,
            passive=passive,
            beacon_count=beacon_count,
            measurement_count=backend.joined_count,
            covered_ranges=covered,
        )
