#!/usr/bin/env python3
"""Gradually draining a hot front-end: load-aware anycast end-to-end.

§2 of the paper notes anycast cannot gradually shift load away from an
overloaded front-end — withdrawing the route risks cascading overload —
and points at FastRoute [23] as the fix deployed on this very CDN.

This example runs the *same* seeded measurement campaign three times
against finite front-end capacity while a multi-day drain drill pulls
most of one front-end's capacity away, and contrasts the load policies:

* ``none`` — every query is still served by its saturated front-end,
  and the convex queueing-delay term shows up directly in latency;
* ``withdraw`` — the overloaded front-end hard-withdraws its route
  (the §2 cascade baseline) and its clients pay reroute penalties;
* ``fastroute`` — FastRoute-style shedding over nested anycast rings,
  with per-front-end shed fractions evolved from local signals only.

Run:
    python examples/load_shedding.py
"""

from repro.analysis.load import load_latency_tradeoff, shed_traffic_fractions
from repro.clients.population import ClientPopulationConfig
from repro.core.study import AnycastStudy
from repro.simulation.campaign import CampaignConfig
from repro.simulation.clock import SimulationCalendar
from repro.simulation.episodes import OverloadPlan
from repro.simulation.scenario import ScenarioConfig

#: Provision every front-end with 1.3x headroom over its baseline load —
#: tight enough that a drain drill pushes the target deep past capacity.
HEADROOM = 1.3

#: The incident: a drain starting on day 1 strips a front-end down to a
#: small residual capacity for several days.
DRILL = "drain:1@1"


def run_policy(policy: str) -> tuple:
    """One campaign under the given load policy; returns its figures."""
    study = AnycastStudy(
        ScenarioConfig(
            seed=2015,
            population=ClientPopulationConfig(prefix_count=300),
            calendar=SimulationCalendar(num_days=5),
        ),
        campaign=CampaignConfig(
            engine="vectorized",
            frontend_capacity=HEADROOM,
            overload_plan=OverloadPlan.from_spec(DRILL),
            load_policy=policy,
        ),
    )
    dataset = study.dataset
    return (
        load_latency_tradeoff(dataset),
        shed_traffic_fractions(dataset),
    )


def main() -> None:
    results = {}
    for policy in ("none", "withdraw", "fastroute"):
        results[policy] = run_policy(policy)

    tradeoff, _ = results["none"]
    drill = tradeoff.overload_events[0]
    print(
        f"Drain drill: {drill['target']} down to "
        f"{float(drill['magnitude']):.0%} capacity from day "
        f"{drill['start_day']} for {drill['duration_days']} days; "
        f"every front-end provisioned at {HEADROOM:g}x headroom.\n"
    )

    print("Per-day load vs latency under each policy:")
    for policy, (tradeoff, _) in results.items():
        print(f"\n--- policy={policy} ---")
        print(tradeoff.format())

    print("\nWhat each policy did about the overload:")
    for policy, (tradeoff, shed) in results.items():
        worst = max(tradeoff.rows, key=lambda row: row.max_utilization)
        p95s = [
            row.anycast_p95_ms
            for row in tradeoff.rows
            if row.anycast_p95_ms is not None
        ]
        print(
            f"  {policy:<10s} peak-util {tradeoff.peak_utilization:6.2f}"
            f"  worst-day p95 {max(p95s):7.1f} ms"
            f"  (day {worst.day})"
            f"  shed-peak {shed.peak_shed_fraction:6.1%}"
            f"  withdrawn {shed.total_withdrawn}"
        )

    last_day = max(row.day for row in results["none"][0].rows)

    def final_p95(policy: str) -> float:
        rows = results[policy][0].rows
        return next(
            row.anycast_p95_ms
            for row in reversed(rows)
            if row.anycast_p95_ms is not None
        )

    print(
        f"\nBy day {last_day} the withdraw cascade has anycast p95 at "
        f"{final_p95('withdraw'):,.1f} ms and "
        f"{results['withdraw'][1].total_withdrawn} routes withdrawn — "
        f"§2's warning.  FastRoute-style shedding ends the same drill at "
        f"{final_p95('fastroute'):,.1f} ms with zero withdrawals: the "
        f"excess drains gradually through the rings instead of slamming "
        f"into a neighbor."
    )


if __name__ == "__main__":
    main()
