#!/usr/bin/env python3
"""Gradually draining a hot front-end: FastRoute-style layered anycast.

§2 of the paper notes anycast cannot gradually shift load away from an
overloaded front-end — withdrawing the route risks cascading overload —
and points at FastRoute [23] as the fix deployed on this very CDN.

This example provisions the simulated CDN tightly, then contrasts:

* hard withdrawal of the hottest front-end (the §2 cascade), vs
* FastRoute-style shedding over nested anycast rings, where the hot
  front-end's colocated DNS hands a fraction of queries the next ring's
  VIP — no route changes, no cascade.

Run:
    python examples/load_shedding.py
"""

from repro import Scenario, ScenarioConfig
from repro.cdn.failover import WithdrawalSimulator, frontend_loads
from repro.cdn.fastroute import (
    FastRouteBalancer,
    LayeredAnycastNetwork,
    default_layers,
)
from repro.clients.population import ClientPopulationConfig
from repro.simulation.clock import SimulationCalendar


def main() -> None:
    scenario = Scenario.build(
        ScenarioConfig(
            seed=2015,
            population=ClientPopulationConfig(prefix_count=500),
            calendar=SimulationCalendar(num_days=1),
        )
    )
    baseline = frontend_loads(scenario.network, scenario.clients)
    layers = default_layers(scenario.deployment)
    # Pick the hottest *edge* front-end (hubs and cores are provisioned to
    # absorb shed traffic; they cannot shed to themselves).
    hot = max(
        (fe for fe in baseline if fe not in layers[1]),
        key=baseline.get,
    )
    positive = sorted(v for v in baseline.values() if v > 0)
    median = positive[len(positive) // 2]
    # Ordinary edges run with modest slack; hubs and cores are big.
    capacities = {}
    for fe in scenario.deployment.frontends:
        load = max(baseline.get(fe.frontend_id, 0.0), median)
        factor = 6.0 if fe.frontend_id in layers[1] else 1.2
        capacities[fe.frontend_id] = load * factor
    # The incident: the hot edge is pushed to 125% of its capacity.
    capacities[hot] = baseline[hot] * 0.8
    print(
        f"Hottest front-end: {hot} carrying {baseline[hot]:,.0f} "
        f"queries/day against capacity {capacities[hot]:,.0f}.\n"
    )

    print("Option A — withdraw the route (§2's warning):")
    simulator = WithdrawalSimulator(
        scenario.topology,
        scenario.deployment,
        scenario.clients,
        capacities=capacities,
    )
    cascade = simulator.cascade([hot], max_rounds=6)
    print(cascade.format())

    print("\nOption B — FastRoute-style layered shedding:")
    layered = LayeredAnycastNetwork(
        scenario.topology, scenario.deployment, layers
    )
    balancer = FastRouteBalancer(layered, scenario.clients, capacities)
    result = balancer.balance()
    print(result.format())
    print(
        f"\n{hot} after shedding: {result.loads.get(hot, 0.0):,.0f} / "
        f"{capacities[hot]:,.0f} — the front-end stays online and sheds "
        f"only its excess, instead of dumping everything on a neighbor."
    )


if __name__ == "__main__":
    main()
