"""Live service mode: streaming ingestion and the online §6 predictor.

The paper's FastRoute control loop is an always-on service: beacon and
passive-log events arrive continuously, and the §6 prediction (25th
percentile over a 1-day window, ≥ 20 samples per (group, target)) is
re-evaluated as the window slides.  This package is that loop for the
simulated pipeline:

* :mod:`repro.service.events` — the stream vocabulary (beacon/passive
  events) and an order-insensitive incremental dataset digest;
* :mod:`repro.service.window` — the ring-buffered sliding window of
  per-day aggregates the online predictor reads;
* :mod:`repro.service.predictor` — the online predictor, delegating
  scoring to the batch :class:`repro.core.predictor.HistoryBasedPredictor`
  so online and batch answers are bit-identical over the same window;
* :mod:`repro.service.ingest` — the asyncio ingestion loop (validation
  gate, window updates, day-close prediction ticks, checkpoints);
* :mod:`repro.service.replay` — deterministic event streams recovered
  from recorded exports (the differential-oracle harness's source);
* :mod:`repro.service.checkpoint` — service state spill/restore with
  integrity anchors;
* :mod:`repro.service.faults` — fault-plan kill points inside the loop.

The headline guarantee, asserted by ``tests/test_service_replay.py``
and ``tests/test_service_chaos.py``: replaying a recorded campaign
through the service yields exactly the batch predictor's outputs, and a
chaos-killed-and-resumed run is bit-identical (predictions, stream
digest, quarantine digest) to an uninterrupted one.
"""

from repro.service.events import BeaconEvent, PassiveEvent, StreamDigest
from repro.service.ingest import LiveService, ServiceConfig, ServiceResult
from repro.service.predictor import (
    OnlinePredictor,
    predictions_digest,
    predictions_to_obj,
)
from repro.service.replay import dirty_events, events_from_dataset
from repro.service.window import PredictionWindow

__all__ = [
    "BeaconEvent",
    "LiveService",
    "OnlinePredictor",
    "PassiveEvent",
    "PredictionWindow",
    "ServiceConfig",
    "ServiceResult",
    "StreamDigest",
    "dirty_events",
    "events_from_dataset",
    "predictions_digest",
    "predictions_to_obj",
]
