"""Shard-level campaign checkpoints: spill, verify, resume.

A multi-day sharded campaign should not lose completed work to one bad
shard or a mid-run abort.  When a campaign runs with a checkpoint
directory, the coordinator spills every completed shard's partial
:class:`~repro.simulation.dataset.StudyDataset` to disk as it lands:

* ``shard-NNNN.json`` — the partial dataset, in the standard export
  format (:mod:`repro.measurement.export`);
* ``shard-NNNN.manifest.json`` — the shard's identity (index, client
  range, seed, config hash) plus two integrity anchors: the SHA-256 of
  the payload file bytes and the dataset's canonical ``digest()``.

On resume, a checkpoint is only reused when its manifest matches the
requesting campaign (same shard layout, seed, and config hash — a
different engine or beacon config produces different data, so its hash
differs) *and* both integrity anchors verify.  A payload that fails
verification raises :class:`repro.errors.CheckpointError`; the caller
treats that as "no checkpoint" and re-runs the shard, because a corrupt
spill must never silently feed an analysis.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Tuple

from repro.errors import CheckpointError
from repro.measurement.export import load_dataset, save_dataset
from repro.measurement.storage import atomic_write_text
from repro.measurement.validate import QuarantineLog
from repro.simulation.dataset import StudyDataset
from repro.telemetry import get_logger

#: Format marker written into every shard checkpoint manifest.
CHECKPOINT_FORMAT_VERSION = 1

_log = get_logger("checkpoint")


def shard_payload_path(directory: str, shard_index: int) -> str:
    """Path of a shard's spilled dataset inside a checkpoint directory."""
    return os.path.join(directory, f"shard-{shard_index:04d}.json")


def shard_manifest_path(directory: str, shard_index: int) -> str:
    """Path of a shard's checkpoint manifest."""
    return os.path.join(directory, f"shard-{shard_index:04d}.manifest.json")


def _sha256_of_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def write_shard_checkpoint(
    directory: str,
    shard_index: int,
    client_range: Tuple[int, int],
    dataset: StudyDataset,
    seed: int,
    config_hash: str,
    quarantine: Optional[QuarantineLog] = None,
) -> Dict[str, Any]:
    """Spill one completed shard's partial dataset with integrity anchors.

    Returns the manifest that was written.  The payload is written
    first, then hashed from disk, so the manifest vouches for the bytes
    actually on disk rather than the bytes we meant to write.  Both
    files land via atomic rename (the payload through the framed
    writer's temp file, the manifest through
    :func:`repro.measurement.storage.atomic_write_text`), so an abort
    mid-spill never leaves a half-written checkpoint.

    When the shard quarantined records, its :class:`QuarantineLog` is
    embedded in the manifest so a resumed campaign's accounting stays
    exact.
    """
    os.makedirs(directory, exist_ok=True)
    payload_path = shard_payload_path(directory, shard_index)
    save_dataset(dataset, payload_path)
    manifest = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "shard_index": shard_index,
        "client_range": [int(client_range[0]), int(client_range[1])],
        "seed": seed,
        "config_hash": config_hash,
        "dataset_digest": dataset.digest(),
        "payload_sha256": _sha256_of_file(payload_path),
    }
    if quarantine is not None and quarantine.total:
        manifest["quarantine"] = quarantine.to_obj()
    atomic_write_text(
        shard_manifest_path(directory, shard_index),
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
    )
    _log.debug(
        "shard checkpoint written",
        extra={"shard": shard_index, "path": payload_path},
    )
    return manifest


def load_shard_checkpoint(
    directory: str,
    shard_index: int,
    client_range: Tuple[int, int],
    seed: int,
    config_hash: str,
) -> Optional[StudyDataset]:
    """Load a shard checkpoint if present, applicable, and intact.

    Returns ``None`` when the checkpoint is absent or belongs to a
    different campaign shape (other client range, seed, or config hash)
    — both mean "run the shard".

    Raises:
        CheckpointError: when the checkpoint claims to match but fails
            an integrity check (payload bytes or dataset digest differ
            from the manifest) — the caller should count the corruption
            and re-run the shard rather than trust the spill.
    """
    manifest_path = shard_manifest_path(directory, shard_index)
    payload_path = shard_payload_path(directory, shard_index)
    if not (os.path.exists(manifest_path) and os.path.exists(payload_path)):
        return None
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(
            f"shard {shard_index}: unreadable checkpoint manifest "
            f"({error})"
        ) from error
    if (
        manifest.get("format_version") != CHECKPOINT_FORMAT_VERSION
        or manifest.get("shard_index") != shard_index
        or tuple(manifest.get("client_range", ())) != tuple(client_range)
        or manifest.get("seed") != seed
        or manifest.get("config_hash") != config_hash
    ):
        _log.debug(
            "shard checkpoint not applicable",
            extra={"shard": shard_index},
        )
        return None
    actual_sha = _sha256_of_file(payload_path)
    if actual_sha != manifest.get("payload_sha256"):
        raise CheckpointError(
            f"shard {shard_index}: checkpoint payload hash mismatch "
            f"(expected {manifest.get('payload_sha256')}, got {actual_sha})"
        )
    try:
        dataset = load_dataset(payload_path)
    except Exception as error:  # corrupt-but-hash-matching is still possible
        raise CheckpointError(
            f"shard {shard_index}: checkpoint payload failed to parse "
            f"({error})"
        ) from error
    actual_digest = dataset.digest()
    if actual_digest != manifest.get("dataset_digest"):
        raise CheckpointError(
            f"shard {shard_index}: checkpoint dataset digest mismatch "
            f"(expected {manifest.get('dataset_digest')}, "
            f"got {actual_digest})"
        )
    return dataset


def load_shard_quarantine(
    directory: str, shard_index: int
) -> Optional[QuarantineLog]:
    """The quarantine log a shard checkpoint recorded, if any.

    Companion to :func:`load_shard_checkpoint` (call it *after* that
    function accepted the checkpoint — this helper re-reads only the
    manifest and does not repeat the integrity checks).  Returns ``None``
    when the manifest is absent, unreadable, or carries no quarantine
    block (the shard quarantined nothing).

    Raises:
        CheckpointError: when a quarantine block is present but
            malformed — a manifest that vouches for accounting it cannot
            produce must not be silently treated as clean.
    """
    manifest_path = shard_manifest_path(directory, shard_index)
    if not os.path.exists(manifest_path):
        return None
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    block = manifest.get("quarantine")
    if block is None:
        return None
    try:
        return QuarantineLog.from_obj(block)
    except Exception as error:
        raise CheckpointError(
            f"shard {shard_index}: malformed quarantine block in "
            f"checkpoint manifest ({error})"
        ) from error
