"""IPv4 addresses and prefixes.

The paper aggregates clients into /24 prefixes "because they tend to be
localized" (§3.2.2, citing [27]) and assigns each front-end a unique unicast
/24 (§3.1).  This module implements the address arithmetic those analyses
need, without depending on the standard library's ``ipaddress`` module so
the allocator semantics stay explicit and the types stay lightweight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import AddressError

_MAX_IPV4 = (1 << 32) - 1


def _parse_dotted_quad(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"malformed IPv4 address {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"malformed IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def _format_dotted_quad(value: int) -> str:
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address, stored as a 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX_IPV4:
            raise AddressError(f"IPv4 address value {self.value} out of range")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation (strict: no leading zeros)."""
        return cls(_parse_dotted_quad(text))

    def __str__(self) -> str:
        return _format_dotted_quad(self.value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)


@dataclass(frozen=True, order=True)
class IPv4Prefix:
    """An IPv4 prefix (network address + mask length).

    The network address must have all host bits zero; constructing a prefix
    with host bits set is an error rather than a silent truncation, because
    every such case in this library indicates a logic bug.
    """

    network: IPv4Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length {self.length} out of range")
        if self.network.value & self.host_mask():
            raise AddressError(
                f"prefix {self.network}/{self.length} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        if "/" not in text:
            raise AddressError(f"malformed prefix {text!r} (missing '/')")
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressError(f"malformed prefix length in {text!r}")
        return cls(IPv4Address.parse(addr_text), int(len_text))

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def net_mask(self) -> int:
        """Network mask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (~0 << (32 - self.length)) & _MAX_IPV4

    def host_mask(self) -> int:
        """Host mask (complement of the network mask)."""
        return ~self.net_mask() & _MAX_IPV4

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def contains(self, address: IPv4Address) -> bool:
        """Whether ``address`` falls inside this prefix."""
        return (address.value & self.net_mask()) == self.network.value

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        """Whether ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and self.contains(other.network)

    def first_address(self) -> IPv4Address:
        """Lowest address in the prefix (the network address)."""
        return self.network

    def address_at(self, offset: int) -> IPv4Address:
        """Address at ``offset`` within the prefix.

        Raises:
            AddressError: if the offset is outside the prefix.
        """
        if not 0 <= offset < self.num_addresses:
            raise AddressError(
                f"offset {offset} outside prefix {self} "
                f"({self.num_addresses} addresses)"
            )
        return IPv4Address(self.network.value + offset)

    def slash24s(self) -> Iterator["IPv4Prefix"]:
        """Iterate the /24 subnets of this prefix (must be /24 or shorter)."""
        if self.length > 24:
            raise AddressError(f"cannot split {self} into /24s")
        step = 1 << 8
        for base in range(self.network.value, self.network.value + self.num_addresses, step):
            yield IPv4Prefix(IPv4Address(base), 24)


def slash24_of(address: IPv4Address) -> IPv4Prefix:
    """The /24 prefix containing ``address`` — the paper's client grouping."""
    return IPv4Prefix(IPv4Address(address.value & 0xFFFFFF00), 24)


class PrefixAllocator:
    """Sequential allocator of non-overlapping prefixes from a supernet.

    Used to hand out client /24s, front-end unicast /24s, and the anycast
    prefix from disjoint address pools so logs are unambiguous.
    """

    def __init__(self, pool: IPv4Prefix) -> None:
        self._pool = pool
        self._cursor = pool.network.value
        self._end = pool.network.value + pool.num_addresses

    @property
    def pool(self) -> IPv4Prefix:
        """The supernet being allocated from."""
        return self._pool

    @property
    def remaining_addresses(self) -> int:
        """Unallocated address count left in the pool."""
        return self._end - self._cursor

    def allocate(self, length: int) -> IPv4Prefix:
        """Allocate the next aligned prefix of the given length.

        Raises:
            AddressError: if the pool is exhausted or the request is larger
                than the pool.
        """
        if length < self._pool.length:
            raise AddressError(
                f"cannot allocate /{length} from pool {self._pool}"
            )
        size = 1 << (32 - length)
        # Align the cursor up to the requested prefix size.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size > self._end:
            raise AddressError(
                f"pool {self._pool} exhausted allocating /{length}"
            )
        self._cursor = aligned + size
        return IPv4Prefix(IPv4Address(aligned), length)

    def allocate_slash24(self) -> IPv4Prefix:
        """Convenience: allocate one /24."""
        return self.allocate(24)
