"""Hand-built dataset factory for exact-value analysis tests."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.clients.population import ClientPrefix
from repro.geo.coords import GeoPoint
from repro.measurement.aggregate import GroupedDailyAggregates, RequestDiffLog
from repro.measurement.logs import PassiveLog
from repro.net.ip import IPv4Address, IPv4Prefix
from repro.simulation.clock import SimulationCalendar
from repro.simulation.dataset import StudyDataset


def make_client(
    index: int,
    location: GeoPoint = GeoPoint(0.0, 0.0),
    home_metro: str = "nyc",
    daily_queries: float = 10.0,
    ldns_id: str = "ldns-x",
    asn: int = 10000,
) -> ClientPrefix:
    """A synthetic client /24 with a stable key derived from ``index``."""
    network = IPv4Address((10 << 24) | (index << 8))
    return ClientPrefix(
        prefix=IPv4Prefix(network, 24),
        asn=asn,
        home_metro=home_metro,
        location=location,
        access_delay_ms=5.0,
        daily_queries=daily_queries,
        ldns_id=ldns_id,
    )


def make_dataset(
    clients: Sequence[ClientPrefix],
    num_days: int = 3,
    ecs_samples: Optional[
        Iterable[Tuple[int, str, str, Sequence[float]]]
    ] = None,
    ldns_samples: Optional[
        Iterable[Tuple[int, str, str, Sequence[float]]]
    ] = None,
    passive_counts: Optional[
        Iterable[Tuple[int, str, str, int]]
    ] = None,
) -> StudyDataset:
    """Assemble a StudyDataset from explicit samples.

    ``ecs_samples`` rows are (day, client_key, target_id, rtts);
    ``passive_counts`` rows are (day, client_key, frontend_id, count).
    """
    ecs = GroupedDailyAggregates("ecs")
    for day, group, target, rtts in ecs_samples or ():
        for rtt in rtts:
            ecs.observe(day, group, target, rtt)
    ldns = GroupedDailyAggregates("ldns")
    for day, group, target, rtts in ldns_samples or ():
        for rtt in rtts:
            ldns.observe(day, group, target, rtt)
    passive = PassiveLog()
    for day, client_key, frontend_id, count in passive_counts or ():
        passive.record(day, client_key, frontend_id, count)
    return StudyDataset(
        calendar=SimulationCalendar(num_days=num_days),
        clients=tuple(clients),
        ecs_aggregates=ecs,
        ldns_aggregates=ldns,
        request_diffs=RequestDiffLog(),
        passive=passive,
    )
