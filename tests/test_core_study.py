"""End-to-end tests: the full study produces every figure."""

import pytest

from repro.core.study import AnycastStudy
from repro.clients.population import ClientPopulationConfig
from repro.simulation.clock import SimulationCalendar
from repro.simulation.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def study():
    config = ScenarioConfig(
        seed=77,
        population=ClientPopulationConfig(prefix_count=120),
        calendar=SimulationCalendar(num_days=3),
    )
    return AnycastStudy(config)


def test_dataset_cached(study):
    assert study.dataset is study.dataset
    assert study.scenario is study.scenario


def test_fig1(study):
    result = study.fig1_diminishing_returns(candidate_sizes=(1, 3, 5))
    # Growing the candidate set can only lower the minimum latency.
    assert result.medians_ms[1] >= result.medians_ms[3] >= result.medians_ms[5]


def test_fig2(study):
    result = study.fig2_client_distance()
    assert list(result.medians_km) == sorted(result.medians_km)
    assert len(result.series) == 4


def test_fig3(study):
    result = study.fig3_anycast_penalty()
    world = result.fraction_slower["world"]
    # CCDF is non-increasing in the threshold.
    thresholds = sorted(world)
    fractions = [world[t] for t in thresholds]
    assert fractions == sorted(fractions, reverse=True)
    assert 0.0 < world[1.0] < 1.0


def test_fig4(study):
    result = study.fig4_anycast_distance()
    assert 0.0 < result.fraction_at_nearest <= 1.0
    assert result.fraction_within_2000km >= result.fraction_at_nearest * 0.5
    assert len(result.series) == 4


def test_fig5(study):
    result = study.fig5_poor_path_prevalence()
    # Higher thresholds are strictly-not-more prevalent.
    for row in result.daily_fractions.values():
        thresholds = sorted(row)
        values = [row[t] for t in thresholds]
        assert values == sorted(values, reverse=True)


def test_fig6(study):
    result = study.fig6_poor_path_duration()
    assert result.ever_poor_count > 0
    assert 0.0 <= result.fraction_single_day <= 1.0
    assert result.fraction_five_plus_consecutive <= result.fraction_five_plus_days


def test_fig7(study):
    result = study.fig7_frontend_affinity(num_days=3)
    fractions = [f for _, f in result.cumulative]
    assert fractions == sorted(fractions)  # cumulative is monotone


def test_fig8(study):
    result = study.fig8_switch_distance()
    assert result.switch_count > 0
    assert result.median_km > 0


def test_fig9(study):
    result = study.fig9_prediction()
    assert len(result.summaries) == 4  # {ECS, LDNS} x {50th, 75th}
    for summary in result.summaries:
        total = (
            summary.fraction_improved
            + summary.fraction_worse
            + summary.fraction_unchanged
        )
        assert total == pytest.approx(1.0, abs=1e-6)


def test_footnote1(study):
    result = study.footnote1_geo_artifacts(threshold_km=2500.0)
    assert result.client_count > 0
    assert 0.0 <= result.artifact_fraction <= 1.0


def test_cdn_size_table(study):
    rows = study.cdn_size_table()
    bing = next(e for e in rows if "Bing" in e.name)
    assert bing.locations == len(study.scenario.network.frontends)


def test_full_report(study):
    report = study.full_report()
    for marker in ("Fig 1", "Fig 3", "Fig 5", "Fig 7", "Fig 9", "CDN deployment"):
        assert marker in report
