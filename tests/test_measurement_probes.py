"""Tests for the Atlas-like probe network."""

import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.measurement.probes import ProbeNetwork
from repro.net.topology import AsRole


@pytest.fixture(scope="module")
def probes(cdn_world):
    topology, _, _ = cdn_world
    return ProbeNetwork(topology, coverage=1.0, seed=1)


def test_full_coverage_places_probe_per_pair(cdn_world, probes):
    topology, _, _ = cdn_world
    pairs = sum(
        len(a.pop_metros) for a in topology.ases_with_role(AsRole.ACCESS)
    )
    assert len(probes) == pairs


def test_partial_coverage_places_fewer(cdn_world):
    topology, _, _ = cdn_world
    sparse = ProbeNetwork(topology, coverage=0.3, seed=1)
    full = ProbeNetwork(topology, coverage=1.0, seed=1)
    assert 0 < len(sparse) < len(full)


def test_lookup_by_pair_and_metro(cdn_world, probes):
    topology, _, _ = cdn_world
    access = topology.ases_with_role(AsRole.ACCESS)[0]
    metro = sorted(access.pop_metros)[0]
    probe = probes.probe_for(access.asn, metro)
    assert probe is not None
    assert probe.asn == access.asn
    assert probe in probes.probes_in(metro)
    assert probes.get(probe.probe_id) is probe


def test_unknown_probe(probes):
    with pytest.raises(MeasurementError):
        probes.get("probe-99999")


def test_missing_pair_returns_none(probes):
    assert probes.probe_for(424242, "nyc") is None


def test_traceroutes_reach_the_cdn(cdn_world, probes):
    topology, deployment, network = cdn_world
    access = topology.ases_with_role(AsRole.ACCESS)[0]
    metro = sorted(access.pop_metros)[0]
    probe = probes.probe_for(access.asn, metro)
    trace = probes.traceroute_anycast(probe, network)
    assert trace.destination_asn == deployment.asn
    fe = deployment.frontends[0]
    unicast = probes.traceroute_unicast(probe, network, fe.frontend_id)
    assert unicast.hops[-1].metro_code == fe.metro_code


def test_investigate_returns_both_traces(cdn_world, probes):
    topology, deployment, network = cdn_world
    access = topology.ases_with_role(AsRole.ACCESS)[0]
    metro = sorted(access.pop_metros)[0]
    result = probes.investigate(network, access.asn, metro)
    assert result is not None
    anycast_trace, unicast_trace = result
    assert anycast_trace.source_metro == metro
    assert unicast_trace.source_metro == metro


def test_investigate_without_probe(cdn_world, probes):
    _, _, network = cdn_world
    assert probes.investigate(network, 424242, "nyc") is None


def test_coverage_validated(cdn_world):
    topology, _, _ = cdn_world
    with pytest.raises(ConfigurationError):
        ProbeNetwork(topology, coverage=0.0)
    with pytest.raises(ConfigurationError):
        ProbeNetwork(topology, coverage=1.5)
