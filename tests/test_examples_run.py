"""Smoke tests: every example script runs end-to-end.

Examples are downscaled through an environment knob?  No — they are small
already; here we run the fastest ones in-process with a tiny monkeypatched
scale so the suite stays quick while still executing every line of each
script's logic.
"""

import runpy
import sys

import pytest

import repro.simulation.scenario as scenario_module
from repro.clients.population import ClientPopulationConfig
from repro.simulation.clock import SimulationCalendar
from repro.simulation.scenario import ScenarioConfig

EXAMPLES = [
    "examples/quickstart.py",
    "examples/cdn_size_survey.py",
    "examples/troubleshoot_routing.py",
    "examples/prediction_redirection.py",
    "examples/hybrid_deployment.py",
    "examples/failover_cascade.py",
    "examples/load_shedding.py",
]


@pytest.fixture()
def tiny_scale(monkeypatch):
    """Shrink every ScenarioConfig an example builds."""
    original = ScenarioConfig

    def tiny(*args, **kwargs):
        kwargs["population"] = ClientPopulationConfig(prefix_count=60)
        calendar = kwargs.get("calendar")
        days = min(calendar.num_days, 3) if calendar else 3
        kwargs["calendar"] = SimulationCalendar(num_days=days)
        return original(*args, **kwargs)

    for module_name, module in list(sys.modules.items()):
        if module is None:
            continue
        if getattr(module, "ScenarioConfig", None) is original:
            monkeypatch.setattr(module, "ScenarioConfig", tiny)
    return tiny


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs(path, tiny_scale, capsys):
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path} produced no output"
