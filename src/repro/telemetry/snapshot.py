"""Serializable, mergeable snapshots of a run's telemetry.

A :class:`TelemetrySnapshot` is the frozen value of one process's
telemetry — counters, gauges, histograms, and span records, plus the
run context (seed, engine, workers, config hash).  Snapshots are what
cross process boundaries: each :class:`~repro.simulation.parallel
.ParallelCampaignRunner` worker returns its snapshot alongside its
partial dataset, and the coordinator merges them exactly like the
measurement sinks — order-insensitively:

* counters and span records add;
* histograms add per-bucket counts (layouts are fixed, so buckets
  always line up);
* gauges combine under their declared merge policy;
* contexts must agree on shared keys (shards of one run do).

Snapshots serialize to a single JSON document (:meth:`to_json` /
:meth:`from_json`) and to Prometheus text exposition format
(:meth:`to_prometheus`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TelemetryError
from repro.telemetry.registry import GAUGE_MERGE_MODES
from repro.telemetry.spans import PATH_SEPARATOR, SpanRecord
from repro.telemetry.trace import TraceLog

#: Format marker written into every snapshot export.
SNAPSHOT_FORMAT_VERSION = 1


def _sanitize(name: str) -> str:
    """Map a dotted metric name to a Prometheus-legal one."""
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


@dataclass
class TelemetrySnapshot:
    """One process's telemetry, frozen at snapshot time.

    Attributes:
        context: Run identity (seed, engine, workers, config_hash, ...).
        counters: name → total.
        gauges: name → ``{"value": float, "merge": policy}``.
        histograms: name → ``{"start", "growth", "bucket_count",
            "counts" (overflow last), "sum", "observations"}``.
        spans: path → :class:`SpanRecord`.
        trace: optional :class:`TraceLog` of structured timeline
            events; merged by clock-rebased event-set union.
    """

    context: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    spans: Dict[str, SpanRecord] = field(default_factory=dict)
    trace: Optional[TraceLog] = None

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Fold another snapshot into this one (in place).

        Order-insensitive for counters, histograms, and spans; gauges
        follow their merge policy.  Context keys present in both
        snapshots must agree — shards of one run share seed, engine,
        and config hash by construction, so a mismatch means snapshots
        from *different* runs are being combined.

        Raises:
            TelemetryError: on conflicting context values, gauge merge
                policies, or histogram bucket layouts.
        """
        for key, value in other.context.items():
            mine = self.context.get(key)
            if mine is None:
                self.context[key] = value
            elif mine != value and key != "workers":
                raise TelemetryError(
                    f"cannot merge snapshots from different runs: "
                    f"context[{key!r}] differs ({mine!r} != {value!r})"
                )
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, gauge in other.gauges.items():
            mine = self.gauges.get(name)
            if mine is None:
                self.gauges[name] = dict(gauge)
                continue
            if mine["merge"] != gauge["merge"]:
                raise TelemetryError(
                    f"gauge {name!r}: conflicting merge policies "
                    f"{mine['merge']!r} != {gauge['merge']!r}"
                )
            mode = mine["merge"]
            if mode == "max":
                mine["value"] = max(mine["value"], gauge["value"])
            elif mode == "min":
                mine["value"] = min(mine["value"], gauge["value"])
            elif mode == "sum":
                mine["value"] += gauge["value"]
            else:  # "last"
                mine["value"] = gauge["value"]
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = {
                    **histogram, "counts": list(histogram["counts"]),
                }
                continue
            layout = ("start", "growth", "bucket_count")
            if any(mine[k] != histogram[k] for k in layout):
                raise TelemetryError(
                    f"histogram {name!r}: bucket layouts differ; "
                    "cannot merge"
                )
            mine["counts"] = [
                a + b for a, b in zip(mine["counts"], histogram["counts"])
            ]
            mine["sum"] += histogram["sum"]
            mine["observations"] += histogram["observations"]
        for path, record in other.spans.items():
            mine_record = self.spans.get(path)
            if mine_record is None:
                self.spans[path] = SpanRecord(
                    count=record.count,
                    seconds=record.seconds,
                    indexed=dict(record.indexed),
                )
            else:
                mine_record.absorb(record)
        if other.trace is not None and other.trace.events:
            if self.trace is None:
                self.trace = TraceLog(origin=other.trace.origin)
            self.trace.merge(other.trace)
        return self

    # ------------------------------------------------------------------
    # Phase-tree helpers
    # ------------------------------------------------------------------

    def span_children(self, path: str) -> List[Tuple[str, SpanRecord]]:
        """Direct children of a span path, insertion-ordered."""
        prefix = path + PATH_SEPARATOR
        return [
            (candidate, record)
            for candidate, record in self.spans.items()
            if candidate.startswith(prefix)
            and PATH_SEPARATOR not in candidate[len(prefix):]
        ]

    def span_roots(self) -> List[Tuple[str, SpanRecord]]:
        """Top-level span paths, insertion-ordered."""
        return [
            (path, record)
            for path, record in self.spans.items()
            if PATH_SEPARATOR not in path
        ]

    def phase_coverage(self, path: str) -> float:
        """Fraction of a span's seconds explained by its children."""
        record = self.spans.get(path)
        if record is None:
            return 0.0
        if record.seconds <= 0.0:
            return 1.0
        children = sum(r.seconds for _, r in self.span_children(path))
        return min(children / record.seconds, 1.0)

    def day_seconds(self, path: str = "campaign/day") -> List[float]:
        """Per-day seconds from an indexed span, day-ordered.

        Missing days (a shard that never saw day ``d`` contributes
        nothing) read as 0, so the list always spans day 0 to the
        highest recorded day.
        """
        record = self.spans.get(path)
        if record is None or not record.indexed:
            return []
        by_day = {int(key): value for key, value in record.indexed.items()}
        return [by_day.get(day, 0.0) for day in range(max(by_day) + 1)]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_obj(self) -> Dict[str, Any]:
        """A JSON-compatible document for this snapshot."""
        document: Dict[str, Any] = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "context": dict(self.context),
            "counters": dict(self.counters),
            "gauges": {
                name: dict(gauge) for name, gauge in self.gauges.items()
            },
            "histograms": {
                name: {**hist, "counts": list(hist["counts"])}
                for name, hist in self.histograms.items()
            },
            "spans": {
                path: {
                    "count": record.count,
                    "seconds": record.seconds,
                    "indexed": dict(record.indexed),
                }
                for path, record in self.spans.items()
            },
        }
        if self.trace is not None and self.trace.events:
            document["trace"] = self.trace.to_obj()
        return document

    @classmethod
    def from_obj(cls, document: Dict[str, Any]) -> "TelemetrySnapshot":
        """Rebuild a snapshot from :meth:`to_obj`'s output.

        Raises:
            TelemetryError: on an unknown format version or a gauge
                with an unknown merge policy.
        """
        version = document.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise TelemetryError(
                f"unsupported telemetry snapshot format {version!r}"
            )
        for name, gauge in document.get("gauges", {}).items():
            if gauge.get("merge") not in GAUGE_MERGE_MODES:
                raise TelemetryError(
                    f"gauge {name!r}: unknown merge policy "
                    f"{gauge.get('merge')!r}"
                )
        return cls(
            context=dict(document.get("context", {})),
            counters={
                name: value
                for name, value in document.get("counters", {}).items()
            },
            gauges={
                name: dict(gauge)
                for name, gauge in document.get("gauges", {}).items()
            },
            histograms={
                name: {**hist, "counts": list(hist["counts"])}
                for name, hist in document.get("histograms", {}).items()
            },
            spans={
                path: SpanRecord(
                    count=int(record["count"]),
                    seconds=float(record["seconds"]),
                    indexed={
                        key: float(value)
                        for key, value in record.get("indexed", {}).items()
                    },
                )
                for path, record in document.get("spans", {}).items()
            },
            trace=(
                TraceLog.from_obj(document["trace"])
                if "trace" in document
                else None
            ),
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_obj(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TelemetrySnapshot":
        """Parse a snapshot from :meth:`to_json` output."""
        return cls.from_obj(json.loads(text))

    # ------------------------------------------------------------------
    # Prometheus exposition
    # ------------------------------------------------------------------

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Render the snapshot in Prometheus text exposition format.

        Counters become ``<prefix>_<name>`` counters, gauges become
        gauges, histograms emit the standard cumulative ``_bucket{le=}``
        / ``_sum`` / ``_count`` series, and span records emit
        ``<prefix>_phase_seconds_total`` / ``_phase_runs_total`` series
        labelled by phase path.
        """
        lines: List[str] = []

        def esc(value: str) -> str:
            return value.replace("\\", "\\\\").replace('"', '\\"')

        for name, value in sorted(self.counters.items()):
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        for name, gauge in sorted(self.gauges.items()):
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauge['value']}")
        for name, hist in sorted(self.histograms.items()):
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} histogram")
            edges = [
                hist["start"] * hist["growth"] ** i
                for i in range(hist["bucket_count"])
            ]
            cumulative = 0
            for edge, bucket in zip(edges, hist["counts"]):
                cumulative += bucket
                lines.append(
                    f'{metric}_bucket{{le="{edge:.9g}"}} {cumulative}'
                )
            cumulative += hist["counts"][-1]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {hist['sum']}")
            lines.append(f"{metric}_count {hist['observations']}")
        if self.spans:
            seconds_metric = f"{prefix}_phase_seconds_total"
            runs_metric = f"{prefix}_phase_runs_total"
            lines.append(f"# TYPE {seconds_metric} counter")
            for path, record in sorted(self.spans.items()):
                lines.append(
                    f'{seconds_metric}{{phase="{esc(path)}"}} '
                    f"{record.seconds}"
                )
            lines.append(f"# TYPE {runs_metric} counter")
            for path, record in sorted(self.spans.items()):
                lines.append(
                    f'{runs_metric}{{phase="{esc(path)}"}} {record.count}'
                )
        return "\n".join(lines) + "\n"
