"""Tests for great-circle math (repro.geo.coords)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeoError
from repro.geo.coords import (
    EARTH_RADIUS_KM,
    GeoPoint,
    destination_point,
    haversine_km,
    initial_bearing_deg,
)

NYC = GeoPoint(40.71, -74.01)
LONDON = GeoPoint(51.51, -0.13)
SYDNEY = GeoPoint(-33.87, 151.21)
TOKYO = GeoPoint(35.68, 139.69)

latitudes = st.floats(min_value=-89.0, max_value=89.0)
longitudes = st.floats(min_value=-179.9, max_value=179.9)
points = st.builds(GeoPoint, lat=latitudes, lon=longitudes)


class TestGeoPoint:
    def test_valid_construction(self):
        point = GeoPoint(10.5, -20.25)
        assert point.lat == 10.5
        assert point.lon == -20.25

    def test_poles_and_antimeridian_are_valid(self):
        GeoPoint(90.0, 0.0)
        GeoPoint(-90.0, 0.0)
        GeoPoint(0.0, 180.0)
        GeoPoint(0.0, -180.0)

    @pytest.mark.parametrize("lat", [-90.01, 91.0, 1000.0])
    def test_latitude_out_of_range(self, lat):
        with pytest.raises(GeoError):
            GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lon", [-180.01, 181.0, 720.0])
    def test_longitude_out_of_range(self, lon):
        with pytest.raises(GeoError):
            GeoPoint(0.0, lon)

    def test_distance_method_matches_function(self):
        assert NYC.distance_km(LONDON) == haversine_km(NYC, LONDON)

    def test_points_are_hashable_and_ordered(self):
        assert len({NYC, LONDON, NYC}) == 2
        assert GeoPoint(0, 0) < GeoPoint(1, 0)


class TestHaversine:
    def test_nyc_to_london(self):
        # Known great-circle distance ~5570 km.
        assert haversine_km(NYC, LONDON) == pytest.approx(5570, abs=30)

    def test_sydney_to_tokyo(self):
        assert haversine_km(SYDNEY, TOKYO) == pytest.approx(7820, abs=60)

    def test_zero_distance(self):
        assert haversine_km(NYC, NYC) == 0.0

    def test_symmetry_known_pair(self):
        assert haversine_km(NYC, SYDNEY) == pytest.approx(
            haversine_km(SYDNEY, NYC)
        )

    def test_antipodal_near_half_circumference(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        assert haversine_km(a, b) == pytest.approx(
            math.pi * EARTH_RADIUS_KM, rel=1e-9
        )

    def test_one_degree_longitude_at_equator(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 1.0)
        assert haversine_km(a, b) == pytest.approx(111.19, abs=0.1)

    @given(points, points)
    @settings(max_examples=60)
    def test_symmetric(self, a, b):
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    @given(points, points)
    @settings(max_examples=60)
    def test_bounded_by_half_circumference(self, a, b):
        assert 0.0 <= haversine_km(a, b) <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(points, points, points)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert haversine_km(a, c) <= (
            haversine_km(a, b) + haversine_km(b, c) + 1e-6
        )


class TestBearing:
    def test_due_north(self):
        assert initial_bearing_deg(
            GeoPoint(0, 0), GeoPoint(10, 0)
        ) == pytest.approx(0.0, abs=1e-9)

    def test_due_east(self):
        assert initial_bearing_deg(
            GeoPoint(0, 0), GeoPoint(0, 10)
        ) == pytest.approx(90.0, abs=1e-9)

    def test_due_south(self):
        assert initial_bearing_deg(
            GeoPoint(10, 0), GeoPoint(0, 0)
        ) == pytest.approx(180.0, abs=1e-9)

    def test_coincident_points_convention(self):
        assert initial_bearing_deg(NYC, NYC) == 0.0

    @given(points, points)
    @settings(max_examples=60)
    def test_range(self, a, b):
        bearing = initial_bearing_deg(a, b)
        assert 0.0 <= bearing < 360.0


class TestDestinationPoint:
    def test_zero_distance_is_identity(self):
        result = destination_point(NYC, 123.0, 0.0)
        assert result.lat == pytest.approx(NYC.lat)
        assert result.lon == pytest.approx(NYC.lon)

    def test_negative_distance_rejected(self):
        with pytest.raises(GeoError):
            destination_point(NYC, 0.0, -1.0)

    def test_northward_displacement(self):
        result = destination_point(GeoPoint(0, 0), 0.0, 111.19)
        assert result.lat == pytest.approx(1.0, abs=0.01)
        assert result.lon == pytest.approx(0.0, abs=1e-6)

    @given(
        points,
        st.floats(min_value=0.0, max_value=360.0),
        st.floats(min_value=0.0, max_value=5000.0),
    )
    @settings(max_examples=80)
    def test_round_trip_distance(self, origin, bearing, distance):
        destination = destination_point(origin, bearing, distance)
        assert haversine_km(origin, destination) == pytest.approx(
            distance, abs=max(1e-6, distance * 1e-9) + 1e-6
        )

    def test_longitude_normalized(self):
        # Travel east across the antimeridian.
        origin = GeoPoint(0.0, 179.5)
        result = destination_point(origin, 90.0, 200.0)
        assert -180.0 <= result.lon <= 180.0
