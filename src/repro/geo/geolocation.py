"""IP geolocation database with a configurable error model.

The paper geolocates client /24s and LDNS resolvers to pick candidate
front-ends (§3.3) and to compute distance distributions (Figs 2, 4, 8).
Footnote 1 notes that "no geolocation database is perfect" and that a
fraction of very long client-to-front-end distances may be artifacts of bad
geolocation.  This module reproduces that property: a configurable fraction
of records is deliberately displaced by a large distance, so analyses can
quantify the artifact (see ``benchmarks/bench_fig4_anycast_distance.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import GeoError
from repro.geo.coords import GeoPoint, destination_point, haversine_km


@dataclass(frozen=True)
class GeolocationRecord:
    """Geolocation database row for one key (a prefix or resolver id).

    Attributes:
        key: Opaque lookup key — the library uses /24 prefix strings and
            LDNS identifiers.
        true_location: Ground-truth location (known because we generated it).
        reported_location: What the database *reports* — equals the truth
            unless the error model displaced this record.
    """

    key: str
    true_location: GeoPoint
    reported_location: GeoPoint

    @property
    def error_km(self) -> float:
        """Distance between truth and report; 0 for clean records."""
        return haversine_km(self.true_location, self.reported_location)

    @property
    def is_erroneous(self) -> bool:
        """Whether the error model displaced this record (>50 km off)."""
        return self.error_km > 50.0


class GeolocationDatabase:
    """Mapping from keys to (possibly erroneous) reported locations.

    Args:
        error_fraction: Fraction of records displaced by the error model.
        error_distance_km: Scale of displacement; actual displacement is
            uniform in [0.5x, 2x] of this value, in a random direction.
        seed: RNG seed; the same seed reproduces the same error pattern.
    """

    def __init__(
        self,
        error_fraction: float = 0.02,
        error_distance_km: float = 4000.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= error_fraction <= 1.0:
            raise GeoError(
                f"error_fraction must be in [0, 1], got {error_fraction}"
            )
        if error_distance_km < 0:
            raise GeoError(
                f"error_distance_km must be non-negative, got {error_distance_km}"
            )
        self._error_fraction = error_fraction
        self._error_distance_km = error_distance_km
        self._rng = random.Random(seed)
        self._records: Dict[str, GeolocationRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __iter__(self) -> Iterator[GeolocationRecord]:
        return iter(self._records.values())

    @property
    def error_fraction(self) -> float:
        """Configured fraction of displaced records."""
        return self._error_fraction

    def register(self, key: str, true_location: GeoPoint) -> GeolocationRecord:
        """Insert a record, applying the error model.

        Registering an existing key is an error: a geolocation database has
        one row per prefix.

        Returns:
            The stored record (with its reported location decided).
        """
        if key in self._records:
            raise GeoError(f"key {key!r} already registered")
        reported = true_location
        if self._error_fraction > 0 and self._rng.random() < self._error_fraction:
            bearing = self._rng.uniform(0.0, 360.0)
            distance = self._error_distance_km * self._rng.uniform(0.5, 2.0)
            reported = destination_point(true_location, bearing, distance)
        record = GeolocationRecord(
            key=key, true_location=true_location, reported_location=reported
        )
        self._records[key] = record
        return record

    def register_all(
        self, items: Iterable[Tuple[str, GeoPoint]]
    ) -> Tuple[GeolocationRecord, ...]:
        """Bulk :meth:`register`; returns the stored records in order."""
        return tuple(self.register(key, loc) for key, loc in items)

    def lookup(self, key: str) -> GeoPoint:
        """Reported location for ``key`` (what a real DB would answer).

        Raises:
            GeoError: if the key was never registered.
        """
        return self.record(key).reported_location

    def true_location(self, key: str) -> GeoPoint:
        """Ground-truth location for ``key`` (simulation-only oracle)."""
        return self.record(key).true_location

    def record(self, key: str) -> GeolocationRecord:
        """Full record for ``key``."""
        try:
            return self._records[key]
        except KeyError:
            raise GeoError(f"key {key!r} not in geolocation database") from None

    def erroneous_keys(self) -> Tuple[str, ...]:
        """Keys the error model displaced — for artifact analyses."""
        return tuple(
            rec.key for rec in self._records.values() if rec.is_erroneous
        )
