"""The study dataset: everything a month of measurement produced.

Analyses (and the predictor) consume this container rather than raw logs,
mirroring how the paper's backend storage fed its analyses.

Datasets over the same calendar and client population are *mergeable*
(:meth:`StudyDataset.merge`, or the ``+`` operator): a sharded parallel
campaign produces one partial dataset per client shard and folds them
into the full dataset.  :meth:`StudyDataset.digest` gives a canonical,
order-insensitive fingerprint, so serial, parallel, and re-ordered runs
of the same scenario can be checked for bit-identical results.

Datasets also track *coverage*: which half-open client index ranges they
actually measured.  Merging overlapping coverage is rejected (a
duplicate shard merge would double-count), and a degraded campaign that
lost shards reports the gaps via :meth:`StudyDataset.missing_ranges` —
the "partial but trustworthy" contract of the resilient executor in
:mod:`repro.simulation.parallel`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.clients.population import ClientPrefix
from repro.measurement.aggregate import GroupedDailyAggregates, RequestDiffLog
from repro.measurement.logs import PassiveLog
from repro.simulation.clock import SimulationCalendar


def normalize_ranges(
    ranges: Tuple[Tuple[int, int], ...]
) -> Tuple[Tuple[int, int], ...]:
    """Sort half-open index ranges, drop empty ones, coalesce adjacent.

    The canonical form makes coverage bookkeeping order-insensitive: any
    sequence of disjoint shard merges reaching the same client set
    yields the same tuple.
    """
    spans = sorted((int(a), int(b)) for a, b in ranges if a < b)
    merged: List[Tuple[int, int]] = []
    for start, stop in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], stop))
        else:
            merged.append((start, stop))
    return tuple(merged)


def ranges_overlap(
    a: Tuple[Tuple[int, int], ...], b: Tuple[Tuple[int, int], ...]
) -> bool:
    """Whether two normalized half-open range sets share any index."""
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i][1] <= b[j][0]:
            i += 1
        elif b[j][1] <= a[i][0]:
            j += 1
        else:
            return True
    return False


@dataclass
class StudyDataset:
    """Aggregated outputs of a measurement campaign.

    Attributes:
        calendar: The days the campaign covered.
        clients: The client population measured.
        ecs_aggregates: day → (client /24, target) → latency digest.
        ldns_aggregates: day → (LDNS id, target) → latency digest.
        request_diffs: Per-beacon anycast − best-unicast rows (Fig 3).
        passive: Production-traffic front-end counts (Figs 4, 7, 8).
        beacon_count: Total beacon executions.
        measurement_count: Total joined measurements.
        covered_ranges: Half-open client index ranges this dataset
            actually measured.  ``None`` (the default) means the whole
            population — the right reading for full runs, direct
            constructions, and datasets saved before coverage existed.
            Shard partials carry their slice; merging disjoint shards
            unions the ranges, and a degraded campaign that lost shards
            ends up with gaps (see :meth:`missing_ranges`).
        load_summary: JSON-clean summary of the campaign's load
            management (per-day utilization/shed series, per-front-end
            peaks, overload events) when the campaign ran with finite
            front-end capacity, else ``None``.  The schedule is global —
            every shard of one campaign carries an identical copy, so
            merging keeps whichever side has one.
    """

    calendar: SimulationCalendar
    clients: Tuple[ClientPrefix, ...]
    ecs_aggregates: GroupedDailyAggregates
    ldns_aggregates: GroupedDailyAggregates
    request_diffs: RequestDiffLog
    passive: PassiveLog
    beacon_count: int = 0
    measurement_count: int = 0
    covered_ranges: Optional[Tuple[Tuple[int, int], ...]] = None
    load_summary: Optional[Dict[str, object]] = None
    _index: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._index:
            self._index = {
                client.key: i for i, client in enumerate(self.clients)
            }
        if self.covered_ranges is None:
            self.covered_ranges = (
                ((0, len(self.clients)),) if self.clients else ()
            )
        else:
            self.covered_ranges = normalize_ranges(
                tuple(self.covered_ranges)
            )

    def client_by_key(self, client_key: str) -> ClientPrefix:
        """Client record for a /24 key."""
        return self.clients[self._index[client_key]]

    def client_by_index(self, index: int) -> ClientPrefix:
        """Client record by packed index (as used in request_diffs)."""
        return self.clients[index]

    def volume_weight(self, client_key: str) -> float:
        """Query-volume weight of a /24 (its mean daily queries)."""
        return self.client_by_key(client_key).daily_queries

    # ------------------------------------------------------------------
    # Merging and fingerprinting
    # ------------------------------------------------------------------

    def merge(self, other: "StudyDataset") -> "StudyDataset":
        """Fold another dataset's measurements into this one (in place).

        Both datasets must cover the same calendar and client population
        (shards of one campaign do); only the *measurements* may differ.
        The operands' covered client ranges must be disjoint — merging
        the same shard twice would double-count every one of its
        measurements, so it is rejected rather than silently absorbed.

        Raises:
            MeasurementError: on mismatched calendars or populations, or
                overlapping covered client ranges (duplicate merge).
        """
        if (
            self.calendar.start != other.calendar.start
            or self.calendar.num_days != other.calendar.num_days
        ):
            raise MeasurementError(
                "cannot merge datasets over different calendars"
            )
        if len(self.clients) != len(other.clients) or any(
            a.key != b.key for a, b in zip(self.clients, other.clients)
        ):
            raise MeasurementError(
                "cannot merge datasets over different client populations"
            )
        assert self.covered_ranges is not None
        assert other.covered_ranges is not None
        if ranges_overlap(self.covered_ranges, other.covered_ranges):
            raise MeasurementError(
                "cannot merge datasets with overlapping client coverage "
                f"({self.covered_ranges} vs {other.covered_ranges}) — "
                "duplicate shard merge"
            )
        self.covered_ranges = normalize_ranges(
            self.covered_ranges + other.covered_ranges
        )
        self.ecs_aggregates.merge(other.ecs_aggregates)
        self.ldns_aggregates.merge(other.ldns_aggregates)
        self.request_diffs.merge(other.request_diffs)
        self.passive.merge(other.passive)
        self.beacon_count += other.beacon_count
        self.measurement_count += other.measurement_count
        if self.load_summary is None:
            self.load_summary = other.load_summary
        return self

    def __add__(self, other: "StudyDataset") -> "StudyDataset":
        """A new dataset holding both operands' measurements."""
        result = StudyDataset(
            calendar=self.calendar,
            clients=self.clients,
            ecs_aggregates=GroupedDailyAggregates(
                self.ecs_aggregates.grouping,
                exact_threshold=self.ecs_aggregates.exact_threshold,
                relative_accuracy=self.ecs_aggregates.relative_accuracy,
                max_buckets=self.ecs_aggregates.max_buckets,
            ),
            ldns_aggregates=GroupedDailyAggregates(
                self.ldns_aggregates.grouping,
                exact_threshold=self.ldns_aggregates.exact_threshold,
                relative_accuracy=self.ldns_aggregates.relative_accuracy,
                max_buckets=self.ldns_aggregates.max_buckets,
            ),
            request_diffs=RequestDiffLog(
                bounded=self.request_diffs.is_bounded,
                relative_accuracy=self.request_diffs.relative_accuracy,
                max_buckets=self.request_diffs.max_buckets,
            ),
            passive=PassiveLog(bounded=self.passive.is_bounded),
            covered_ranges=(),
        )
        result.merge(self)
        result.merge(other)
        return result

    # ------------------------------------------------------------------
    # Coverage and degradation
    # ------------------------------------------------------------------

    def missing_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Half-open client index ranges with no measurements.

        The complement of :attr:`covered_ranges` over the population —
        empty for a complete dataset, and exactly the lost shard slices
        for a degraded campaign that ran with ``allow_partial``.
        Analyses can use this to down-weight or annotate figures built
        from a partial dataset.
        """
        assert self.covered_ranges is not None
        gaps: List[Tuple[int, int]] = []
        cursor = 0
        for start, stop in self.covered_ranges:
            if cursor < start:
                gaps.append((cursor, start))
            cursor = max(cursor, stop)
        if cursor < len(self.clients):
            gaps.append((cursor, len(self.clients)))
        return tuple(gaps)

    @property
    def is_partial(self) -> bool:
        """Whether any client range is missing from this dataset."""
        return bool(self.missing_ranges())

    @property
    def coverage_fraction(self) -> float:
        """Fraction of the client population with measurements (0..1)."""
        if not self.clients:
            return 1.0
        assert self.covered_ranges is not None
        covered = sum(stop - start for start, stop in self.covered_ranges)
        return covered / len(self.clients)

    def digest(self) -> str:
        """Canonical SHA-256 fingerprint of the dataset's contents.

        The traversal is fully sorted and the within-digest sample order
        is canonicalized, so two datasets holding the same *multiset* of
        measurements — e.g. a serial run and a merged sharded run, whose
        shared-LDNS digests interleave samples differently — produce the
        same hex digest.  Floats hash by exact ``repr``; no tolerance.
        """
        h = hashlib.sha256()

        def put(*parts: object) -> None:
            for part in parts:
                h.update(str(part).encode("utf-8"))
                h.update(b"\x1f")

        put("calendar", self.calendar.start.isoformat(), self.calendar.num_days)
        put("clients", len(self.clients))
        for client in self.clients:
            put(client.key)
        for aggregates in (self.ecs_aggregates, self.ldns_aggregates):
            put("aggregates", aggregates.grouping)
            for day in aggregates.days:
                for group in aggregates.groups_on(day):
                    for target_id, digest in sorted(
                        aggregates.targets_for(day, group).items()
                    ):
                        put(day, group, target_id)
                        if digest.is_exact:
                            # tolist() yields Python floats, so repr
                            # matches the historical sorted(values())
                            # hashing byte for byte.
                            ordered = np.sort(digest.values_view()).tolist()
                            for value in ordered:
                                put(repr(value))
                        else:
                            assert digest.sketch is not None
                            put("sketch", digest.sketch.digest())
        put("request_diffs", len(self.request_diffs))
        names = self.request_diffs.region_names
        if self.request_diffs.is_bounded:
            put("diff-sketches")
            sketches = self.request_diffs.day_region_sketches()
            for (day, region) in sorted(sketches):
                put(day, region, sketches[(day, region)].digest())
        else:
            for row in sorted(
                self.request_diffs.rows(),
                key=lambda r: (
                    r.day,
                    r.client_index,
                    r.anycast_rtt_ms,
                    r.best_unicast_rtt_ms,
                ),
            ):
                put(
                    row.day,
                    row.client_index,
                    names[row.region_code],
                    repr(row.anycast_rtt_ms),
                    repr(row.best_unicast_rtt_ms),
                )
        put("passive")
        if self.passive.is_bounded:
            put("totals")
            for day in self.passive.days:
                for frontend_id, count in sorted(
                    self.passive.day_totals(day).items()
                ):
                    put(day, frontend_id, count)
        else:
            for day in self.passive.days:
                for client_key in sorted(self.passive.clients_on(day)):
                    for frontend_id, count in sorted(
                        self.passive.frontends_for(day, client_key).items()
                    ):
                        put(day, client_key, frontend_id, count)
        put("counts", self.beacon_count, self.measurement_count)
        # Only a *partial* dataset hashes its coverage: complete datasets
        # keep their historical digests, while a degraded campaign can
        # never impersonate the full run it fell short of.
        missing = self.missing_ranges()
        if missing:
            put("missing", len(missing))
            for start, stop in missing:
                put(start, stop)
        # Same only-when-present rule as coverage: capacity-off datasets
        # keep their historical digests, capacity-on runs must agree on
        # the whole load timeline bit for bit.
        if self.load_summary is not None:
            put("load", json.dumps(self.load_summary, sort_keys=True))
        return h.hexdigest()
