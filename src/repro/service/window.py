"""The ring-buffered sliding window behind the online predictor.

The paper's prediction interval is one day: the §6 scheme scores each
(group, target) over the *previous* day's measurements.  Online, that
means the service must hold the last ``window_days`` days of per-(group,
target) latency digests, append as events arrive, and evict whole days
as the clock advances — the classic ring buffer of aggregation buckets.

Each day bucket is one pair of :class:`~repro.measurement.aggregate
.GroupedDailyAggregates` (ECS and LDNS groupings) holding only that
day, so the digests the online predictor reads for day *d* are built
from exactly the samples the batch predictor sees for day *d*.  Because
``LatencyDigest`` percentiles are a pure function of the sample
multiset (sorting internally; canonical sketch promotion), online and
batch scores agree *bit for bit* — the differential-oracle property
``tests/test_service_replay.py`` asserts.

The window itself is order-free: :meth:`observe` commutes across
events, eviction drops whole days without touching retained ones, and
:meth:`state_digest` hashes a fully-sorted traversal — so window state
is a pure function of the in-window event multiset, invariant under
arrival order, shard interleaving, and eviction batching
(``tests/test_service_window.py``).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, MeasurementError
from repro.measurement.aggregate import GroupedDailyAggregates
from repro.measurement.export import digest_from_payload, digest_payload
from repro.measurement.sketch import (
    DEFAULT_MAX_BUCKETS,
    DEFAULT_RELATIVE_ACCURACY,
)
from repro.service.events import BeaconEvent

#: Grouping labels of the two aggregate planes each day bucket holds.
GROUPINGS = ("ecs", "ldns")


class PredictionWindow:
    """A sliding window of per-day (ECS, LDNS) aggregate buckets.

    Args:
        window_days: How many whole days the window retains.  The §6
            default is 1 — predictions for day *d* read day *d*'s bucket
            and day *d − window_days* and older are evictable once the
            stream reaches day *d + 1*.
        exact_threshold: Per-digest sketch-promotion threshold
            (``None`` keeps every digest exact — the oracle mode).
        relative_accuracy: Sketch accuracy after promotion.
        max_buckets: Per-sketch bucket cap after promotion.
    """

    def __init__(
        self,
        window_days: int = 1,
        exact_threshold: Optional[int] = None,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        if window_days < 1:
            raise ConfigurationError("window_days must be >= 1")
        self.window_days = window_days
        self.exact_threshold = exact_threshold
        self.relative_accuracy = relative_accuracy
        self.max_buckets = max_buckets
        self._days: Dict[
            int, Tuple[GroupedDailyAggregates, GroupedDailyAggregates]
        ] = {}
        #: Events dropped because their day was already evicted.
        self.late_drops = 0
        # Highest day index the window has evicted past (None before the
        # first advance).  Lateness is judged against this horizon, not
        # against the retained days: an out-of-order arrival *within*
        # the window must be admitted even when newer days got there
        # first, and a straggler for an evicted day must be dropped even
        # when the window happens to be empty.
        self._evicted_through: Optional[int] = None

    def _new_bucket(
        self,
    ) -> Tuple[GroupedDailyAggregates, GroupedDailyAggregates]:
        return tuple(
            GroupedDailyAggregates(
                grouping,
                exact_threshold=self.exact_threshold,
                relative_accuracy=self.relative_accuracy,
                max_buckets=self.max_buckets,
            )
            for grouping in GROUPINGS
        )

    # ------------------------------------------------------------------
    # Ingest and eviction
    # ------------------------------------------------------------------

    def observe(self, event: BeaconEvent, rtt_ms: Optional[float] = None) -> bool:
        """Fold one admitted beacon into its day bucket.

        ``rtt_ms`` overrides the event's value (the repair policy admits
        a clamped value).  Returns ``False`` — and counts a late drop —
        when the event's day was already evicted; retained state is
        never touched by such stragglers, which is what "evicted events
        never influence predictions" means operationally.
        """
        if (
            self._evicted_through is not None
            and event.day <= self._evicted_through
        ):
            self.late_drops += 1
            return False
        bucket = self._days.get(event.day)
        if bucket is None:
            bucket = self._new_bucket()
            self._days[event.day] = bucket
        value = event.rtt_ms if rtt_ms is None else rtt_ms
        ecs, ldns = bucket
        ecs.observe(event.day, event.client_key, event.target_id, value)
        ldns.observe(event.day, event.ldns_id, event.target_id, value)
        return True

    def advance_to(self, day: int) -> Tuple[int, ...]:
        """Evict buckets older than the window ending at ``day``.

        Keeps days in ``(day - window_days, day]`` — i.e. with the
        default 1-day window, reaching day *d* evicts day *d − 1* and
        older once their predictions have been taken.  Returns the
        evicted day indices (ascending).  Calling this at any cadence
        (per event, per day, or once at the end) leaves identical
        retained state — eviction drops whole days and never rewrites
        survivors.
        """
        horizon = day - self.window_days
        evicted = tuple(sorted(d for d in self._days if d <= horizon))
        for stale in evicted:
            del self._days[stale]
        if self._evicted_through is None or horizon > self._evicted_through:
            self._evicted_through = horizon
        return evicted

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def days(self) -> Tuple[int, ...]:
        """Retained day indices, ascending."""
        return tuple(sorted(self._days))

    def aggregates_for(
        self, day: int
    ) -> Optional[Tuple[GroupedDailyAggregates, GroupedDailyAggregates]]:
        """The (ECS, LDNS) aggregate pair of one retained day."""
        return self._days.get(day)

    def sample_count(self) -> int:
        """Total retained samples across every digest (both planes)."""
        total = 0
        for ecs, ldns in self._days.values():
            for aggregates in (ecs, ldns):
                for day in aggregates.days:
                    for _, _, digest in aggregates.iter_day(day):
                        total += digest.count
        return total

    def state_digest(self) -> str:
        """Canonical SHA-256 of the retained window state.

        Fully sorted traversal, samples canonicalized by sorting, floats
        hashed by exact ``repr`` — the same discipline as
        :meth:`repro.simulation.dataset.StudyDataset.digest`, so the
        digest is a pure function of the in-window event multiset.
        """
        h = hashlib.sha256()

        def put(*parts: object) -> None:
            for part in parts:
                h.update(str(part).encode("utf-8"))
                h.update(b"\x1f")

        put("window", self.window_days)
        for day in self.days:
            ecs, ldns = self._days[day]
            for aggregates in (ecs, ldns):
                put("plane", aggregates.grouping, day)
                for group in aggregates.groups_on(day):
                    for target_id, digest in sorted(
                        aggregates.targets_for(day, group).items()
                    ):
                        put(day, group, target_id)
                        if digest.is_exact:
                            ordered = np.sort(digest.values_view()).tolist()
                            for value in ordered:
                                put(repr(value))
                        else:
                            assert digest.sketch is not None
                            put("sketch", digest.sketch.digest())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Serialization (service checkpoints)
    # ------------------------------------------------------------------

    def to_obj(self) -> Dict[str, Any]:
        """JSON-compatible form; exact samples round-trip bit-exactly."""
        days: Dict[str, Any] = {}
        for day in self.days:
            ecs, ldns = self._days[day]
            planes: Dict[str, Any] = {}
            for aggregates in (ecs, ldns):
                rows = [
                    [group, target_id, digest_payload(digest)]
                    for group, target_id, digest in sorted(
                        aggregates.iter_day(day),
                        key=lambda row: (row[0], row[1]),
                    )
                ]
                planes[aggregates.grouping] = rows
            days[str(day)] = planes
        return {
            "window_days": self.window_days,
            "exact_threshold": self.exact_threshold,
            "relative_accuracy": self.relative_accuracy,
            "max_buckets": self.max_buckets,
            "late_drops": self.late_drops,
            "evicted_through": self._evicted_through,
            "days": days,
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "PredictionWindow":
        """Rebuild a window from :meth:`to_obj` output.

        Raises:
            MeasurementError: on a malformed document.
        """
        try:
            window = cls(
                window_days=int(obj["window_days"]),
                exact_threshold=(
                    None
                    if obj.get("exact_threshold") is None
                    else int(obj["exact_threshold"])
                ),
                relative_accuracy=float(obj["relative_accuracy"]),
                max_buckets=int(obj["max_buckets"]),
            )
            window.late_drops = int(obj.get("late_drops", 0))
            evicted_through = obj.get("evicted_through")
            window._evicted_through = (
                None if evicted_through is None else int(evicted_through)
            )
            for day_text, planes in obj["days"].items():
                day = int(day_text)
                bucket = window._new_bucket()
                window._days[day] = bucket
                for aggregates in bucket:
                    for group, target_id, payload in planes[
                        aggregates.grouping
                    ]:
                        digest = digest_from_payload(
                            payload,
                            window.exact_threshold,
                            window.relative_accuracy,
                            window.max_buckets,
                        )
                        per_day = aggregates._days.setdefault(day, {})
                        per_day.setdefault(str(group), {})[
                            str(target_id)
                        ] = digest
        except (KeyError, TypeError, ValueError) as error:
            raise MeasurementError(
                f"malformed prediction-window document ({error})"
            ) from error
        return window
