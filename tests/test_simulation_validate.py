"""Tests for scenario validation and config presets."""

import dataclasses

import pytest

from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.simulation.validate import (
    ValidationIssue,
    validate_scenario,
)


class TestPresets:
    def test_paper_scale(self):
        config = ScenarioConfig.paper_scale()
        assert config.population.prefix_count == 1500
        assert config.calendar.num_days == 28

    def test_laptop_scale(self):
        config = ScenarioConfig.laptop_scale(seed=7)
        assert config.seed == 7
        assert config.population.prefix_count == 400

    def test_smoke_scale_builds_and_validates(self):
        scenario = Scenario.build(ScenarioConfig.smoke_scale())
        report = validate_scenario(scenario)
        assert report.ok, report.format()


class TestValidation:
    def test_default_scenario_is_clean(self, small_scenario):
        report = validate_scenario(small_scenario)
        assert report.ok, report.format()
        assert report.errors == ()

    def test_short_calendar_warns(self):
        config = dataclasses.replace(
            ScenarioConfig.smoke_scale(),
        )
        scenario = Scenario.build(config)
        report = validate_scenario(scenario)
        assert any(
            "clamped" in issue.message for issue in report.warnings
        )

    def test_broken_geolocation_detected(self, small_scenario_config):
        scenario = Scenario.build(small_scenario_config)
        # Sabotage: drop a client's geolocation record.
        victim = scenario.clients[0]
        del scenario.geolocation._records[victim.key]  # test-only backdoor
        report = validate_scenario(scenario)
        assert not report.ok
        assert any(
            victim.key in issue.message for issue in report.errors
        )

    def test_issue_formatting(self):
        issue = ValidationIssue("error", "routing", "boom")
        assert issue.format() == "[error] routing: boom"

    def test_report_formatting(self, small_scenario):
        text = validate_scenario(small_scenario).format()
        assert "scenario validation" in text
