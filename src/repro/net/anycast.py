"""Data-plane resolution: where does a client's traffic actually go?

BGP (:mod:`repro.net.bgp`) decides each AS's next hop; this module walks the
data plane hop by hop, applying each AS's hot-/cold-potato egress policy to
pick the interconnect metro crossed at every AS boundary.  For an anycast
announcement the walk ends at the *ingress metro* — the peering point where
traffic enters the CDN's network — which §3.1 of the paper says determines
the serving front-end ("anycast traffic ingressing at a particular peering
point will also go to the closest front-end").

The two pathologies of §5 fall out of this walk:

* A cold-potato ISP carries traffic to its designated egress before handing
  off (the Moscow→Stockholm / Denver→Phoenix case studies).
* BGP's AS-level choice may commit to a border router (interconnect) whose
  internal continuation is long, because path selection never sees metros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import RoutingError
from repro.net.bgp import BgpRib
from repro.net.topology import Topology

#: Safety bound on data-plane walk length; real AS paths are far shorter.
_MAX_HOPS = 32


@dataclass(frozen=True)
class AnycastRoute:
    """A resolved data-plane path from a client's AS to an origin AS.

    Attributes:
        client_asn: AS the walk started in.
        client_metro: Metro (PoP of the client AS) where traffic originated.
        hops: Sequence of ``(asn, metro)`` pairs: the first element is the
            client's (asn, metro); each subsequent element is the AS traffic
            entered and the interconnect metro it entered at.  The last
            element is the origin AS and its ingress metro.
        as_path: ASNs traversed in order (client first, origin last).
    """

    client_asn: int
    client_metro: str
    hops: Tuple[Tuple[int, str], ...]

    @property
    def origin_asn(self) -> int:
        """The destination (origin) AS."""
        return self.hops[-1][0]

    @property
    def ingress_metro(self) -> str:
        """Metro where traffic enters the origin AS."""
        return self.hops[-1][1]

    @property
    def as_path(self) -> Tuple[int, ...]:
        """ASNs traversed, client first."""
        return tuple(asn for asn, _ in self.hops)

    @property
    def metro_path(self) -> Tuple[str, ...]:
        """Metros traversed, starting at the client's metro."""
        return tuple(metro for _, metro in self.hops)


def resolve_route(
    topology: Topology,
    rib: BgpRib,
    client_asn: int,
    client_metro: str,
    first_hop_egress_rank: int = 0,
) -> AnycastRoute:
    """Walk the data plane from ``(client_asn, client_metro)`` to the origin.

    The walk is hop-by-hop: every AS forwards along *its own* best route —
    exactly how BGP forwarding composes — and hands traffic off at the
    interconnect its egress policy selects.

    Args:
        first_hop_egress_rank: Egress preference rank applied at the
            *client's* AS only.  Rank 0 is the steady state; higher ranks
            model transient intradomain shifts, the mechanism behind
            front-end switches in :mod:`repro.simulation.churn`.

    Raises:
        RoutingError: if the client AS has no route, the metro is not one of
            its PoPs, or the walk exceeds the hop safety bound.
    """
    client_as = topology.get(client_asn)
    if client_metro not in client_as.pop_metros:
        raise RoutingError(
            f"AS{client_asn} has no PoP at metro {client_metro!r}"
        )
    entry = rib.get(client_asn)
    hops = [(client_asn, client_metro)]
    current_metro = client_metro
    current = entry
    while not current.is_origin:
        if len(hops) > _MAX_HOPS:
            raise RoutingError(
                f"data-plane walk from AS{client_asn} exceeded {_MAX_HOPS} hops"
                " — routing tables are inconsistent"
            )
        rank = first_hop_egress_rank if current.asn == client_asn else 0
        handoff = topology.egress_metro(
            current.asn, current_metro, current.handoff_metros, rank=rank
        )
        next_asn = current.next_hop
        assert next_asn is not None  # non-origin entries always have one
        hops.append((next_asn, handoff))
        current_metro = handoff
        current = rib.get(next_asn)
    return AnycastRoute(
        client_asn=client_asn, client_metro=client_metro, hops=tuple(hops)
    )


class AnycastResolver:
    """Cached data-plane resolution against one RIB.

    A measurement campaign resolves the same (AS, metro) pairs millions of
    times; the cache makes that cheap while keeping :func:`resolve_route`
    pure and testable.
    """

    def __init__(self, topology: Topology, rib: BgpRib) -> None:
        self._topology = topology
        self._rib = rib
        self._cache: Dict[Tuple[int, str], AnycastRoute] = {}

    @property
    def rib(self) -> BgpRib:
        """The RIB being resolved against."""
        return self._rib

    def resolve(
        self, client_asn: int, client_metro: str, egress_rank: int = 0
    ) -> AnycastRoute:
        """Resolved route for the pair, computed once and cached.

        ``egress_rank`` selects an alternate first-hop egress (see
        :func:`resolve_route`); each rank is cached independently.
        """
        key = (client_asn, client_metro, egress_rank)
        route = self._cache.get(key)
        if route is None:
            route = resolve_route(
                self._topology,
                self._rib,
                client_asn,
                client_metro,
                first_hop_egress_rank=egress_rank,
            )
            self._cache[key] = route
        return route

    def ingress_metro(
        self, client_asn: int, client_metro: str, egress_rank: int = 0
    ) -> str:
        """Metro where this client's traffic enters the origin AS."""
        return self.resolve(client_asn, client_metro, egress_rank).ingress_metro

    def variant_count(self, client_asn: int, client_metro: str) -> int:
        """Number of distinct first-hop egress choices at the client's AS.

        This bounds how many alternate routes churn can flip between; a
        count of 1 means the client's anycast path is structurally stable.
        """
        entry = self._rib.get(client_asn)
        if entry.is_origin:
            return 1
        return len(
            self._topology.ranked_egress_metros(
                client_asn, client_metro, entry.handoff_metros
            )
        )

    def has_route(self, client_asn: int) -> bool:
        """Whether the client's AS can reach the announcement at all."""
        return self._rib.has_route(client_asn)
