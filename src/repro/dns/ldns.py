"""LDNS resolver population.

§2 of the paper explains why LDNS matters: DNS-based redirection decides at
the granularity of the *resolver*, not the client.  Its accuracy therefore
depends on clients being near their LDNS — mostly true for ISP resolvers
(citing [17]: excluding public-resolver demand, only 11–12% of demand is
>500 km from its LDNS) and often false for public resolvers serving large,
geographically disparate client sets.

The directory models three resolver kinds:

* *ISP per-metro* resolvers sit at each PoP metro of an ISP — clients are
  nearby.
* *ISP centralized* resolvers: some ISPs run one resolver for their whole
  footprint — clients in the ISP's other metros are far from it.
* *Public* resolvers (Google DNS / OpenDNS stand-ins) at a handful of
  global locations; a small fraction of clients use them (§6 notes public
  resolvers were a negligible share of LDNS traffic in the experiment).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint
from repro.geo.metros import MetroDatabase
from repro.net.topology import AsRole, Topology


class LdnsKind(enum.Enum):
    """What kind of resolver an LDNS is."""

    ISP_METRO = "isp-metro"
    ISP_CENTRAL = "isp-central"
    PUBLIC = "public"


@dataclass(frozen=True)
class LdnsServer:
    """One LDNS resolver.

    Attributes:
        ldns_id: Stable identifier (the grouping key for §6's LDNS-based
            prediction).
        kind: Resolver kind.
        location: Where the resolver actually is.
        asn: Owning access ISP's ASN, or ``None`` for public resolvers.
        metro_code: Hosting metro.
    """

    ldns_id: str
    kind: LdnsKind
    location: GeoPoint
    asn: Optional[int]
    metro_code: str


@dataclass(frozen=True)
class LdnsConfig:
    """Knobs for the resolver population.

    Attributes:
        centralized_isp_fraction: Fraction of access ISPs that run a single
            centralized resolver instead of per-metro resolvers.
        public_usage_fraction: Probability a client uses a public resolver
            instead of its ISP's.
        public_metros: Metro codes hosting public-resolver nodes.
    """

    centralized_isp_fraction: float = 0.30
    public_usage_fraction: float = 0.02
    public_metros: Tuple[str, ...] = ("sfo", "was", "ams", "sin", "sao", "syd")

    def __post_init__(self) -> None:
        for name in ("centralized_isp_fraction", "public_usage_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if not self.public_metros:
            raise ConfigurationError("need at least one public-resolver metro")


class LdnsDirectory:
    """All resolvers for a topology, plus client→resolver assignment."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[LdnsConfig] = None,
        seed: int = 0,
    ) -> None:
        cfg = config or LdnsConfig()
        self._config = cfg
        metro_db = topology.metro_db
        rng = random.Random(seed)

        self._servers: Dict[str, LdnsServer] = {}
        #: (asn, metro) -> ldns_id for ISP resolvers
        self._isp_index: Dict[Tuple[int, str], str] = {}
        self._public_ids: List[str] = []

        for metro_code in cfg.public_metros:
            metro = metro_db.get(metro_code)
            ldns_id = f"ldns-public-{metro_code}"
            self._add(
                LdnsServer(
                    ldns_id=ldns_id,
                    kind=LdnsKind.PUBLIC,
                    location=metro.location,
                    asn=None,
                    metro_code=metro_code,
                )
            )
            self._public_ids.append(ldns_id)

        for as_ in sorted(topology.ases_with_role(AsRole.ACCESS), key=lambda a: a.asn):
            metros = sorted(as_.pop_metros)
            centralized = (
                len(metros) > 1
                and rng.random() < cfg.centralized_isp_fraction
            )
            if centralized:
                # Cold-potato ISPs anchor their resolver at the same HQ
                # metro their traffic engineering prefers.
                home = as_.cold_potato_egress or rng.choice(metros)
                ldns_id = f"ldns-as{as_.asn}"
                self._add(
                    LdnsServer(
                        ldns_id=ldns_id,
                        kind=LdnsKind.ISP_CENTRAL,
                        location=metro_db.get(home).location,
                        asn=as_.asn,
                        metro_code=home,
                    )
                )
                for metro_code in metros:
                    self._isp_index[(as_.asn, metro_code)] = ldns_id
            else:
                for metro_code in metros:
                    ldns_id = f"ldns-as{as_.asn}-{metro_code}"
                    self._add(
                        LdnsServer(
                            ldns_id=ldns_id,
                            kind=LdnsKind.ISP_METRO,
                            location=metro_db.get(metro_code).location,
                            asn=as_.asn,
                            metro_code=metro_code,
                        )
                    )
                    self._isp_index[(as_.asn, metro_code)] = ldns_id

    def _add(self, server: LdnsServer) -> None:
        if server.ldns_id in self._servers:
            raise ConfigurationError(f"duplicate LDNS id {server.ldns_id!r}")
        self._servers[server.ldns_id] = server

    @property
    def config(self) -> LdnsConfig:
        """The configuration used to build the directory."""
        return self._config

    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[LdnsServer]:
        return iter(self._servers.values())

    def __contains__(self, ldns_id: str) -> bool:
        return ldns_id in self._servers

    def get(self, ldns_id: str) -> LdnsServer:
        """Resolver by id.

        Raises:
            ConfigurationError: if unknown.
        """
        try:
            return self._servers[ldns_id]
        except KeyError:
            raise ConfigurationError(f"unknown LDNS {ldns_id!r}") from None

    def public_resolvers(self) -> Tuple[LdnsServer, ...]:
        """All public resolvers."""
        return tuple(self._servers[i] for i in self._public_ids)

    def isp_resolver_id(self, asn: int, metro_code: str) -> str:
        """The ISP resolver a client at (asn, metro) would be configured
        with.

        Raises:
            ConfigurationError: if the ISP has no resolver at that metro
                (i.e. the pair was never generated).
        """
        try:
            return self._isp_index[(asn, metro_code)]
        except KeyError:
            raise ConfigurationError(
                f"no ISP resolver for AS{asn} at {metro_code!r}"
            ) from None

    def assign(self, asn: int, metro_code: str, rng: random.Random) -> str:
        """Pick the resolver a new client uses.

        With probability ``public_usage_fraction`` the client uses a random
        public resolver; otherwise its ISP's resolver for its metro.
        """
        if rng.random() < self._config.public_usage_fraction:
            return rng.choice(self._public_ids)
        return self.isp_resolver_id(asn, metro_code)
