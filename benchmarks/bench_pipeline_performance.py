"""Performance benchmarks for the simulation substrate itself.

These are classic microbenchmarks (not figure reproductions): how fast the
BGP solver converges, how fast the data plane resolves, and how fast a
full campaign day runs — serial and sharded across worker processes.
They guard against performance regressions in the hot paths every figure
depends on.
"""

import multiprocessing
import time

from conftest import write_report

from repro.cdn.deployment import DeploymentConfig, attach_cdn
from repro.cdn.network import CdnNetwork
from repro.clients.population import ClientPopulationConfig
from repro.geo.metros import MetroDatabase
from repro.net.bgp import Announcement, RouteComputation
from repro.net.topology import AsRole, TopologyBuilder, populate_base_internet
from repro.simulation.campaign import CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig

#: Worker count for the parallel campaign cases.
PARALLEL_WORKERS = 4


def build_world(seed=11):
    builder = TopologyBuilder(MetroDatabase())
    populate_base_internet(builder, seed=seed)
    deployment = attach_cdn(builder, DeploymentConfig(), seed=seed)
    return builder.build(), deployment


def test_bgp_anycast_computation(benchmark):
    topology, deployment = build_world()
    computation = RouteComputation(topology)
    announcement = Announcement(
        prefix=deployment.anycast_prefix, origin_asn=deployment.asn
    )
    rib = benchmark(computation.compute, announcement)
    assert len(rib) == len(topology)


def test_cdn_network_construction(benchmark):
    """Builds the anycast RIB plus one unicast RIB per front-end."""
    topology, deployment = build_world()
    network = benchmark(CdnNetwork, topology, deployment)
    assert len(network.frontends) == len(deployment.frontends)


def test_data_plane_resolution(benchmark):
    topology, deployment = build_world()
    network = CdnNetwork(topology, deployment)
    pairs = [
        (a.asn, sorted(a.pop_metros)[0])
        for a in topology.ases_with_role(AsRole.ACCESS)
    ]

    def resolve_all():
        total_km = 0.0
        for asn, metro in pairs:
            total_km += network.anycast_path(asn, metro).total_km
        return total_km

    benchmark(resolve_all)


def test_single_campaign_day(benchmark):
    """End-to-end cost of one measured day at a small population."""
    config = ScenarioConfig(
        seed=3,
        population=ClientPopulationConfig(prefix_count=150),
        calendar=SimulationCalendar(num_days=1),
    )
    scenario = Scenario.build(config)

    def run_day():
        return CampaignRunner(scenario).run().measurement_count

    measurements = benchmark.pedantic(run_day, rounds=3, iterations=1)
    assert measurements > 0


def test_single_campaign_day_parallel(benchmark):
    """The same day sharded across worker processes.

    Each worker rebuilds the scenario, so the win over serial only shows
    at populations large enough to amortize startup — and needs as many
    free cores as workers.  The digest assertion is the real guarantee:
    the parallel path produces a bit-identical dataset.
    """
    config = ScenarioConfig(
        seed=3,
        population=ClientPopulationConfig(prefix_count=150),
        calendar=SimulationCalendar(num_days=1),
    )
    scenario = Scenario.build(config)
    serial_digest = CampaignRunner(scenario).run().digest()

    def run_day():
        return ParallelCampaignRunner(
            scenario, workers=PARALLEL_WORKERS
        ).run()

    dataset = benchmark.pedantic(run_day, rounds=3, iterations=1)
    assert dataset.measurement_count > 0
    assert dataset.digest() == serial_digest


def test_campaign_serial_vs_parallel_report():
    """Record serial vs sharded wall-clock for one campaign day.

    Writes the numbers (plus the host's core count, which bounds the
    achievable speedup) to ``benchmarks/out/pipeline_performance.txt``.
    Uses a larger population than the timed microbenchmarks so worker
    startup is better amortized.
    """
    config = ScenarioConfig(
        seed=3,
        population=ClientPopulationConfig(prefix_count=600),
        calendar=SimulationCalendar(num_days=1),
    )
    scenario = Scenario.build(config)

    start = time.perf_counter()
    serial_runner = CampaignRunner(scenario)
    serial = serial_runner.run()
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_runner = ParallelCampaignRunner(
        scenario, workers=PARALLEL_WORKERS
    )
    parallel = parallel_runner.run()
    parallel_seconds = time.perf_counter() - start

    assert parallel.digest() == serial.digest()
    lines = [
        "pipeline performance: one campaign day, 600 client /24s",
        f"host cores: {multiprocessing.cpu_count()}",
        (
            f"serial:   {serial_seconds:7.2f}s  "
            f"({serial_runner.stats.beacons_per_second:8,.0f} beacons/s)"
        ),
        (
            f"parallel: {parallel_seconds:7.2f}s  "
            f"({parallel_runner.stats.beacons_per_second:8,.0f} beacons/s, "
            f"workers={PARALLEL_WORKERS})"
        ),
        f"speedup:  {serial_seconds / parallel_seconds:7.2f}x",
        "datasets: identical (same StudyDataset.digest())",
    ]
    write_report("pipeline_performance", "\n".join(lines))
