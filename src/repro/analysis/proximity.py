"""Figs 1–2: how close are clients to front-ends, and is measuring the
ten nearest enough?

* **Fig 2** — CDF of the distance from clients (volume-weighted) to their
  Nth-closest front-end, N = 1..4.  Paper medians: ~280 km (1st), ~700 km
  (2nd), ~1300 km (4th).
* **Fig 1** — CDF over /24s of the *minimum observed latency* when only
  the nearest N front-ends to the client's LDNS are considered,
  N ∈ {1,3,5,7,9}; the diminishing-returns argument for measuring ten
  candidates (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.analysis.stats import CdfSeries, WeightedDistribution, linear_grid, log2_grid
from repro.cdn.frontend import FrontEnd, nearest_frontends
from repro.clients.population import ClientPrefix
from repro.dns.authoritative import ANYCAST_TARGET
from repro.geo.geolocation import GeolocationDatabase
from repro.simulation.dataset import StudyDataset


@dataclass(frozen=True)
class NthClosestDistances:
    """Fig 2 result: one distribution per N."""

    series: Tuple[CdfSeries, ...]
    medians_km: Tuple[float, ...]

    def format(self) -> str:
        """Paper-style summary plus CDF rows."""
        lines = [
            "Fig 2 — distance from volume-weighted clients to Nth-closest "
            "front-end"
        ]
        for n, median in enumerate(self.medians_km, start=1):
            lines.append(f"  median distance to {n}-closest: {median:7.0f} km")
        for series in self.series:
            lines.append(series.format_rows())
        return "\n".join(lines)


def nth_closest_distance_cdf(
    clients: Sequence[ClientPrefix],
    frontends: Sequence[FrontEnd],
    geolocation: Optional[GeolocationDatabase] = None,
    max_n: int = 4,
    weighted: bool = True,
) -> NthClosestDistances:
    """Compute Fig 2 from a population and a deployment.

    Distances use the client's *geolocated* position when a database is
    given (what the paper could measure), else true positions.
    """
    if max_n < 1:
        raise AnalysisError("max_n must be >= 1")
    if len(frontends) < max_n:
        raise AnalysisError(
            f"deployment has {len(frontends)} front-ends, need >= {max_n}"
        )
    per_n: List[List[float]] = [[] for _ in range(max_n)]
    weights: List[float] = []
    for client in clients:
        location = (
            geolocation.lookup(client.key) if geolocation else client.location
        )
        nearest = nearest_frontends(tuple(frontends), location, max_n)
        for index, frontend in enumerate(nearest):
            per_n[index].append(frontend.distance_km(location))
        weights.append(client.daily_queries if weighted else 1.0)

    grid = log2_grid(64.0, 8192.0)
    series: List[CdfSeries] = []
    medians: List[float] = []
    for index in range(max_n):
        dist = WeightedDistribution(per_n[index], weights)
        series.append(dist.cdf_series(f"{index + 1}-closest", grid))
        medians.append(dist.median())
    return NthClosestDistances(series=tuple(series), medians_km=tuple(medians))


@dataclass(frozen=True)
class DiminishingReturnsResult:
    """Fig 1 result: min-latency CDF per candidate-set size."""

    series: Tuple[CdfSeries, ...]
    medians_ms: Dict[int, float]

    def format(self) -> str:
        """Summary plus CDF rows."""
        lines = ["Fig 1 — min latency to nearest-N front-ends (per /24)"]
        for n in sorted(self.medians_ms):
            lines.append(
                f"  N={n}: median min-latency {self.medians_ms[n]:6.1f} ms"
            )
        for series in self.series:
            lines.append(series.format_rows())
        return "\n".join(lines)

    def gain_ms(self, n_small: int, n_large: int) -> float:
        """Median min-latency reduction from growing the candidate set."""
        return self.medians_ms[n_small] - self.medians_ms[n_large]


def diminishing_returns(
    dataset: StudyDataset,
    frontends: Sequence[FrontEnd],
    geolocation: GeolocationDatabase,
    candidate_sizes: Sequence[int] = (1, 3, 5, 7, 9),
) -> DiminishingReturnsResult:
    """Compute Fig 1 from a campaign dataset.

    For each /24, the minimum latency ever measured to each unicast
    front-end is collected; the N-line then takes the minimum over the N
    front-ends nearest the client's LDNS (those are the candidates §3.3
    would have considered).
    """
    if not candidate_sizes or min(candidate_sizes) < 1:
        raise AnalysisError("candidate sizes must be positive")
    max_n = max(candidate_sizes)

    # Per client: min observed latency per unicast front-end, pooled days.
    min_latency: Dict[str, Dict[str, float]] = {}
    aggregates = dataset.ecs_aggregates
    for day in aggregates.days:
        for group, target_id, digest in aggregates.iter_day(day):
            if target_id == ANYCAST_TARGET:
                continue
            per_fe = min_latency.setdefault(group, {})
            value = digest.minimum()
            if target_id not in per_fe or value < per_fe[target_id]:
                per_fe[target_id] = value

    per_size_values: Dict[int, List[float]] = {n: [] for n in candidate_sizes}
    frontends_tuple = tuple(frontends)
    candidate_cache: Dict[str, Tuple[str, ...]] = {}
    for client in dataset.clients:
        measured = min_latency.get(client.key)
        if not measured:
            continue
        ordered = candidate_cache.get(client.ldns_id)
        if ordered is None:
            location = geolocation.lookup(client.ldns_id)
            ordered = tuple(
                fe.frontend_id
                for fe in nearest_frontends(frontends_tuple, location, max_n)
            )
            candidate_cache[client.ldns_id] = ordered
        for n in candidate_sizes:
            candidates = ordered[:n]
            values = [
                measured[fe_id] for fe_id in candidates if fe_id in measured
            ]
            if values:
                per_size_values[n].append(min(values))

    grid = linear_grid(0.0, 200.0, 10.0)
    series: List[CdfSeries] = []
    medians: Dict[int, float] = {}
    for n in candidate_sizes:
        if not per_size_values[n]:
            raise AnalysisError(
                f"no /24 had measurements within its nearest-{n} candidates"
            )
        dist = WeightedDistribution(per_size_values[n])
        series.append(dist.cdf_series(f"{n} front-ends", grid))
        medians[n] = dist.median()
    return DiminishingReturnsResult(series=tuple(series), medians_ms=medians)
