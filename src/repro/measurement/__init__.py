"""Measurement substrate: beacon, logs, aggregation, backend join.

Also home to the hardened data plane: schema-validated ingestion with a
quarantine side channel (:mod:`repro.measurement.validate`) and
crash-safe framed storage (:mod:`repro.measurement.storage`).
"""

from repro.measurement.aggregate import (
    GroupedDailyAggregates,
    LatencyDigest,
    RequestDiffLog,
    RequestDiffRow,
)
from repro.measurement.backend import BeaconBackend, join_raw_log
from repro.measurement.beacon import (
    BeaconConfig,
    BeaconFetch,
    BeaconRunner,
    BeaconTargetSelector,
)
from repro.measurement.probes import Probe, ProbeNetwork
from repro.measurement.sketch import (
    DEFAULT_MAX_BUCKETS,
    DEFAULT_MIN_TRACKABLE_MS,
    DEFAULT_RELATIVE_ACCURACY,
    MIN_MAX_BUCKETS,
    SKETCH_SCHEMA_VERSION,
    LatencySketch,
    mantissa_bits_for,
)
from repro.measurement.logs import (
    HttpLogEntry,
    JoinedMeasurement,
    PassiveLog,
    RawMeasurementLog,
    ServerLogEntry,
)
from repro.measurement.storage import (
    RecoveryReport,
    read_segment_file,
    write_segment_file,
)
from repro.measurement.validate import (
    MAX_PLAUSIBLE_RTT_MS,
    RECORD_SCHEMA_VERSION,
    QuarantinedRecord,
    QuarantineLog,
    ValidationGate,
    ValidationPolicy,
    classify_rtt,
    validate_dataset,
)

__all__ = [
    "BeaconBackend",
    "BeaconConfig",
    "BeaconFetch",
    "BeaconRunner",
    "BeaconTargetSelector",
    "DEFAULT_MAX_BUCKETS",
    "DEFAULT_MIN_TRACKABLE_MS",
    "DEFAULT_RELATIVE_ACCURACY",
    "MIN_MAX_BUCKETS",
    "GroupedDailyAggregates",
    "LatencySketch",
    "SKETCH_SCHEMA_VERSION",
    "HttpLogEntry",
    "JoinedMeasurement",
    "LatencyDigest",
    "MAX_PLAUSIBLE_RTT_MS",
    "PassiveLog",
    "Probe",
    "ProbeNetwork",
    "QuarantineLog",
    "QuarantinedRecord",
    "RECORD_SCHEMA_VERSION",
    "RawMeasurementLog",
    "RecoveryReport",
    "RequestDiffLog",
    "RequestDiffRow",
    "ServerLogEntry",
    "ValidationGate",
    "ValidationPolicy",
    "classify_rtt",
    "join_raw_log",
    "mantissa_bits_for",
    "read_segment_file",
    "validate_dataset",
    "write_segment_file",
]
