#!/usr/bin/env python
"""Perf-history regression gate over a ``BENCH_history.json`` ledger.

Reads the append-only performance ledger written by ``repro run
--history-out`` / ``tools/perf_smoke.py`` and compares the newest record
in each comparison group (label, engine, host, config hash) against the
median of the preceding records.  With ``--check`` the exit status is
nonzero when any group regresses beyond the threshold; groups with
fewer than two comparable records always pass, so the gate is
non-blocking until a baseline exists.

Usage::

    python tools/bench_history.py benchmarks/out/BENCH_history.json
    python tools/bench_history.py BENCH_history.json --check
    python tools/bench_history.py BENCH_history.json --check \
        --threshold 0.3 --window 8
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.telemetry.history import (  # noqa: E402
    DEFAULT_BASELINE_WINDOW,
    DEFAULT_THRESHOLD,
    BenchHistory,
    check_history,
    format_history_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "ledger",
        help="path to a BENCH_history.json performance ledger",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when a comparison group regresses",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative regression tolerance (default %(default)s)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_BASELINE_WINDOW,
        help="baseline window size in records (default %(default)s)",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(args.ledger):
        print(f"bench-history: no ledger at {args.ledger}; nothing to gate")
        return 0
    try:
        history = BenchHistory.load(args.ledger)
    except ValueError as error:
        print(f"bench-history: unreadable ledger: {error}", file=sys.stderr)
        return 2

    results = check_history(
        history, threshold=args.threshold, window=args.window
    )
    print(format_history_report(results))
    if args.check and any(not result.ok for result in results):
        print("bench-history: FAIL", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
