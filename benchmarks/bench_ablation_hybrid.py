"""Ablation — hybrid anycast+DNS vs always-predict (§6's closing idea).

The hybrid scheme redirects only groups whose predicted gain clears a
threshold, leaving everyone else on anycast.  Compared with redirecting
every predicted group, it should keep most of the improvement while
shrinking both the DNS control plane and the worse-off population.
"""

import pytest

from conftest import write_report

from repro.core.hybrid import HybridConfig, HybridRedirector
from repro.core.predictor import HistoryBasedPredictor

THRESHOLDS = (0.0, 5.0, 10.0, 25.0)


@pytest.fixture(scope="module")
def sweep(paper_study):
    aggregates = paper_study.dataset.ecs_aggregates
    predictor = HistoryBasedPredictor()
    full_mapping = predictor.mapping_for_day(aggregates, day=0)
    rows = [("always-predict", len(full_mapping), None)]
    for threshold in THRESHOLDS:
        hybrid = HybridRedirector(
            HybridConfig(min_predicted_gain_ms=threshold)
        )
        selected = hybrid.select_redirections(aggregates, day=0)
        gains = [p.predicted_gain_ms for p in selected.values()]
        rows.append(
            (
                f"hybrid>= {threshold:4.1f}ms",
                len(selected),
                sum(gains) / len(gains) if gains else 0.0,
            )
        )
    return rows, len(full_mapping)


def test_ablation_hybrid(benchmark, paper_study, sweep):
    rows, full_size = sweep
    hybrid = HybridRedirector()
    benchmark(
        hybrid.select_redirections, paper_study.dataset.ecs_aggregates, 0
    )

    lines = ["Ablation — hybrid redirection threshold (day 0, ECS groups)"]
    for name, size, mean_gain in rows:
        gain_text = f"  mean predicted gain {mean_gain:6.1f} ms" if mean_gain else ""
        lines.append(f"  {name:>18s} redirects {size:5d} groups{gain_text}")
    write_report("ablation_hybrid", "\n".join(lines))

    sizes = {name: size for name, size, _ in rows}
    # Higher thresholds redirect fewer groups.
    assert sizes["hybrid>=  0.0ms"] >= sizes["hybrid>=  5.0ms"]
    assert sizes["hybrid>=  5.0ms"] >= sizes["hybrid>= 10.0ms"]
    assert sizes["hybrid>= 10.0ms"] >= sizes["hybrid>= 25.0ms"]
    # The hybrid control plane is a strict subset of always-predict.
    assert sizes["hybrid>= 10.0ms"] <= full_size
