"""The deployed CDN bound to a frozen topology: §3.1's routing configuration.

:class:`CdnNetwork` owns the control plane (one anycast RIB announced from
every CDN PoP; one unicast RIB per front-end announced only at that
front-end's peering metro) and answers the two data-plane questions the
measurement layer asks:

* *anycast*: which front-end serves this client, and over what path?
* *unicast to front-end F*: what path does traffic to F's unicast /24 take?

Both answers come back as a :class:`ServedPath` carrying the geographic
path length and hop count the latency model converts to an RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ConfigurationError, RoutingError
from repro.cdn.backbone import CdnBackbone
from repro.cdn.deployment import CdnDeployment
from repro.cdn.frontend import FrontEnd, nearest_frontends
from repro.geo.coords import GeoPoint, haversine_km
from repro.net.anycast import AnycastResolver, AnycastRoute
from repro.net.bgp import Announcement, BgpRib, RouteComputation
from repro.net.topology import Topology


@dataclass(frozen=True)
class ServedPath:
    """A resolved client→front-end service path.

    Attributes:
        frontend: The front-end that serves the request.
        route: The inter-domain data-plane walk (client AS → CDN ingress).
        ingress_metro: Peering metro where traffic entered the CDN.
        path_km: Geographic length of the inter-domain walk, starting at
            the client's actual location (not just its metro center).
        backbone_km: Intradomain distance from ingress to the front-end
            (zero when the ingress metro hosts a front-end).
        as_hops: Number of AS-level hops traversed (client AS included).
    """

    frontend: FrontEnd
    route: AnycastRoute
    ingress_metro: str
    path_km: float
    backbone_km: float
    as_hops: int

    @property
    def total_km(self) -> float:
        """Interdomain plus backbone distance."""
        return self.path_km + self.backbone_km


@dataclass(frozen=True)
class _RouteSummary:
    """A resolved route with its client-independent geometry precomputed.

    ``tail_km`` is the summed distance of every inter-metro leg of the
    route walk; a caller only adds its own (client → first metro) leg.
    """

    frontend: FrontEnd
    route: AnycastRoute
    hop0_location: Optional[GeoPoint]
    tail_km: float
    backbone_km: float


class CdnNetwork:
    """Control and data plane of the deployed CDN over one topology.

    Construction computes the anycast RIB and one unicast RIB per
    front-end (the §3.1 unicast configuration: "only the routers at the
    closest peering point to that front-end announce the prefix").
    """

    def __init__(
        self,
        topology: Topology,
        deployment: CdnDeployment,
        withdrawn_frontends: FrozenSet[str] = frozenset(),
    ) -> None:
        """Bind the CDN to a topology.

        Args:
            withdrawn_frontends: Front-ends taken offline — their metros
                stop announcing the anycast prefix, their unicast prefixes
                disappear, and the backbone routes around them.  §2 warns
                that exactly this operation "can lead to cascading
                overloading of nearby front-ends"; see
                :mod:`repro.cdn.failover`.
        """
        if deployment.asn not in topology:
            raise ConfigurationError(
                f"deployment AS{deployment.asn} is not in the topology; "
                "attach_cdn() must run before the builder freezes"
            )
        all_ids = {fe.frontend_id for fe in deployment.frontends}
        unknown = withdrawn_frontends - all_ids
        if unknown:
            raise ConfigurationError(
                f"cannot withdraw unknown front-ends {sorted(unknown)}"
            )
        live_ids = frozenset(all_ids - withdrawn_frontends)
        if not live_ids:
            raise ConfigurationError("cannot withdraw every front-end")
        self._topology = topology
        self._deployment = deployment
        self._withdrawn = frozenset(withdrawn_frontends)
        self._backbone = CdnBackbone(
            deployment, topology.metro_db, live_frontends=live_ids
        )

        withdrawn_metros = frozenset(
            fe.metro_code
            for fe in deployment.frontends
            if fe.frontend_id in withdrawn_frontends
        )
        anycast_metros = deployment.pop_metros - withdrawn_metros

        computation = RouteComputation(topology)
        anycast_announcement = Announcement(
            prefix=deployment.anycast_prefix,
            origin_asn=deployment.asn,
            origin_metros=anycast_metros,
        )
        self._anycast_rib = computation.compute(anycast_announcement)
        self._anycast_resolver = AnycastResolver(topology, self._anycast_rib)

        self._unicast_ribs: Dict[str, BgpRib] = {}
        self._unicast_resolvers: Dict[str, AnycastResolver] = {}
        for fe in deployment.frontends:
            if fe.frontend_id in withdrawn_frontends:
                continue
            announcement = Announcement(
                prefix=fe.unicast_prefix,
                origin_asn=deployment.asn,
                origin_metros=frozenset({fe.metro_code}),
            )
            rib = computation.compute(announcement)
            self._unicast_ribs[fe.frontend_id] = rib
            self._unicast_resolvers[fe.frontend_id] = AnycastResolver(topology, rib)

        # Route-summary caches: resolution + the inter-metro distance
        # walk depend only on (AS, metro[, rank]) — never on the client's
        # exact coordinates — so they are shared across clients.
        self._anycast_summaries: Dict[
            Tuple[int, str, int], _RouteSummary
        ] = {}
        self._unicast_summaries: Dict[
            Tuple[str, int, str], _RouteSummary
        ] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The frozen topology the CDN is attached to."""
        return self._topology

    @property
    def deployment(self) -> CdnDeployment:
        """The CDN deployment (front-ends, addressing)."""
        return self._deployment

    @property
    def backbone(self) -> CdnBackbone:
        """The ingress→front-end backbone table."""
        return self._backbone

    @property
    def anycast_rib(self) -> BgpRib:
        """Best anycast routes per AS."""
        return self._anycast_rib

    def unicast_rib(self, frontend_id: str) -> BgpRib:
        """Best routes per AS toward one front-end's unicast prefix."""
        try:
            return self._unicast_ribs[frontend_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown front-end {frontend_id!r}"
            ) from None

    @property
    def frontends(self) -> Tuple[FrontEnd, ...]:
        """The *live* front-ends (deployment minus withdrawals)."""
        return tuple(
            fe
            for fe in self._deployment.frontends
            if fe.frontend_id not in self._withdrawn
        )

    @property
    def withdrawn_frontends(self) -> FrozenSet[str]:
        """Front-ends currently taken offline."""
        return self._withdrawn

    def nearest_frontends(self, point: GeoPoint, count: int) -> Tuple[FrontEnd, ...]:
        """The ``count`` live front-ends nearest a point, closest first."""
        return nearest_frontends(self.frontends, point, count)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def _route_summary(
        self,
        route: AnycastRoute,
        frontend: FrontEnd,
        backbone_km: float,
    ) -> "_RouteSummary":
        metro_db = self._topology.metro_db
        hop0_location: Optional[GeoPoint] = None
        tail_km = 0.0
        previous: Optional[GeoPoint] = None
        for _, metro_code in route.hops:
            location = metro_db.get(metro_code).location
            if previous is None:
                hop0_location = location
            else:
                tail_km += haversine_km(previous, location)
            previous = location
        return _RouteSummary(
            frontend=frontend,
            route=route,
            hop0_location=hop0_location,
            tail_km=tail_km,
            backbone_km=backbone_km,
        )

    def _served_path(
        self, summary: "_RouteSummary", client_location: Optional[GeoPoint]
    ) -> ServedPath:
        # The per-route walk (every inter-metro leg) is frozen in the
        # summary; only the client's first leg varies per caller.
        path_km = summary.tail_km
        if client_location is not None and summary.hop0_location is not None:
            path_km += haversine_km(client_location, summary.hop0_location)
        route = summary.route
        return ServedPath(
            frontend=summary.frontend,
            route=route,
            ingress_metro=route.ingress_metro,
            path_km=path_km,
            backbone_km=summary.backbone_km,
            as_hops=len(route.hops),
        )

    def anycast_path(
        self,
        client_asn: int,
        client_metro: str,
        client_location: Optional[GeoPoint] = None,
        egress_rank: int = 0,
    ) -> ServedPath:
        """Resolve the anycast service path for a client.

        Route resolution and the inter-metro distance walk are cached per
        (AS, metro, rank); only the client's own first leg is recomputed
        per call, so many clients sharing an AS PoP resolve cheaply.

        Args:
            client_asn: The client's access AS.
            client_metro: The AS PoP metro the client attaches at.
            client_location: The client's actual coordinates; when given,
                the first leg (client → first metro) is included in
                ``path_km``.
            egress_rank: Alternate first-hop egress rank (route churn).

        Raises:
            RoutingError: if the client's AS has no anycast route.
        """
        key = (client_asn, client_metro, egress_rank)
        summary = self._anycast_summaries.get(key)
        if summary is None:
            route = self._anycast_resolver.resolve(
                client_asn, client_metro, egress_rank
            )
            backbone_route = self._backbone.route(route.ingress_metro)
            summary = self._route_summary(
                route, backbone_route.frontend, backbone_route.backbone_km
            )
            self._anycast_summaries[key] = summary
        return self._served_path(summary, client_location)

    def unicast_path(
        self,
        frontend_id: str,
        client_asn: int,
        client_metro: str,
        client_location: Optional[GeoPoint] = None,
    ) -> ServedPath:
        """Resolve the path to one front-end's unicast prefix.

        The unicast prefix is announced only at the front-end's own metro,
        so the ingress always equals that metro and there is no backbone
        leg — the head-to-head configuration of §3.1.  Resolution is
        cached per (front-end, AS, metro) like :meth:`anycast_path`.

        Raises:
            RoutingError: if the client's AS has no route to the prefix.
        """
        key = (frontend_id, client_asn, client_metro)
        summary = self._unicast_summaries.get(key)
        if summary is None:
            frontend = self._deployment.frontend_by_id(frontend_id)
            resolver = self._unicast_resolvers[frontend_id]
            route = resolver.resolve(client_asn, client_metro)
            if route.ingress_metro != frontend.metro_code:
                raise RoutingError(
                    f"unicast ingress for {frontend_id} resolved to "
                    f"{route.ingress_metro!r}, expected {frontend.metro_code!r}"
                )
            summary = self._route_summary(route, frontend, 0.0)
            self._unicast_summaries[key] = summary
        return self._served_path(summary, client_location)

    def anycast_variant_ranks(
        self, client_asn: int, client_metro: str, max_rank: int = 4
    ) -> Tuple[int, ...]:
        """First-hop egress ranks that yield *distinct serving front-ends*.

        Rank 0 (the steady state) is always first; subsequent ranks are
        kept only when they change the front-end the backbone serves the
        client from — a different ingress carried to the same front-end is
        not an observable route change.  The churn model flips unstable
        clients between these ranks.
        """
        count = self._anycast_resolver.variant_count(client_asn, client_metro)
        ranks: List[int] = []
        seen: List[str] = []
        for rank in range(min(count, max_rank + 1)):
            ingress = self._anycast_resolver.ingress_metro(
                client_asn, client_metro, rank
            )
            frontend_id = self._backbone.frontend_for_ingress(ingress).frontend_id
            if frontend_id not in seen:
                seen.append(frontend_id)
                ranks.append(rank)
        return tuple(ranks)

    def anycast_variant_ingresses(
        self, client_asn: int, client_metro: str, max_rank: int = 4
    ) -> Tuple[str, ...]:
        """Distinct anycast ingress metros reachable via egress ranks.

        Companion of :meth:`anycast_variant_ranks`, ordered the same way.
        """
        ranks = self.anycast_variant_ranks(client_asn, client_metro, max_rank)
        return tuple(
            self._anycast_resolver.ingress_metro(client_asn, client_metro, rank)
            for rank in ranks
        )

    def has_anycast_route(self, client_asn: int) -> bool:
        """Whether an AS can reach the anycast prefix at all."""
        return self._anycast_rib.has_route(client_asn)
