"""Structured logging with a shared run context.

The library logs through the standard :mod:`logging` tree under the
``"repro"`` root logger — quiet by default (no handler is installed at
import time, so the library never prints on its own).  The CLI's
``--log-level`` / ``--log-format`` flags call :func:`configure_logging`,
which installs one stream handler emitting either:

* ``json`` — one JSON object per line: timestamp, level, logger,
  message, the bound :class:`RunContext` fields (seed, engine, workers,
  config hash), and any ``extra=`` fields the call site attached; or
* ``text`` — a human-oriented ``level logger: message key=value ...``
  line with the same fields.

The run context rides on a logging filter rather than on every call
site, so a line logged deep inside the campaign still says which run it
belongs to — the property that makes per-shard JSON logs mergeable by
simple concatenation.
"""

from __future__ import annotations

import io
import json
import logging
import sys
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.errors import TelemetryError

#: Root logger name for the whole library.
ROOT_LOGGER = "repro"

#: Attributes present on every LogRecord; anything else is call-site extra.
_STANDARD_RECORD_FIELDS = frozenset(
    logging.LogRecord(
        "x", logging.INFO, "x", 0, "", (), None
    ).__dict__
) | {"message", "asctime", "taskName", "run_context"}

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


@dataclass(frozen=True)
class RunContext:
    """Identity of one run, attached to every structured log line."""

    seed: int = 0
    engine: str = "reference"
    workers: int = 1
    config_hash: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """The context as plain fields (for log lines and snapshots)."""
        return asdict(self)


class _ContextFilter(logging.Filter):
    """Binds the run context onto every record passing through."""

    def __init__(self, context: RunContext) -> None:
        super().__init__()
        self.context = context

    def filter(self, record: logging.LogRecord) -> bool:
        record.run_context = self.context.as_dict()
        return True


def _extra_fields(record: logging.LogRecord) -> Dict[str, Any]:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _STANDARD_RECORD_FIELDS and not key.startswith("_")
    }


class JsonLineFormatter(logging.Formatter):
    """One JSON object per log line (JSON-lines stream)."""

    def format(self, record: logging.LogRecord) -> str:
        """Render a record as one sorted-key JSON object."""
        document: Dict[str, Any] = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S%z"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        document.update(getattr(record, "run_context", {}))
        for key, value in _extra_fields(record).items():
            try:
                json.dumps(value)
            except TypeError:
                value = repr(value)
            document[key] = value
        if record.exc_info:
            document["exc"] = self.formatException(record.exc_info)
        return json.dumps(document, sort_keys=True)


class TextLineFormatter(logging.Formatter):
    """Human-oriented ``level logger: message key=value`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        """Render a record as a single aligned text line."""
        parts = [
            f"{record.levelname.lower():7s}",
            f"{record.name}:",
            record.getMessage(),
        ]
        for key, value in sorted(_extra_fields(record).items()):
            parts.append(f"{key}={value}")
        line = " ".join(parts)
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def get_logger(name: str) -> logging.Logger:
    """A logger under the library's ``repro`` root."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(
    level: str = "warning",
    fmt: str = "text",
    context: Optional[RunContext] = None,
    stream: Optional[io.TextIOBase] = None,
) -> logging.Logger:
    """Install one handler on the ``repro`` root logger.

    Replaces any handler a previous call installed (re-configuring must
    not stack duplicate handlers), binds ``context`` to every record,
    and stops propagation so application-level logging config does not
    double-print library lines.

    Args:
        level: ``debug`` | ``info`` | ``warning`` | ``error``.
        fmt: ``json`` (JSON-lines) or ``text``.
        context: Run identity stamped onto every line.
        stream: Destination; defaults to ``sys.stderr`` so structured
            logs never mix with report output on stdout.

    Returns:
        The configured ``repro`` root logger.

    Raises:
        TelemetryError: for an unknown level or format name.
    """
    if level not in _LEVELS:
        raise TelemetryError(
            f"unknown log level {level!r}; expected one of "
            f"{sorted(_LEVELS)}"
        )
    if fmt not in ("json", "text"):
        raise TelemetryError(
            f"unknown log format {fmt!r}; expected 'json' or 'text'"
        )
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        JsonLineFormatter() if fmt == "json" else TextLineFormatter()
    )
    # The context filter rides on the handler, not the logger: logger
    # filters do not apply to records propagated up from child loggers,
    # handler filters apply to everything the handler emits.
    handler.addFilter(_ContextFilter(context or RunContext()))
    root.addHandler(handler)
    root.setLevel(_LEVELS[level])
    root.propagate = False
    return root
