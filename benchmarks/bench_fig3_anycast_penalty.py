"""Fig 3 — CCDF of (anycast − best measured unicast) latency per request,
split World / United States / Europe.

Paper headline: anycast is at least 25 ms slower for ~20% of requests and
100 ms or more slower for just under 10%.
"""

from conftest import write_figure


def test_fig3_anycast_penalty(benchmark, paper_study):
    result = benchmark(paper_study.fig3_anycast_penalty)
    write_figure(
        "fig3_anycast_penalty", result.format(), result.series,
        title="Fig 3 - CCDF of anycast minus best unicast (per request)",
        x_label="difference (ms)",
    )

    world = result.fraction_slower["world"]
    # ~20% of requests >= 25 ms slower (generous band around the paper's).
    assert 0.10 <= world[25.0] <= 0.33
    # Just under 10% are >= 100 ms slower.
    assert 0.03 <= world[100.0] <= 0.15
    # Most requests see little penalty.
    assert world[1.0] < 0.65
    # Europe's dense deployment does at least as well as the world at the
    # 25 ms threshold.
    europe = result.fraction_slower["europe"]
    assert europe[25.0] <= world[25.0] + 0.02
