"""Tests for the ASCII figure renderer."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.plotting import ascii_chart
from repro.analysis.stats import CdfSeries


def series(label="cdf", xs=(0.0, 10.0, 20.0), ys=(0.0, 0.5, 1.0)):
    return CdfSeries(label=label, xs=xs, ys=ys)


def test_basic_render():
    text = ascii_chart([series()], title="demo", x_label="ms")
    assert "demo" in text
    assert "legend" in text
    assert "*=cdf" in text
    assert "ms" in text
    # Plot rows plus axis plus legend.
    assert text.count("\n") >= 10


def test_multiple_series_distinct_markers():
    text = ascii_chart([series("a"), series("b", ys=(0.0, 0.2, 0.4))])
    assert "*=a" in text
    assert "o=b" in text


def test_log_x():
    text = ascii_chart(
        [series(xs=(64.0, 512.0, 8192.0))], log_x=True, x_label="km"
    )
    assert "(log)" in text


def test_log_x_requires_positive():
    with pytest.raises(AnalysisError):
        ascii_chart([series(xs=(0.0, 1.0, 2.0))], log_x=True)


def test_validation():
    with pytest.raises(AnalysisError):
        ascii_chart([])
    with pytest.raises(AnalysisError):
        ascii_chart([series()], width=4)
    with pytest.raises(AnalysisError):
        ascii_chart([series(label=str(i)) for i in range(9)])


def test_flat_series_renders():
    text = ascii_chart([series(xs=(5.0, 5.0, 5.0))])
    assert "legend" in text


def test_y_values_clamped():
    text = ascii_chart([series(ys=(-0.5, 0.5, 1.5))])
    assert "legend" in text


def test_monotone_cdf_marks_top_right():
    text = ascii_chart([series()], width=20, height=8)
    rows = [line for line in text.splitlines() if "|" in line]
    # The last x lands at y=1.0: the top plot row carries a marker at the
    # right edge.
    assert "*" in rows[0]
