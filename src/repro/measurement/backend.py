"""Backend storage: joining the DNS, server, and client-side streams.

§3.2.2: "Each test URL has a globally unique identifier, allowing us to
join HTTP results from the client side with DNS results from the server
side."  :class:`BeaconBackend` performs that join incrementally — a row is
emitted the moment all three pieces for a measurement id have arrived —
so campaigns never hold raw logs in memory, while :func:`join_raw_log`
provides the batch equivalent over a :class:`RawMeasurementLog` for tests
and small studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import MeasurementError
from repro.measurement.logs import (
    HttpLogEntry,
    JoinedMeasurement,
    RawMeasurementLog,
    ServerLogEntry,
)

#: Callback type receiving each joined measurement.
JoinedObserver = Callable[[JoinedMeasurement], None]


@dataclass
class _Partial:
    """Accumulates a measurement's pieces until the join completes."""

    ldns_id: Optional[str] = None
    target_id: Optional[str] = None
    serving_frontend_id: Optional[str] = None
    http: Optional[HttpLogEntry] = None

    def complete(self) -> bool:
        return (
            self.ldns_id is not None
            and self.serving_frontend_id is not None
            and self.http is not None
        )


class BeaconBackend:
    """Incremental three-way join keyed by measurement id."""

    def __init__(self, observers: Sequence[JoinedObserver] = ()) -> None:
        self._observers: List[JoinedObserver] = list(observers)
        self._partials: Dict[str, _Partial] = {}
        self._joined_count = 0

    def add_observer(self, observer: JoinedObserver) -> None:
        """Register another consumer of joined rows."""
        self._observers.append(observer)

    @property
    def joined_count(self) -> int:
        """Rows emitted so far."""
        return self._joined_count

    @property
    def pending_count(self) -> int:
        """Measurement ids still missing at least one stream."""
        return len(self._partials)

    def _partial(self, measurement_id: str) -> _Partial:
        partial = self._partials.get(measurement_id)
        if partial is None:
            partial = _Partial()
            self._partials[measurement_id] = partial
        return partial

    def on_dns(self, measurement_id: str, ldns_id: str, target_id: str) -> None:
        """Ingest a DNS query-log row."""
        partial = self._partial(measurement_id)
        partial.ldns_id = ldns_id
        partial.target_id = target_id
        self._maybe_emit(measurement_id, partial)

    def on_server(self, measurement_id: str, serving_frontend_id: str) -> None:
        """Ingest a server access-log row."""
        partial = self._partial(measurement_id)
        partial.serving_frontend_id = serving_frontend_id
        self._maybe_emit(measurement_id, partial)

    def on_http(self, entry: HttpLogEntry) -> None:
        """Ingest a client-side beacon report."""
        partial = self._partial(entry.measurement_id)
        partial.http = entry
        self._maybe_emit(entry.measurement_id, partial)

    def merge(self, other: "BeaconBackend") -> "BeaconBackend":
        """Fold another backend's join state into this one (in place).

        Joined-row counts add up; still-pending partials carry over so a
        merged backend reports the combined outstanding joins.  Observers
        are *not* merged — rows already emitted on ``other`` stay emitted
        there.

        Raises:
            MeasurementError: if both backends hold a partial for the
                same measurement id (shards must use disjoint id spaces
                if their partials are ever merged).
        """
        overlap = self._partials.keys() & other._partials.keys()
        if overlap:
            raise MeasurementError(
                f"cannot merge backends with overlapping pending "
                f"measurements (e.g. {sorted(overlap)[0]!r})"
            )
        self._partials.update(other._partials)
        self._joined_count += other._joined_count
        return self

    def _maybe_emit(self, measurement_id: str, partial: _Partial) -> None:
        if not partial.complete():
            return
        http = partial.http
        assert http is not None and partial.ldns_id is not None
        assert partial.target_id is not None
        assert partial.serving_frontend_id is not None
        joined = JoinedMeasurement(
            day=http.day,
            client_key=http.client_key,
            ldns_id=partial.ldns_id,
            target_id=partial.target_id,
            frontend_id=partial.serving_frontend_id,
            rtt_ms=http.rtt_ms,
        )
        del self._partials[measurement_id]
        self._joined_count += 1
        for observer in self._observers:
            observer(joined)


def join_raw_log(log: RawMeasurementLog) -> Tuple[JoinedMeasurement, ...]:
    """Batch join of a raw log's three streams.

    Raises:
        MeasurementError: if any HTTP row lacks its DNS or server
            counterpart — a campaign bug, not an expected condition.
    """
    server_by_id: Dict[str, ServerLogEntry] = {
        entry.measurement_id: entry for entry in log.server_entries
    }
    joined: List[JoinedMeasurement] = []
    for http in log.http_entries:
        ldns_id, target_id = log.dns_record(http.measurement_id)
        server = server_by_id.get(http.measurement_id)
        if server is None:
            raise MeasurementError(
                f"measurement {http.measurement_id!r} has no server log row"
            )
        joined.append(
            JoinedMeasurement(
                day=http.day,
                client_key=http.client_key,
                ldns_id=ldns_id,
                target_id=target_id,
                frontend_id=server.serving_frontend_id,
                rtt_ms=http.rtt_ms,
            )
        )
    return tuple(joined)
