#!/usr/bin/env python3
"""Deploying §6's history-based prediction as a DNS redirection policy.

Runs a short campaign, trains the predictor on the penultimate day, builds
a deployable :class:`StaticMappingPolicy`, and serves DNS queries through
an authoritative server — showing, per redirected client, the prediction
and the realized next-day improvement.

Run:
    python examples/prediction_redirection.py
"""

from repro import AnycastStudy, ScenarioConfig
from repro.clients.population import ClientPopulationConfig
from repro.core.predictor import HistoryBasedPredictor
from repro.dns.authoritative import ANYCAST_TARGET, AuthoritativeServer, DnsQuery
from repro.dns.ecs import EcsOption
from repro.simulation.clock import SimulationCalendar


def main() -> None:
    config = ScenarioConfig(
        seed=2015,
        population=ClientPopulationConfig(prefix_count=400),
        calendar=SimulationCalendar(num_days=6),
    )
    study = AnycastStudy(config)
    dataset = study.dataset
    train_day = dataset.calendar.num_days - 2
    eval_day = train_day + 1

    predictor = HistoryBasedPredictor()
    predictions = predictor.predict_day(dataset.ecs_aggregates, train_day)
    redirected = {
        group: p for group, p in predictions.items()
        if p.target_id != ANYCAST_TARGET
    }
    print(
        f"Trained on day {train_day}: {len(predictions)} groups measurable, "
        f"{len(redirected)} mapped away from anycast.\n"
    )

    # Deploy the mapping behind the authoritative DNS.
    policy = predictor.build_policy(
        ecs_aggregates=dataset.ecs_aggregates, day=train_day
    )
    server = AuthoritativeServer(policy)

    print(f"{'client /24':18s} {'DNS answer':10s} {'predicted':>10s} {'realized':>10s}")
    shown = 0
    for group, prediction in sorted(
        redirected.items(), key=lambda kv: -kv[1].predicted_gain_ms
    ):
        client = dataset.client_by_key(group)
        ecs = EcsOption.for_address(client.prefix.address_at(1))
        answer = server.resolve(DnsQuery("www.search.example", client.ldns_id, ecs))

        anycast = dataset.ecs_aggregates.digest(eval_day, group, ANYCAST_TARGET)
        target = dataset.ecs_aggregates.digest(
            eval_day, group, prediction.target_id
        )
        if anycast is None or target is None or anycast.count < 5 or target.count < 5:
            continue
        realized = anycast.median() - target.median()
        print(
            f"{group:18s} {answer.target_id:10s} "
            f"{prediction.predicted_gain_ms:9.1f}ms {realized:9.1f}ms"
        )
        shown += 1
        if shown >= 12:
            break

    log = server.query_log()
    print(
        f"\nAuthoritative query log captured {len(log)} queries "
        f"(first: {log[0].hostname} from {log[0].ldns_id} -> {log[0].target_id})."
    )


if __name__ == "__main__":
    main()
