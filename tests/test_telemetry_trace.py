"""Trace-event algebra, clock alignment, and Perfetto round-trips.

The trace subsystem's contracts, in test order:

* **Merge algebra.**  Merging shard logs in any order yields the same
  canonical event sequence (hypothesis drives random shard shuffles),
  and the shard-invariant digest of a sharded run equals the serial
  run's.
* **Clock alignment.**  Rebasing a log created ``delta`` seconds after
  the coordinator shifts every event by ``round(delta * 1e6)`` µs, and
  coordinator-time ordering of cross-shard events survives the merge.
* **Perfetto export.**  ``to_perfetto_obj`` emits loadable Chrome
  trace-event JSON (metadata lanes, ``ph: "X"``/``"i"``) and
  ``from_perfetto_obj`` inverts it, digest included.
* **Campaign integration.**  A serial and a 4-shard run of the same
  scenario produce identical trace digests; a fault-injected run's
  timeline shows the fault, the retry, and the successful re-attempt.
"""

import functools
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clients.population import ClientPopulationConfig
from repro.errors import TelemetryError
from repro.faults import FaultPlan
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.telemetry import Telemetry
from repro.telemetry.trace import (
    MAIN_LANE,
    TraceEvent,
    TraceLog,
    format_trace_report,
    merge_trace_logs,
)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_shard_log(shard: int, origin: float = 100.0) -> TraceLog:
    """A small shard log with ops timing and data totals."""
    log = TraceLog(origin=origin + shard * 0.25, lane=shard)
    for day in range(2):
        log.complete(
            "campaign/day", "phase", ts_us=1000 * day, dur_us=900
        )
        log.data("engine.day", "engine", index=day, beacons=10 + shard)
    log.instant("shard.dispatch", "scheduler")
    return log


# ----------------------------------------------------------------------
# Merge algebra
# ----------------------------------------------------------------------


@given(order=st.permutations(list(range(4))))
@SETTINGS
def test_merge_is_order_insensitive(order):
    """Shard arrival order never changes the coordinator's timeline.

    The coordinator log is always the merge base (its origin anchors the
    rebased clock), so merging the same shard logs in any completion
    order must yield the same canonical events and digest.
    """
    logs = {shard: make_shard_log(shard) for shard in range(4)}

    serial = merge_trace_logs(
        [TraceLog(origin=99.0)] + [logs[shard].copy() for shard in range(4)]
    )
    shuffled = merge_trace_logs(
        [TraceLog(origin=99.0)] + [logs[shard].copy() for shard in order]
    )

    assert shuffled.canonical() == serial.canonical()
    assert shuffled.digest() == serial.digest()


def test_merge_rebases_onto_first_origin():
    base = TraceLog(origin=50.0)
    late = TraceLog(origin=51.5, lane=2)
    late.instant("shard.dispatch", "scheduler", ts_us=100)

    base.merge(late)

    (event,) = base.events
    # 1.5s origin delta -> +1_500_000us rebased onto base's clock.
    assert event.ts_us == 100 + 1_500_000
    assert event.shard == 2


@given(
    deltas=st.lists(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        min_size=2,
        max_size=5,
    )
)
@SETTINGS
def test_clock_alignment_preserves_coordinator_order(deltas):
    """Events stamped later in coordinator time stay later post-merge."""
    coordinator = TraceLog(origin=1000.0)
    expected = []
    for shard, delta in enumerate(deltas):
        shard_log = TraceLog(origin=1000.0 + delta, lane=shard)
        # One event at shard-local zero == coordinator time `delta`.
        shard_log.instant("tick", "test", ts_us=0)
        expected.append((round(delta * 1e6), shard))
        coordinator.merge(shard_log)

    rebased = sorted(
        (event.ts_us, event.shard) for event in coordinator.events
    )
    assert rebased == sorted(expected)
    # Monotonicity: canonical order never runs time backwards.
    times = [event.ts_us for event in coordinator.canonical()]
    assert times == sorted(times)


def test_digest_ignores_ops_and_sums_data():
    a = TraceLog(origin=0.0, lane=0)
    a.data("engine.day", "engine", index=0, beacons=10)
    a.instant("shard.retry", "scheduler")

    b = TraceLog(origin=7.0, lane=1)
    b.data("engine.day", "engine", index=0, beacons=32)

    serial = TraceLog(origin=3.0)
    serial.data("engine.day", "engine", index=0, beacons=42)

    merged = merge_trace_logs([a, b])
    # Ops events and lanes differ, but data totals agree -> same digest.
    assert merged.digest() == serial.digest()

    totals = merged.data_totals()
    identity = ("engine", "engine.day", (("index", "0"),))
    assert totals[identity] == {"beacons": 42}


def test_digest_keeps_index_identity_separate():
    per_day = TraceLog()
    per_day.data("engine.day", "engine", index=0, beacons=5)
    per_day.data("engine.day", "engine", index=1, beacons=7)

    collapsed = TraceLog()
    collapsed.data("engine.day", "engine", index=0, beacons=12)

    # Day indices are identity, not summable payload: 5@day0 + 7@day1
    # must NOT hash like 12@day0.
    assert per_day.digest() != collapsed.digest()


# ----------------------------------------------------------------------
# Serialization round-trips
# ----------------------------------------------------------------------


def test_to_obj_round_trip():
    log = make_shard_log(1)
    restored = TraceLog.from_obj(log.to_obj())
    assert restored.canonical() == log.canonical()
    assert restored.digest() == log.digest()


def test_from_obj_rejects_unknown_version():
    with pytest.raises(TelemetryError):
        TraceLog.from_obj({"format_version": 999, "events": []})


def test_perfetto_round_trip():
    merged = merge_trace_logs([make_shard_log(shard) for shard in range(3)])
    merged.instant("checkpoint.saved", "checkpoint", shard=MAIN_LANE)

    obj = merged.to_perfetto_obj()
    # JSON-serializable and structurally a Chrome trace.
    text = json.dumps(obj)
    parsed = json.loads(text)
    assert parsed["traceEvents"]
    phases = {entry["ph"] for entry in parsed["traceEvents"]}
    assert phases <= {"M", "X", "i"}

    # One metadata lane per shard plus main.
    names = {
        entry["args"]["name"]
        for entry in parsed["traceEvents"]
        if entry["ph"] == "M" and entry["name"] == "thread_name"
    }
    assert names == {"main", "shard 0", "shard 1", "shard 2"}

    restored = TraceLog.from_perfetto_obj(parsed)
    assert restored.canonical() == merged.canonical()
    assert restored.digest() == merged.digest()


def test_perfetto_lane_mapping():
    log = TraceLog(origin=0.0)
    log.instant("a", "test", shard=MAIN_LANE)
    log.instant("b", "test", shard=0)
    log.instant("c", "test", shard=3)

    by_name = {
        entry["name"]: entry
        for entry in log.to_perfetto_obj()["traceEvents"]
        if entry["ph"] != "M"
    }
    assert by_name["a"]["tid"] == 0
    assert by_name["b"]["tid"] == 1
    assert by_name["c"]["tid"] == 4


# ----------------------------------------------------------------------
# Telemetry emission
# ----------------------------------------------------------------------


def test_spans_emit_phase_slices():
    tel = Telemetry()
    with tel.spans.span("campaign"):
        with tel.spans.span("day", index=0):
            pass
    names = [event.name for event in tel.trace.events]
    assert "campaign/day" in names
    assert "campaign" in names
    phase = next(e for e in tel.trace.events if e.name == "campaign")
    assert phase.dur_us is not None and phase.dur_us >= 0
    assert phase.cat == "phase"


def test_snapshot_carries_and_merges_trace():
    worker = Telemetry()
    worker.trace.lane = 1
    worker.trace.data("engine.day", "engine", index=0, beacons=9)
    coordinator = Telemetry()
    coordinator.absorb(worker.snapshot())
    assert coordinator.trace.events
    snap = coordinator.snapshot()
    assert snap.trace is not None
    assert snap.trace.digest() == worker.trace.digest()


def test_format_trace_report_shape():
    merged = merge_trace_logs([make_shard_log(shard) for shard in range(2)])
    report = format_trace_report(merged)
    assert "== trace timeline ==" in report
    assert "shard 0" in report and "shard 1" in report
    assert "critical" in report
    assert "data digest:" in report
    assert format_trace_report(TraceLog()) == "trace: no events recorded\n"


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def _scenario() -> Scenario:
    return Scenario.build(
        ScenarioConfig(
            seed=11,
            population=ClientPopulationConfig(prefix_count=48),
            calendar=SimulationCalendar(num_days=2),
            engine="vectorized",
        )
    )


def test_serial_and_sharded_trace_digests_match():
    serial = CampaignRunner(_scenario(), CampaignConfig(engine="vectorized"))
    serial.run()
    serial_trace = serial.telemetry.snapshot().trace

    sharded = ParallelCampaignRunner(
        _scenario(), CampaignConfig(engine="vectorized"), workers=4
    )
    sharded.run()
    sharded_trace = sharded.telemetry.snapshot().trace

    assert serial_trace is not None and sharded_trace is not None
    assert {e.shard for e in sharded_trace.events} >= {0, 1, 2, 3}
    assert sharded_trace.digest() == serial_trace.digest()


def test_chaos_run_traces_fault_retry_and_success():
    runner = ParallelCampaignRunner(
        _scenario(),
        CampaignConfig(
            engine="vectorized",
            fault_plan=FaultPlan.from_spec("exception:1"),
            max_retries=3,
            retry_backoff_seconds=0.0,
        ),
        workers=2,
    )
    runner.run()
    trace = runner.telemetry.snapshot().trace
    assert trace is not None
    names = [event.name for event in trace.events]
    assert "fault.injected" in names
    assert "shard.retry" in names
    attempts = {
        event.attempt
        for event in trace.events
        if event.name == "shard.attempt"
    }
    # The failed attempt 0 and the successful retry attempt both appear.
    assert {0, 1} <= attempts
    statuses = {
        dict(event.args).get("status")
        for event in trace.events
        if event.name == "shard.attempt"
    }
    assert {"failed", "ok"} <= statuses
