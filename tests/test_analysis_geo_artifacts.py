"""Tests for the footnote-1 geolocation-artifact analysis."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.geo_artifacts import geolocation_artifacts
from repro.cdn.frontend import FrontEnd
from repro.geo.coords import GeoPoint, destination_point
from repro.geo.geolocation import GeolocationDatabase, GeolocationRecord
from repro.geo.metros import MetroDatabase
from repro.net.ip import IPv4Prefix, PrefixAllocator

from tests.helpers import make_client, make_dataset

METROS = MetroDatabase()


def make_frontends(codes):
    allocator = PrefixAllocator(IPv4Prefix.parse("198.18.0.0/16"))
    return tuple(
        FrontEnd(f"fe-{c}", METROS.get(c), allocator.allocate_slash24())
        for c in codes
    )


class _OracleGeo(GeolocationDatabase):
    """Geolocation DB whose reported positions we set explicitly."""

    def register_pair(self, key, true_location, reported_location):
        record = GeolocationRecord(
            key=key,
            true_location=true_location,
            reported_location=reported_location,
        )
        self._records[key] = record  # test-only backdoor
        return record


def build_world():
    nyc = METROS.get("nyc").location
    far_away = destination_point(nyc, 90.0, 6000.0)
    clients = [make_client(1, location=nyc), make_client(2, location=far_away)]
    k_artifact, k_real = clients[0].key, clients[1].key
    dataset = make_dataset(
        clients,
        num_days=1,
        passive_counts=[
            (0, k_artifact, "fe-nyc", 10),
            (0, k_real, "fe-nyc", 10),
        ],
    )
    geo = _OracleGeo(error_fraction=0.0)
    # Client 1: actually in NYC but *reported* 6000 km away -> artifact.
    geo.register_pair(k_artifact, nyc, far_away)
    # Client 2: genuinely 6000 km away, reported accurately.
    geo.register_pair(k_real, far_away, far_away)
    return dataset, geo


def test_artifact_split():
    dataset, geo = build_world()
    result = geolocation_artifacts(
        dataset, make_frontends(["nyc"]), geo, day=0, threshold_km=3000.0
    )
    assert result.client_count == 2
    assert result.far_reported == 2      # both *look* far
    assert result.far_true == 1          # only one really is
    assert result.artifact_count == 1
    assert result.masked_count == 0
    assert result.artifact_fraction == pytest.approx(0.5)
    assert "Footnote 1" in result.format()


def test_masked_direction():
    nyc = METROS.get("nyc").location
    far_away = destination_point(nyc, 90.0, 6000.0)
    client = make_client(1, location=far_away)
    dataset = make_dataset(
        [client],
        num_days=1,
        passive_counts=[(0, client.key, "fe-nyc", 5)],
    )
    geo = _OracleGeo(error_fraction=0.0)
    # Truly far, but the database thinks it is in NYC.
    geo.register_pair(client.key, far_away, nyc)
    result = geolocation_artifacts(
        dataset, make_frontends(["nyc"]), geo, day=0, threshold_km=3000.0
    )
    assert result.masked_count == 1
    assert result.far_reported == 0
    assert result.artifact_fraction == 0.0


def test_validation():
    dataset, geo = build_world()
    frontends = make_frontends(["nyc"])
    with pytest.raises(AnalysisError):
        geolocation_artifacts(dataset, frontends, geo, threshold_km=0.0)
    with pytest.raises(AnalysisError, match="no passive traffic"):
        geolocation_artifacts(
            make_dataset([make_client(1)], num_days=1), frontends, geo
        )


def test_study_integration(small_scenario, small_dataset):
    from repro.analysis.geo_artifacts import geolocation_artifacts

    result = geolocation_artifacts(
        small_dataset,
        small_scenario.network.frontends,
        small_scenario.geolocation,
        day=0,
    )
    assert result.client_count > 0
    # Artifacts cannot outnumber the reported-far population.
    assert result.artifact_count <= result.far_reported
