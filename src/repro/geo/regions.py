"""Continental regions used to split results (Fig 3: Europe / US / World)."""

from __future__ import annotations

import enum

from repro.geo.coords import GeoPoint


class Region(enum.Enum):
    """Coarse continental region of a client or front-end."""

    NORTH_AMERICA = "north-america"
    SOUTH_AMERICA = "south-america"
    EUROPE = "europe"
    AFRICA = "africa"
    ASIA = "asia"
    OCEANIA = "oceania"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def region_of_point(point: GeoPoint) -> Region:
    """Classify a point into a coarse continental region.

    This is a bounding-box classifier: metros in the built-in database carry
    an authoritative region tag, so this function only needs to be right for
    points scattered *near* those metros (clients are placed within a couple
    hundred kilometers of a metro center).
    """
    lat, lon = point.lat, point.lon
    if lon < -30.0:
        if lat >= 13.0:
            return Region.NORTH_AMERICA
        return Region.SOUTH_AMERICA
    if lon < 65.0:
        if lat >= 36.0:
            return Region.EUROPE
        if lat >= 12.0 and lon >= 34.0:
            return Region.ASIA  # Middle East, east of the Suez meridian
        return Region.AFRICA
    # lon >= 65
    if lat < -8.0 and lon > 110.0:
        return Region.OCEANIA
    return Region.ASIA
