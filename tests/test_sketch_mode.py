"""Two-mode aggregation: exact below the threshold, sketch above it.

Covers the promotion contract (exact small-N behavior preserved; sketch
state canonical regardless of when promotion happened), the bounded
request-diff and passive logs, dataset digest stability in bounded mode,
the framed v3 export round trip (sketch frames included, torn tails
salvaged), and the columnar shard transport.
"""

import io

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement.aggregate import (
    GroupedDailyAggregates,
    LatencyDigest,
    RequestDiffLog,
)
from repro.measurement.export import (
    load_dataset,
    recover_dataset,
    save_dataset,
)
from repro.measurement.logs import PassiveLog
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.transport import (
    MAGIC,
    decode_shard_payload,
    encode_shard_payload,
)


# ----------------------------------------------------------------------
# LatencyDigest: two modes
# ----------------------------------------------------------------------


def test_default_digest_stays_exact():
    digest = LatencyDigest()
    digest.extend(np.arange(10_000, dtype=np.float64))
    assert digest.is_exact
    assert digest.sketch is None
    assert digest.count == 10_000


def test_promotion_at_threshold():
    digest = LatencyDigest(exact_threshold=4)
    for value in (1.0, 2.0, 3.0, 4.0):
        digest.add(value)
    assert digest.is_exact
    digest.add(5.0)
    assert not digest.is_exact
    assert digest.sketch is not None
    assert digest.count == 5
    assert digest.minimum() == 1.0 and digest.maximum() == 5.0
    with pytest.raises(MeasurementError):
        digest.values()
    with pytest.raises(MeasurementError):
        digest.values_view()


def test_promotion_is_canonical():
    """A digest promoted early, late, or assembled by merge reaches
    bit-identical sketch state — the property shard parity rests on."""
    values = [float(v) for v in range(1, 200)]

    early = LatencyDigest(exact_threshold=1)
    early.extend(values)

    late = LatencyDigest(exact_threshold=150)
    late.extend(values)

    first = LatencyDigest(exact_threshold=1)
    first.extend(values[:57])
    second = LatencyDigest(exact_threshold=1)
    second.extend(values[57:])
    first.merge(second)

    mixed = LatencyDigest(exact_threshold=100)
    mixed.extend(values[:10])  # still exact
    promoted = LatencyDigest(exact_threshold=100)
    promoted.extend(values[10:])  # 189 values: already a sketch
    assert not promoted.is_exact
    mixed.merge(promoted)

    digests = {d.sketch.digest() for d in (early, late, first, mixed)}
    assert len(digests) == 1


def test_exact_percentiles_unchanged_below_threshold():
    values = [9.0, 1.0, 5.0, 3.0]
    plain = LatencyDigest(values)
    gated = LatencyDigest(values, exact_threshold=64)
    for q in (0, 25, 50, 75, 100):
        assert gated.percentile(q) == plain.percentile(q)


def test_sketch_percentile_within_bound():
    digest = LatencyDigest(exact_threshold=8, relative_accuracy=0.01)
    values = np.linspace(10.0, 1000.0, 5000)
    digest.extend(values)
    assert not digest.is_exact
    bound = digest.sketch.relative_error_bound
    for q in (5.0, 50.0, 95.0):
        true = float(np.percentile(values, q))
        assert abs(digest.percentile(q) - true) / true <= 2 * bound


def test_digest_merge_config_mismatch_rejected():
    a = LatencyDigest(exact_threshold=4)
    with pytest.raises(MeasurementError):
        a.merge(LatencyDigest(exact_threshold=8))
    with pytest.raises(MeasurementError):
        a.merge(LatencyDigest(exact_threshold=4, max_buckets=16))


# ----------------------------------------------------------------------
# Grouped aggregates and bounded logs
# ----------------------------------------------------------------------


def test_grouped_aggregates_promote_and_shard_merge():
    def build(rows):
        sink = GroupedDailyAggregates("ecs", exact_threshold=8)
        for day, group, target, n in rows:
            sink.observe_many(
                day, group, target,
                np.full(n, 10.0 * (day + 1), dtype=np.float64),
            )
        return sink

    rows = [(0, "g1", "t1", 6), (0, "g1", "t1", 6), (1, "g2", "t1", 3)]
    serial = build(rows)
    merged = build(rows[:1]).merge(build(rows[1:]))

    exact, sketched, buckets, samples, halvings = serial.sketch_stats()
    assert sketched == 1 and exact == 1  # g1/t1 promoted, g2/t1 not
    assert samples == 12
    assert (
        merged.digest(0, "g1", "t1").sketch.digest()
        == serial.digest(0, "g1", "t1").sketch.digest()
    )
    assert merged.digest(1, "g2", "t1").is_exact
    with pytest.raises(MeasurementError):
        serial.merge(GroupedDailyAggregates("ecs", exact_threshold=9))


def test_bounded_diff_log():
    log = RequestDiffLog(bounded=True)
    assert log.is_bounded
    log.observe(0, 1, "europe", 30.0, 25.0)
    log.observe_many(0, 2, "europe", [40.0, 50.0], [45.0, 20.0])
    log.observe(1, 3, "asia", 90.0, 10.0)
    assert len(log) == 4
    with pytest.raises(MeasurementError):
        log.diffs()
    with pytest.raises(MeasurementError):
        list(log.rows())
    europe = log.diff_sketch("europe")
    assert europe.count == 3
    assert log.diff_sketch(None).count == 4
    assert log.diff_sketch("nowhere") is None
    sketches, buckets, samples, halvings = log.sketch_stats()
    assert sketches == 2  # (day 0, europe) and (day 1, asia)
    assert samples == 4


def test_bounded_diff_log_merge_order_insensitive():
    def build(rows):
        log = RequestDiffLog(bounded=True)
        for row in rows:
            log.observe(*row)
        return log

    rows = [
        (0, 1, "europe", 30.0, 25.0),
        (0, 2, "asia", 40.0, 45.0),
        (1, 3, "europe", 50.0, 20.0),
    ]
    serial = build(rows)
    merged = build(rows[:1]).merge(build(rows[1:]))
    assert (
        merged.diff_sketch(None).digest()
        == serial.diff_sketch(None).digest()
    )
    with pytest.raises(MeasurementError):
        serial.merge(RequestDiffLog(bounded=False))
    with pytest.raises(MeasurementError):
        serial.merge(RequestDiffLog(bounded=True, max_buckets=16))


def test_exact_diff_log_has_no_sketches():
    log = RequestDiffLog()
    log.observe(0, 1, "europe", 30.0, 25.0)
    with pytest.raises(MeasurementError):
        log.diff_sketch()
    with pytest.raises(MeasurementError):
        log.day_region_sketches()
    assert log.sketch_stats() == (0, 0, 0, 0)


def test_bounded_passive_log():
    log = PassiveLog(bounded=True)
    log.record(0, "c1", "fe1", 10)
    log.record(0, "c2", "fe1", 5)
    log.record(1, "c1", "fe2", 2)
    assert log.is_bounded
    assert log.total_queries(0) == 15
    assert log.day_totals(0) == {"fe1": 15}
    assert log.days == (0, 1)
    with pytest.raises(MeasurementError):
        log.clients_on(0)
    with pytest.raises(MeasurementError):
        log.frontends_for(0, "c1")


def test_bounded_passive_log_merge():
    a = PassiveLog(bounded=True)
    a.record(0, "c1", "fe1", 10)
    b = PassiveLog(bounded=True)
    b.record(0, "c2", "fe1", 5)
    a.merge(b)
    assert a.day_totals(0) == {"fe1": 15}
    with pytest.raises(MeasurementError):
        a.merge(PassiveLog(bounded=False))


# ----------------------------------------------------------------------
# Dataset digest / export / transport in bounded mode
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def bounded_dataset(small_scenario):
    config = CampaignConfig(
        engine="vectorized", sketch_threshold=16, sketch_max_buckets=64
    )
    return CampaignRunner(small_scenario, config).run()


def test_bounded_dataset_digest_stable(bounded_dataset):
    assert bounded_dataset.digest() == bounded_dataset.digest()
    assert bounded_dataset.measurement_count > 0
    assert bounded_dataset.request_diffs.is_bounded
    assert bounded_dataset.passive.is_bounded
    # The sketch threshold actually bound: some digests promoted.
    _, sketched, _, _, _ = bounded_dataset.ecs_aggregates.sketch_stats()
    assert sketched > 0


def test_bounded_dataset_framed_round_trip(bounded_dataset, tmp_path):
    path = tmp_path / "bounded.jsonl"
    save_dataset(bounded_dataset, str(path))
    restored = load_dataset(str(path))
    assert restored.digest() == bounded_dataset.digest()
    assert restored.request_diffs.is_bounded
    assert restored.passive.is_bounded
    assert (
        restored.ecs_aggregates.exact_threshold
        == bounded_dataset.ecs_aggregates.exact_threshold
    )
    assert (
        restored.ecs_aggregates.max_buckets
        == bounded_dataset.ecs_aggregates.max_buckets
    )
    assert (
        restored.request_diffs.max_buckets
        == bounded_dataset.request_diffs.max_buckets
    )


def test_bounded_dataset_torn_tail_salvage(bounded_dataset, tmp_path):
    buffer = io.StringIO()
    save_dataset(bounded_dataset, buffer)
    text = buffer.getvalue()
    torn = text[: int(len(text) * 0.7)]
    path = tmp_path / "torn.jsonl"
    path.write_text(torn)
    restored, recovery = recover_dataset(str(path))
    assert not recovery.complete
    assert recovery.report.frames_total > 0
    assert restored.measurement_count <= bounded_dataset.measurement_count
    assert restored.request_diffs.is_bounded
    # Salvaged sketch frames are live, queryable sketches.
    sketch = restored.request_diffs.diff_sketch(None)
    if sketch is not None:
        sketch.quantile(50.0)


def test_bounded_dataset_transport_round_trip(bounded_dataset):
    payload = encode_shard_payload(bounded_dataset, None, None, None)
    restored, stats, snapshot, quarantine = decode_shard_payload(
        payload, bounded_dataset.clients
    )
    assert restored.digest() == bounded_dataset.digest()
    assert restored.request_diffs.is_bounded
    assert stats is None and snapshot is None and quarantine is None


def test_transport_rejects_structural_damage(bounded_dataset):
    payload = encode_shard_payload(bounded_dataset, None, None, None)
    not_columnar = b"X" * len(MAGIC) + payload[len(MAGIC):]
    with pytest.raises(MeasurementError):
        decode_shard_payload(not_columnar, bounded_dataset.clients)
    truncated = payload[: len(MAGIC) + 6]
    with pytest.raises(MeasurementError):
        decode_shard_payload(truncated, bounded_dataset.clients)
