"""Deterministic event streams recovered from recorded exports.

``repro replay`` feeds the live service from a *recorded* campaign: a
framed export (or an in-memory :class:`~repro.simulation.dataset
.StudyDataset`) is unrolled back into the beacon and passive events
that produced it, in a canonical day-ascending order.  Because the
dataset's exact-mode digests retain every sample bit-for-bit, and each
client record carries its (static) LDNS id, the reconstructed stream
reproduces both grouping planes' sample multisets exactly — which is
what lets ``tests/test_service_replay.py`` use the batch predictor as a
differential oracle for the online one.

:func:`dirty_events` rides the campaign's ``record-*`` fault vocabulary
into replay: it damages the same seed-derived (day, client) cells the
batch dirty-data chaos tests target, so a replay under a lenient gate
quarantines deterministic, non-empty record sets — the chaos-parity
tests need a populated quarantine log to make its digest a meaningful
part of the bit-identity assertion.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import MeasurementError
from repro.faults.inject import RecordFaultInjector
from repro.faults.plan import FaultPlan
from repro.service.events import BeaconEvent, PassiveEvent, StreamEvent
from repro.simulation.dataset import StudyDataset

#: Client label replayed passive events carry when the recorded passive
#: log is bounded (per-day front-end totals only, no per-client rows).
PASSIVE_TOTAL_KEY = "all"


def events_from_dataset(dataset: StudyDataset) -> List[StreamEvent]:
    """Unroll a recorded dataset into its canonical event stream.

    Day-ascending; within a day, beacons first (sorted by client /24,
    then target, samples in stored order), then passive counts.  The
    ECS aggregates are the beacon source of truth — every joined
    measurement contributed exactly one ECS sample — and each event's
    LDNS id comes from the client record, so replaying the stream
    rebuilds the LDNS plane's multiset too.

    Raises:
        MeasurementError: when the dataset's digests are sketch-mode
            (promoted sketches retain no samples to replay) or a group
            key has no client record to recover an LDNS id from.
    """
    ldns_by_key = {client.key: client.ldns_id for client in dataset.clients}
    ecs = dataset.ecs_aggregates
    passive = dataset.passive
    ecs_days = set(ecs.days)
    passive_days = set(passive.days)
    events: List[StreamEvent] = []
    for day in sorted(ecs_days | passive_days):
        if day in ecs_days:
            for group in sorted(ecs.groups_on(day)):
                ldns_id = ldns_by_key.get(group)
                if ldns_id is None:
                    raise MeasurementError(
                        f"no client record for ECS group {group!r}; "
                        "cannot recover its LDNS id for replay"
                    )
                for target_id, digest in sorted(
                    ecs.targets_for(day, group).items()
                ):
                    if not digest.is_exact:
                        raise MeasurementError(
                            "sketch-mode export retains no samples to "
                            f"replay (day {day}, group {group!r}, "
                            f"target {target_id!r}); replay needs an "
                            "exact-mode export"
                        )
                    for value in digest.values_view().tolist():
                        events.append(
                            BeaconEvent(
                                day=day,
                                client_key=group,
                                ldns_id=ldns_id,
                                target_id=target_id,
                                rtt_ms=value,
                            )
                        )
        if day in passive_days:
            if passive.is_bounded:
                for frontend_id, count in sorted(
                    passive.day_totals(day).items()
                ):
                    events.append(
                        PassiveEvent(
                            day=day,
                            client_key=PASSIVE_TOTAL_KEY,
                            frontend_id=frontend_id,
                            count=count,
                        )
                    )
            else:
                for client_key in sorted(passive.clients_on(day)):
                    for frontend_id, count in sorted(
                        passive.frontends_for(day, client_key).items()
                    ):
                        events.append(
                            PassiveEvent(
                                day=day,
                                client_key=client_key,
                                frontend_id=frontend_id,
                                count=count,
                            )
                        )
    return events


def dirty_events(
    dataset: StudyDataset,
    events: List[StreamEvent],
    plan: Optional[FaultPlan],
    seed: int,
) -> List[StreamEvent]:
    """Damage a replay stream per a plan's ``record-*`` faults.

    Record-fault coordinates compile against the full population and
    calendar — exactly like the campaign's dirty-data injection — and
    land on slots within each (day, client) beacon block, so the same
    plan and seed dirty the same stream positions on every run.
    Returns a new list; the input is never mutated.
    """
    result = list(events)
    if plan is None or not plan.record_specs:
        return result
    compiled = plan.compile_records(
        seed, dataset.calendar.num_days, len(dataset.clients)
    )
    injector = RecordFaultInjector(compiled)
    if injector.empty:
        return result
    index_by_key = {
        client.key: i for i, client in enumerate(dataset.clients)
    }
    blocks: Dict[Tuple[int, int], List[int]] = {}
    for position, event in enumerate(result):
        if not isinstance(event, BeaconEvent):
            continue
        client_index = index_by_key.get(event.client_key)
        if client_index is None:
            continue
        blocks.setdefault((event.day, client_index), []).append(position)
    for (day, client_index), positions in sorted(blocks.items()):
        slots = injector.slots_for(day, client_index, len(positions))
        for slot, kind in sorted(slots.items()):
            position = positions[slot]
            event = result[position]
            assert isinstance(event, BeaconEvent)
            result[position] = dataclasses.replace(
                event,
                rtt_ms=RecordFaultInjector.dirty_value(kind, event.rtt_ms),
            )
    return result
