"""Exact-value tests for the figure analyses, on hand-built datasets."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.affinity import frontend_affinity, switch_distance_cdf
from repro.analysis.anycast_perf import anycast_distance_cdf
from repro.analysis.poor_paths import (
    daily_improvements,
    poor_path_duration,
    poor_path_prevalence,
)
from repro.cdn.frontend import FrontEnd
from repro.geo.coords import GeoPoint
from repro.geo.geolocation import GeolocationDatabase
from repro.geo.metros import MetroDatabase
from repro.net.ip import IPv4Prefix, PrefixAllocator

from tests.helpers import make_client, make_dataset

METROS = MetroDatabase()


def make_frontends(codes):
    allocator = PrefixAllocator(IPv4Prefix.parse("198.18.0.0/16"))
    return tuple(
        FrontEnd(f"fe-{c}", METROS.get(c), allocator.allocate_slash24())
        for c in codes
    )


class TestPoorPaths:
    def build(self):
        clients = [make_client(1), make_client(2)]
        k1, k2 = clients[0].key, clients[1].key
        samples = [
            # Day 0: client 1 poor by 20ms, client 2 fine.
            (0, k1, "anycast", [50.0] * 10),
            (0, k1, "fe-a", [30.0] * 10),
            (0, k2, "anycast", [20.0] * 10),
            (0, k2, "fe-a", [25.0] * 10),
            # Day 1: client 1 recovers; client 2 has too few samples.
            (1, k1, "anycast", [30.0] * 10),
            (1, k1, "fe-a", [30.0] * 10),
            (1, k2, "anycast", [20.0] * 3),
            (1, k2, "fe-a", [10.0] * 3),
            # Day 2: client 1 poor by 5ms again.
            (2, k1, "anycast", [35.0] * 10),
            (2, k1, "fe-a", [30.0] * 10),
        ]
        return make_dataset(clients, num_days=3, ecs_samples=samples)

    def test_daily_improvements_respects_min_samples(self):
        dataset = self.build()
        improvements = daily_improvements(dataset, min_samples=10)
        assert set(improvements[0]) == {
            dataset.clients[0].key, dataset.clients[1].key
        }
        assert set(improvements[1]) == {dataset.clients[0].key}
        imp = improvements[0][dataset.clients[0].key]
        assert imp.improvement_ms == pytest.approx(20.0)

    def test_prevalence_fractions(self):
        dataset = self.build()
        result = poor_path_prevalence(
            dataset, thresholds=(1.0, 10.0), min_samples=10
        )
        assert result.daily_fractions[0][1.0] == pytest.approx(0.5)
        assert result.daily_fractions[0][10.0] == pytest.approx(0.5)
        assert result.daily_fractions[1][1.0] == pytest.approx(0.0)
        assert result.daily_fractions[2][1.0] == pytest.approx(1.0)
        assert result.daily_fractions[2][10.0] == pytest.approx(0.0)
        assert result.mean_fraction(1.0) == pytest.approx(0.5)
        assert "Fig 5" in result.format()

    def test_duration(self):
        dataset = self.build()
        result = poor_path_duration(dataset, threshold_ms=1.0, min_samples=10)
        # Only client 1 was ever poor: on days 0 and 2 (not consecutive).
        assert result.ever_poor_count == 1
        assert result.fraction_single_day == 0.0
        assert result.days_poor.ys[result.days_poor.xs.index(2.0)] == 1.0
        assert (
            result.max_consecutive.ys[result.max_consecutive.xs.index(1.0)]
            == 1.0
        )

    def test_no_poor_paths_raises(self):
        clients = [make_client(1)]
        dataset = make_dataset(
            clients,
            ecs_samples=[
                (0, clients[0].key, "anycast", [10.0] * 10),
                (0, clients[0].key, "fe-a", [20.0] * 10),
            ],
        )
        with pytest.raises(AnalysisError):
            poor_path_duration(dataset, threshold_ms=1.0, min_samples=10)

    def test_min_samples_validation(self):
        with pytest.raises(AnalysisError):
            daily_improvements(self.build(), min_samples=0)


class TestAffinity:
    def build(self):
        clients = [make_client(i) for i in range(1, 4)]
        k1, k2, k3 = (c.key for c in clients)
        passive = []
        for day in range(3):
            passive.append((day, k1, "fe-a", 10))           # never switches
            passive.append((day, k3, "fe-a", 8))
        passive.append((0, k2, "fe-a", 10))
        passive.append((1, k2, "fe-b", 10))                  # day-1 switch
        passive.append((2, k2, "fe-b", 10))
        passive.append((2, k3, "fe-b", 2))                   # intra-day switch
        return make_dataset(clients, num_days=3, passive_counts=passive)

    def test_cumulative_switch_fractions(self):
        dataset = self.build()
        result = frontend_affinity(dataset, start_day=0, num_days=3)
        assert result.client_count == 3
        assert result.cumulative[0][1] == pytest.approx(0.0)
        assert result.cumulative[1][1] == pytest.approx(1 / 3)
        assert result.cumulative[2][1] == pytest.approx(2 / 3)
        assert result.first_day_fraction == 0.0
        assert result.week_fraction == pytest.approx(2 / 3)
        assert result.daily_increment(2) == pytest.approx(1 / 3)

    def test_requires_daily_presence(self):
        clients = [make_client(1)]
        dataset = make_dataset(
            clients,
            num_days=2,
            passive_counts=[(0, clients[0].key, "fe-a", 5)],
        )
        with pytest.raises(AnalysisError, match="every day"):
            frontend_affinity(dataset, start_day=0, num_days=2)

    def test_window_bounds(self):
        dataset = self.build()
        with pytest.raises(AnalysisError):
            frontend_affinity(dataset, start_day=0, num_days=9)

    def test_switch_distances(self):
        nyc = METROS.get("nyc").location
        clients = [make_client(1, location=nyc)]
        key = clients[0].key
        dataset = make_dataset(
            clients,
            num_days=2,
            passive_counts=[
                (0, key, "fe-nyc", 10),
                (1, key, "fe-was", 10),
            ],
        )
        geo = GeolocationDatabase(error_fraction=0.0)
        geo.register(key, nyc)
        frontends = make_frontends(["nyc", "was"])
        result = switch_distance_cdf(dataset, frontends, geo)
        assert result.switch_count == 1
        # |d(nyc, was-FE) - d(nyc, nyc-FE)| = distance NYC->DC ~ 330 km.
        assert result.median_km == pytest.approx(330, abs=30)
        assert result.fraction_within_2000km == 1.0

    def test_no_switches_raises(self):
        clients = [make_client(1)]
        dataset = make_dataset(
            clients,
            num_days=2,
            passive_counts=[
                (0, clients[0].key, "fe-nyc", 5),
                (1, clients[0].key, "fe-nyc", 5),
            ],
        )
        geo = GeolocationDatabase(error_fraction=0.0)
        geo.register(clients[0].key, GeoPoint(0, 0))
        with pytest.raises(AnalysisError, match="no front-end switches"):
            switch_distance_cdf(dataset, make_frontends(["nyc"]), geo)


class TestAnycastDistance:
    def test_distances_and_weighting(self):
        nyc = METROS.get("nyc").location
        # Client 1 sits in NYC, served by NYC (optimal).
        # Client 2 sits in NYC, served by LA (distant), higher volume.
        clients = [
            make_client(1, location=nyc, daily_queries=10),
            make_client(2, location=nyc, daily_queries=90),
        ]
        k1, k2 = clients[0].key, clients[1].key
        dataset = make_dataset(
            clients,
            num_days=1,
            passive_counts=[(0, k1, "fe-nyc", 10), (0, k2, "fe-lax", 90)],
        )
        geo = GeolocationDatabase(error_fraction=0.0)
        geo.register(k1, nyc)
        geo.register(k2, nyc)
        frontends = make_frontends(["nyc", "lax"])
        result = anycast_distance_cdf(dataset, frontends, geo, day=0)
        assert result.fraction_at_nearest == pytest.approx(0.5)
        # Weighted by query volume, the distant client dominates.
        assert result.fraction_at_nearest_weighted == pytest.approx(0.1)
        assert result.fraction_within_2000km == pytest.approx(0.5)
        assert "Fig 4" in result.format()

    def test_unknown_frontend_rejected(self):
        clients = [make_client(1)]
        dataset = make_dataset(
            clients,
            num_days=1,
            passive_counts=[(0, clients[0].key, "fe-mystery", 5)],
        )
        geo = GeolocationDatabase(error_fraction=0.0)
        geo.register(clients[0].key, GeoPoint(0, 0))
        with pytest.raises(AnalysisError, match="unknown"):
            anycast_distance_cdf(dataset, make_frontends(["nyc"]), geo, day=0)

    def test_empty_day_rejected(self):
        clients = [make_client(1)]
        dataset = make_dataset(clients, num_days=2)
        geo = GeolocationDatabase(error_fraction=0.0)
        with pytest.raises(AnalysisError, match="no passive traffic"):
            anycast_distance_cdf(dataset, make_frontends(["nyc"]), geo, day=1)
