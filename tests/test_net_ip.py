"""Tests for IPv4 addressing (repro.net.ip)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.net.ip import IPv4Address, IPv4Prefix, PrefixAllocator, slash24_of

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address)


class TestIPv4Address:
    def test_parse_and_format(self):
        addr = IPv4Address.parse("192.168.1.200")
        assert str(addr) == "192.168.1.200"
        assert addr.value == (192 << 24) | (168 << 16) | (1 << 8) | 200

    @pytest.mark.parametrize(
        "text",
        ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "01.2.3.4", "-1.2.3.4"],
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(AddressError):
            IPv4Address.parse(text)

    def test_value_range_enforced(self):
        with pytest.raises(AddressError):
            IPv4Address(-1)
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)

    def test_addition(self):
        assert str(IPv4Address.parse("10.0.0.0") + 256) == "10.0.1.0"

    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")

    @given(addresses)
    @settings(max_examples=100)
    def test_round_trip(self, addr):
        assert IPv4Address.parse(str(addr)) == addr


class TestIPv4Prefix:
    def test_parse(self):
        prefix = IPv4Prefix.parse("10.1.2.0/24")
        assert str(prefix) == "10.1.2.0/24"
        assert prefix.length == 24
        assert prefix.num_addresses == 256

    @pytest.mark.parametrize("text", ["10.0.0.0", "10.0.0.0/", "10.0.0.0/ab", "10.0.0.0/33"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(AddressError):
            IPv4Prefix.parse(text)

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError, match="host bits"):
            IPv4Prefix.parse("10.0.0.1/24")

    def test_contains_address(self):
        prefix = IPv4Prefix.parse("10.1.2.0/24")
        assert prefix.contains(IPv4Address.parse("10.1.2.255"))
        assert not prefix.contains(IPv4Address.parse("10.1.3.0"))

    def test_contains_prefix(self):
        outer = IPv4Prefix.parse("10.0.0.0/8")
        inner = IPv4Prefix.parse("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_zero_length_prefix_contains_everything(self):
        everything = IPv4Prefix.parse("0.0.0.0/0")
        assert everything.contains(IPv4Address.parse("255.255.255.255"))
        assert everything.num_addresses == 1 << 32

    def test_address_at(self):
        prefix = IPv4Prefix.parse("10.1.2.0/24")
        assert str(prefix.address_at(0)) == "10.1.2.0"
        assert str(prefix.address_at(255)) == "10.1.2.255"
        with pytest.raises(AddressError):
            prefix.address_at(256)
        with pytest.raises(AddressError):
            prefix.address_at(-1)

    def test_first_address(self):
        prefix = IPv4Prefix.parse("10.1.2.0/24")
        assert prefix.first_address() == prefix.network

    def test_slash24s(self):
        prefix = IPv4Prefix.parse("10.0.0.0/22")
        subnets = list(prefix.slash24s())
        assert [str(s) for s in subnets] == [
            "10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24",
        ]

    def test_slash24s_rejects_longer(self):
        with pytest.raises(AddressError):
            list(IPv4Prefix.parse("10.0.0.0/25").slash24s())

    def test_slash24_of(self):
        assert str(slash24_of(IPv4Address.parse("10.1.2.77"))) == "10.1.2.0/24"

    @given(addresses)
    @settings(max_examples=100)
    def test_slash24_of_contains_address(self, addr):
        assert slash24_of(addr).contains(addr)


class TestPrefixAllocator:
    def test_sequential_disjoint(self):
        allocator = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/16"))
        a = allocator.allocate_slash24()
        b = allocator.allocate_slash24()
        assert a != b
        assert not a.contains_prefix(b)
        assert str(a) == "10.0.0.0/24"
        assert str(b) == "10.0.1.0/24"

    def test_alignment_after_mixed_sizes(self):
        allocator = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/16"))
        allocator.allocate(26)  # consumes part of the first /24
        aligned = allocator.allocate(24)
        assert aligned.network.value % 256 == 0

    def test_exhaustion(self):
        allocator = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/23"))
        allocator.allocate_slash24()
        allocator.allocate_slash24()
        with pytest.raises(AddressError, match="exhausted"):
            allocator.allocate_slash24()

    def test_cannot_allocate_larger_than_pool(self):
        allocator = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/16"))
        with pytest.raises(AddressError):
            allocator.allocate(8)

    def test_remaining_addresses(self):
        allocator = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/23"))
        assert allocator.remaining_addresses == 512
        allocator.allocate_slash24()
        assert allocator.remaining_addresses == 256

    @given(st.lists(st.integers(min_value=20, max_value=30), min_size=1, max_size=30))
    @settings(max_examples=40)
    def test_allocations_never_overlap(self, lengths):
        allocator = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/12"))
        allocated = []
        for length in lengths:
            allocated.append(allocator.allocate(length))
        for i, a in enumerate(allocated):
            for b in allocated[i + 1:]:
                assert not a.contains_prefix(b)
                assert not b.contains_prefix(a)
