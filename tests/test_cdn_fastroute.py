"""Tests for FastRoute-style layered load shedding."""

import pytest

from repro.errors import ConfigurationError
from repro.cdn.failover import frontend_loads
from repro.cdn.fastroute import (
    FastRouteBalancer,
    LayeredAnycastNetwork,
    default_layers,
)


@pytest.fixture(scope="module")
def layered(small_scenario):
    layers = default_layers(small_scenario.deployment)
    network = LayeredAnycastNetwork(
        small_scenario.topology, small_scenario.deployment, layers
    )
    return network, layers


class TestLayers:
    def test_default_layers_nest(self, small_scenario):
        layer0, layer1, layer2 = default_layers(small_scenario.deployment)
        assert layer2 < layer1 < layer0
        assert len(layer0) == len(small_scenario.deployment.frontends)
        assert len(layer1) == 12
        assert len(layer2) == 4

    def test_default_layers_validation(self, small_scenario):
        with pytest.raises(ConfigurationError):
            default_layers(small_scenario.deployment, hub_count=2, core_count=4)

    def test_layer0_matches_production_routing(self, small_scenario, layered):
        network, _ = layered
        production = small_scenario.network
        for client in small_scenario.clients[:40]:
            expected = production.anycast_path(
                client.asn, client.home_metro
            ).frontend.frontend_id
            assert (
                network.serving_frontend(0, client.asn, client.home_metro)
                == expected
            )

    def test_higher_layers_serve_from_their_ring(self, small_scenario, layered):
        network, layers = layered
        for client in small_scenario.clients[:40]:
            for index in (1, 2):
                frontend_id = network.serving_frontend(
                    index, client.asn, client.home_metro
                )
                assert frontend_id in layers[index]

    def test_layer_validation(self, small_scenario):
        deployment = small_scenario.deployment
        all_ids = frozenset(fe.frontend_id for fe in deployment.frontends)
        some = frozenset(list(all_ids)[:3])
        with pytest.raises(ConfigurationError, match="layer 0"):
            LayeredAnycastNetwork(
                small_scenario.topology, deployment, [some]
            )
        other = frozenset(list(all_ids)[3:6])
        with pytest.raises(ConfigurationError, match="nest"):
            LayeredAnycastNetwork(
                small_scenario.topology, deployment, [all_ids, some, other]
            )

    def test_unknown_layer_index(self, layered):
        network, _ = layered
        with pytest.raises(ConfigurationError):
            network.serving_frontend(9, 10000, "nyc")


class TestBalancer:
    def make_balancer(self, small_scenario, layered, capacity_factor):
        network, _ = layered
        baseline = frontend_loads(
            small_scenario.network, small_scenario.clients
        )
        positive = sorted(v for v in baseline.values() if v > 0)
        median = positive[len(positive) // 2]
        capacities = {
            fe.frontend_id: capacity_factor * max(baseline.get(fe.frontend_id, 0.0), median)
            for fe in small_scenario.deployment.frontends
        }
        return (
            FastRouteBalancer(network, small_scenario.clients, capacities),
            baseline,
            capacities,
        )

    def test_no_shedding_when_capacity_ample(self, small_scenario, layered):
        balancer, _, _ = self.make_balancer(small_scenario, layered, 100.0)
        result = balancer.balance()
        assert result.converged
        assert result.decisions == ()

    def test_shedding_relieves_hot_frontends(self, small_scenario, layered):
        balancer, baseline, capacities = self.make_balancer(
            small_scenario, layered, 0.8
        )
        result = balancer.balance()
        assert result.decisions  # someone had to shed
        # Every front-end that was over its 0.8x capacity either sheds or
        # got relieved below capacity.
        hot = {
            frontend_id
            for frontend_id, load in baseline.items()
            if load > capacities[frontend_id]
        }
        assert hot
        for frontend_id in hot:
            relieved = result.loads.get(frontend_id, 0.0) <= (
                capacities[frontend_id] + 1e-9
            )
            sheds = result.shed_fraction(frontend_id, 0) > 0 or (
                result.shed_fraction(frontend_id, 1) > 0
            )
            assert relieved or sheds

    def test_load_conserved(self, small_scenario, layered):
        balancer, _, _ = self.make_balancer(small_scenario, layered, 0.8)
        result = balancer.balance()
        total = sum(c.daily_queries for c in small_scenario.clients)
        assert sum(result.loads.values()) == pytest.approx(total, rel=1e-9)

    def test_format(self, small_scenario, layered):
        balancer, _, _ = self.make_balancer(small_scenario, layered, 0.8)
        text = balancer.balance().format()
        assert "FastRoute shedding" in text

    def test_validation(self, small_scenario, layered):
        network, _ = layered
        with pytest.raises(ConfigurationError, match="clients"):
            FastRouteBalancer(network, [], {})
        with pytest.raises(ConfigurationError, match="step"):
            FastRouteBalancer(
                network, small_scenario.clients, {}, step=0.0
            )
        with pytest.raises(ConfigurationError, match="capacities"):
            FastRouteBalancer(network, small_scenario.clients, {"fe-x": 1.0})
        balancer, _, _ = self.make_balancer(small_scenario, layered, 1.0)
        with pytest.raises(ConfigurationError, match="max_rounds"):
            balancer.balance(max_rounds=0)
