"""Validation gate, quarantine log, and dataset-boundary scan tests.

The hardened data plane's contract: every ingestion boundary applies one
schema (``classify_rtt``) under one of three policies, every rejection
lands in a mergeable :class:`QuarantineLog` with exact per-reason
counts, and the scalar and vectorized admission paths quarantine the
same record coordinates so engines agree bit-for-bit on the accounting.
"""

import math
import random

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.measurement.validate import (
    MAX_PLAUSIBLE_RTT_MS,
    QUARANTINE_SAMPLE_CAP,
    RECORD_SCHEMA_VERSION,
    REASON_ABSURD_RTT,
    REASON_NEGATIVE_COUNT,
    REASON_NEGATIVE_RTT,
    REASON_NON_FINITE_RTT,
    REASON_TRUNCATED,
    QuarantineLog,
    ValidationGate,
    ValidationPolicy,
    classify_rtt,
    validate_dataset,
)


class TestClassifyRtt:
    def test_valid_range_passes(self):
        for value in (0.0, 1.0, 42.5, MAX_PLAUSIBLE_RTT_MS):
            assert classify_rtt(value) is None

    def test_invalid_shapes_classified(self):
        assert classify_rtt(float("nan")) == (REASON_NON_FINITE_RTT, None)
        assert classify_rtt(float("inf")) == (REASON_NON_FINITE_RTT, None)
        assert classify_rtt(float("-inf")) == (REASON_TRUNCATED, None)
        assert classify_rtt(-3.0) == (REASON_NEGATIVE_RTT, 0.0)
        assert classify_rtt(MAX_PLAUSIBLE_RTT_MS + 1.0) == (
            REASON_ABSURD_RTT,
            MAX_PLAUSIBLE_RTT_MS,
        )

    def test_policy_parse(self):
        assert ValidationPolicy.parse("strict") is ValidationPolicy.STRICT
        assert (
            ValidationPolicy.parse(ValidationPolicy.REPAIR)
            is ValidationPolicy.REPAIR
        )
        with pytest.raises(ValidationError) as excinfo:
            ValidationPolicy.parse("yolo")
        assert excinfo.value.reason == "bad-policy"


class TestValidationGate:
    def test_lenient_drops_and_accounts(self):
        gate = ValidationGate("lenient")
        assert gate.admit(0, "10.0.0.0/24", 0, 12.0) == 12.0
        assert gate.admit(0, "10.0.0.0/24", 1, -5.0) is None
        assert gate.admit(0, "10.0.0.0/24", 2, float("nan")) is None
        assert gate.records_total == 3
        assert gate.dropped_total == 2
        assert gate.repaired_total == 0
        assert gate.quarantine.counts == {
            REASON_NEGATIVE_RTT: 1,
            REASON_NON_FINITE_RTT: 1,
        }

    def test_strict_raises_with_reason(self):
        gate = ValidationGate(ValidationPolicy.STRICT)
        with pytest.raises(ValidationError) as excinfo:
            gate.admit(2, "10.0.3.0/24", 7, -1.0)
        assert excinfo.value.reason == REASON_NEGATIVE_RTT
        assert "day 2" in str(excinfo.value)

    def test_repair_clamps_recoverable_drops_the_rest(self):
        gate = ValidationGate("repair")
        assert gate.admit(0, "c", 0, -9.0) == 0.0
        assert gate.admit(0, "c", 1, MAX_PLAUSIBLE_RTT_MS * 2) == (
            MAX_PLAUSIBLE_RTT_MS
        )
        assert gate.admit(0, "c", 2, float("-inf")) is None
        assert gate.repaired_total == 2
        assert gate.dropped_total == 1
        assert gate.quarantine.repaired == 2
        assert gate.quarantine.dropped == 1

    def test_passive_count_boundary(self):
        gate = ValidationGate("lenient")
        assert gate.admit_count(0, "ldns-1", "fe-lon", 5) == 5
        assert gate.admit_count(0, "ldns-1", "fe-lon", -2) is None
        assert gate.quarantine.counts == {REASON_NEGATIVE_COUNT: 1}
        repair = ValidationGate("repair")
        assert repair.admit_count(0, "ldns-1", "fe-lon", -2) == 0

    def test_matrix_path_matches_scalar_path(self):
        """The engines' shared contract: same records, same quarantine."""
        rng = random.Random(11)
        rows, cols = 8, 5
        block = np.array(
            [
                [rng.uniform(1.0, 300.0) for _ in range(cols)]
                for _ in range(rows)
            ]
        )
        dirty = {
            (0, 1): float("nan"),
            (2, 3): -40.0,
            (5, 0): float("-inf"),
            (7, 4): MAX_PLAUSIBLE_RTT_MS * 3,
        }
        for (r, c), value in dirty.items():
            block[r, c] = value

        scalar_gate = ValidationGate("repair")
        expected = np.array(block)
        expected_mask = np.ones((rows, cols), dtype=bool)
        for r in range(rows):
            for c in range(cols):
                admitted = scalar_gate.admit(
                    3, "10.9.9.0/24", r * cols + c, float(block[r, c])
                )
                if admitted is None:
                    expected_mask[r, c] = False
                else:
                    expected[r, c] = admitted

        matrix_gate = ValidationGate("repair")
        work = np.array(block)
        mask = matrix_gate.admit_matrix(3, "10.9.9.0/24", work)
        assert mask is not None
        assert np.array_equal(mask, expected_mask)
        assert np.array_equal(work[mask], expected[expected_mask])
        assert matrix_gate.records_total == scalar_gate.records_total
        assert (
            matrix_gate.quarantine.digest() == scalar_gate.quarantine.digest()
        )

    def test_matrix_fast_path_is_zero_copy(self):
        gate = ValidationGate("lenient")
        clean = np.full((4, 3), 25.0)
        assert gate.admit_matrix(0, "c", clean) is None
        assert gate.records_total == 12
        assert gate.quarantine.total == 0


class TestQuarantineLog:
    def _fill(self, log, records):
        for day, client, index, reason, value in records:
            log.record(day, client, index, reason, value)

    def test_merge_order_insensitive_digest(self):
        rng = random.Random(5)
        records = [
            (
                rng.randrange(30),
                f"10.0.{rng.randrange(200)}.0/24",
                rng.randrange(500),
                rng.choice((REASON_NEGATIVE_RTT, REASON_NON_FINITE_RTT)),
                float(rng.randrange(-100, 0)),
            )
            for _ in range(3 * QUARANTINE_SAMPLE_CAP)
        ]
        serial = QuarantineLog()
        self._fill(serial, records)

        shard_a, shard_b = QuarantineLog(), QuarantineLog()
        self._fill(shard_a, records[::2])
        self._fill(shard_b, records[1::2])
        merged = QuarantineLog().merge(shard_b).merge(shard_a)

        assert merged.counts == serial.counts
        assert merged.total == serial.total
        assert len(serial.samples) == QUARANTINE_SAMPLE_CAP
        assert merged.digest() == serial.digest()

    def test_round_trip_preserves_non_finite_values(self):
        log = QuarantineLog()
        log.record(0, "a", 1, REASON_NON_FINITE_RTT, float("nan"))
        log.record(1, "b", 2, REASON_TRUNCATED, float("-inf"))
        log.record(2, "c", 3, REASON_NEGATIVE_RTT, -4.5, repaired=True)
        restored = QuarantineLog.from_obj(log.to_obj())
        assert restored.digest() == log.digest()
        values = [s.value for s in restored.samples]
        assert math.isnan(values[0])
        assert values[1] == float("-inf")
        assert restored.repaired == 1

    def test_from_obj_rejects_bad_documents(self):
        log = QuarantineLog()
        obj = log.to_obj()
        obj["record_schema_version"] = RECORD_SCHEMA_VERSION + 1
        with pytest.raises(ValidationError) as excinfo:
            QuarantineLog.from_obj(obj)
        assert excinfo.value.reason == "bad-schema-version"
        with pytest.raises(ValidationError) as excinfo:
            QuarantineLog.from_obj({"record_schema_version": None})
        assert excinfo.value.reason == "bad-schema-version"
        broken = log.to_obj()
        del broken["counts"]
        with pytest.raises(ValidationError) as excinfo:
            QuarantineLog.from_obj(broken)
        assert excinfo.value.reason == "bad-document"


class TestValidateDataset:
    @pytest.fixture(scope="class")
    def small_dataset(self):
        from repro.clients.population import ClientPopulationConfig
        from repro.simulation.campaign import CampaignRunner
        from repro.simulation.clock import SimulationCalendar
        from repro.simulation.scenario import Scenario, ScenarioConfig

        scenario = Scenario.build(
            ScenarioConfig(
                seed=31,
                population=ClientPopulationConfig(prefix_count=20),
                calendar=SimulationCalendar(num_days=1),
            )
        )
        return CampaignRunner(scenario).run()

    def test_clean_dataset_passes_untouched(self, small_dataset):
        before = small_dataset.digest()
        gate, removed = validate_dataset(small_dataset, "lenient")
        assert removed == 0
        assert gate.quarantine.total == 0
        assert gate.records_total > 0
        assert small_dataset.digest() == before

    def test_poisoned_aggregates_quarantined(self, small_dataset):
        import copy

        dataset = copy.deepcopy(small_dataset)
        day = dataset.ecs_aggregates.days[0]
        group, target_id, digest = next(
            dataset.ecs_aggregates.iter_day(day)
        )
        digest.add(float("nan"))
        digest.add(-12.0)
        dataset.measurement_count += 2
        before_count = dataset.measurement_count

        gate, removed = validate_dataset(dataset, "lenient")
        assert removed == 2
        assert gate.quarantine.counts == {
            REASON_NON_FINITE_RTT: 1,
            REASON_NEGATIVE_RTT: 1,
        }
        assert dataset.measurement_count == before_count - 2
        cleaned = dataset.ecs_aggregates._days[day][group][target_id]
        assert all(
            0.0 <= v <= MAX_PLAUSIBLE_RTT_MS for v in cleaned.values()
        )

    def test_poisoned_diff_rows_dropped(self, small_dataset):
        import copy

        dataset = copy.deepcopy(small_dataset)
        diffs = dataset.request_diffs
        rows_before = len(diffs)
        assert rows_before > 2
        diffs._anycast[0] = float("nan")
        diffs._best_unicast[1] = -50.0

        gate, _ = validate_dataset(dataset, "lenient")
        assert len(dataset.request_diffs) == rows_before - 2
        assert gate.quarantine.dropped == 2

    def test_strict_dataset_scan_raises(self, small_dataset):
        import copy

        dataset = copy.deepcopy(small_dataset)
        day = dataset.ecs_aggregates.days[0]
        _, _, digest = next(dataset.ecs_aggregates.iter_day(day))
        digest.add(float("inf"))
        with pytest.raises(ValidationError):
            validate_dataset(dataset, "strict")
