"""The stream vocabulary of the live service.

Two event shapes cross the ingestion boundary, mirroring the two data
planes of §3: ``BeaconEvent`` (one joined beacon measurement — the
client /24, the LDNS that resolved it, the target fetched, and the RTT)
and ``PassiveEvent`` (one passive-log count: queries a front-end served
for a client on a day).

:class:`StreamDigest` is the service's rolling dataset digest: an
incremental, order-insensitive fingerprint of every *admitted* event.
Each event hashes independently (SHA-256 of its canonical encoding) and
the per-event hashes combine by modular addition, so the digest is a
pure function of the admitted-event multiset — invariant under arrival
order and shard interleaving, mergeable across partial streams, and
O(1) to checkpoint.  That is exactly the property the chaos-parity
guarantee needs: a killed-and-resumed stream admits the same multiset,
so it reaches the same digest as an uninterrupted run, bit for bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Union

from repro.errors import MeasurementError

#: Modulus of the digest accumulator (one SHA-256 word).
_DIGEST_MODULUS = 1 << 256


@dataclass(frozen=True)
class BeaconEvent:
    """One joined beacon measurement arriving on the stream.

    Attributes:
        day: Campaign day index of the measurement.
        client_key: The client /24 (the ECS grouping key).
        ldns_id: The resolver that carried the lookup (the LDNS
            grouping key).  Static per client in this simulation, as
            the dataset's client records assert.
        target_id: ``'anycast'`` or a front-end id.
        rtt_ms: The measured RTT.
    """

    day: int
    client_key: str
    ldns_id: str
    target_id: str
    rtt_ms: float

    def encode(self) -> bytes:
        """Canonical byte encoding (the stream digest's hash input)."""
        return (
            f"beacon\x1f{self.day}\x1f{self.client_key}\x1f{self.ldns_id}"
            f"\x1f{self.target_id}\x1f{self.rtt_ms!r}"
        ).encode("utf-8")


@dataclass(frozen=True)
class PassiveEvent:
    """One passive-log count arriving on the stream.

    Attributes:
        day: Campaign day index.
        client_key: The client /24, or a coarse label when the source
            retains no per-client counts (bounded passive logs).
        frontend_id: The front-end that served the queries.
        count: Queries served.
    """

    day: int
    client_key: str
    frontend_id: str
    count: int

    def encode(self) -> bytes:
        """Canonical byte encoding (the stream digest's hash input)."""
        return (
            f"passive\x1f{self.day}\x1f{self.client_key}"
            f"\x1f{self.frontend_id}\x1f{self.count}"
        ).encode("utf-8")


StreamEvent = Union[BeaconEvent, PassiveEvent]


class StreamDigest:
    """Order-insensitive incremental digest of admitted stream events.

    Maintains ``sum(SHA-256(event)) mod 2**256`` plus an exact event
    count; :meth:`hexdigest` hashes the pair.  Addition commutes, so the
    digest depends only on the admitted-event *multiset* — two streams
    carrying the same events in any interleaving agree — and the whole
    state serializes to two integers, which is what lets a service
    checkpoint carry its dataset digest without retaining the dataset.
    """

    __slots__ = ("_sum", "_count")

    def __init__(self, accumulator: int = 0, count: int = 0) -> None:
        self._sum = accumulator % _DIGEST_MODULUS
        self._count = count

    @property
    def count(self) -> int:
        """Number of events folded in."""
        return self._count

    def update(self, event: StreamEvent) -> None:
        """Fold one admitted event into the digest."""
        value = int.from_bytes(
            hashlib.sha256(event.encode()).digest(), "big"
        )
        self._sum = (self._sum + value) % _DIGEST_MODULUS
        self._count += 1

    def merge(self, other: "StreamDigest") -> "StreamDigest":
        """Fold another partial stream's digest into this one."""
        self._sum = (self._sum + other._sum) % _DIGEST_MODULUS
        self._count += other._count
        return self

    def hexdigest(self) -> str:
        """The canonical fingerprint of the admitted-event multiset."""
        payload = f"{self._count}\x1f{self._sum:064x}".encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def copy(self) -> "StreamDigest":
        """An independent digest with identical state."""
        return StreamDigest(self._sum, self._count)

    def to_obj(self) -> Dict[str, Any]:
        """JSON-compatible form (service checkpoints)."""
        return {"sum": f"{self._sum:064x}", "count": self._count}

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "StreamDigest":
        """Rebuild a digest from :meth:`to_obj` output.

        Raises:
            MeasurementError: on a malformed document.
        """
        try:
            return cls(int(str(obj["sum"]), 16), int(obj["count"]))
        except (KeyError, TypeError, ValueError) as error:
            raise MeasurementError(
                f"malformed stream digest document ({error})"
            ) from error
