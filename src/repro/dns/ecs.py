"""EDNS client-subnet (ECS) support.

ECS [21] lets a resolver forward a portion of the client's IP address to
the authoritative nameserver, enabling per-prefix rather than per-LDNS
redirection decisions — the mechanism behind the paper's "EDNS-0"
prediction lines in Fig 9.  The authoritative side sees a truncated
client prefix; this module models the truncation and the grouping key it
induces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.ip import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class EcsOption:
    """An EDNS client-subnet option on a DNS query.

    Attributes:
        client_prefix: The (already truncated) client subnet the resolver
            chose to forward.
        source_prefix_length: How many bits the resolver forwarded; ECS
            deployments commonly use 24 for IPv4.
    """

    client_prefix: IPv4Prefix
    source_prefix_length: int = 24

    def __post_init__(self) -> None:
        if not 0 < self.source_prefix_length <= 32:
            raise ConfigurationError(
                f"ECS source prefix length {self.source_prefix_length} "
                "out of range"
            )
        if self.client_prefix.length != self.source_prefix_length:
            raise ConfigurationError(
                f"ECS prefix {self.client_prefix} does not match source "
                f"prefix length {self.source_prefix_length}"
            )

    @classmethod
    def for_address(
        cls, address: IPv4Address, source_prefix_length: int = 24
    ) -> "EcsOption":
        """Build the option a resolver would attach for a client address."""
        if not 0 < source_prefix_length <= 32:
            raise ConfigurationError(
                f"ECS source prefix length {source_prefix_length} out of range"
            )
        mask = (~0 << (32 - source_prefix_length)) & 0xFFFFFFFF
        network = IPv4Address(address.value & mask)
        return cls(
            client_prefix=IPv4Prefix(network, source_prefix_length),
            source_prefix_length=source_prefix_length,
        )

    @property
    def group_key(self) -> str:
        """The redirection-decision grouping key this option induces."""
        return str(self.client_prefix)


def ecs_key_for_prefix(prefix: IPv4Prefix) -> str:
    """Grouping key for a client /24 under ECS (identity for /24s).

    Raises:
        ConfigurationError: if the prefix is more specific than /24 — the
        paper's analyses never operate below /24 granularity.
    """
    if prefix.length > 24:
        raise ConfigurationError(
            f"client grouping uses /24 or shorter, got {prefix}"
        )
    return str(prefix)
