"""Tests for the paper-vs-measured comparison report."""

import pytest

from repro.analysis.report import (
    ComparisonRow,
    build_comparison,
    format_markdown,
)
from repro.clients.population import ClientPopulationConfig
from repro.core.study import AnycastStudy
from repro.simulation.clock import SimulationCalendar
from repro.simulation.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def rows():
    study = AnycastStudy(
        ScenarioConfig(
            seed=99,
            population=ClientPopulationConfig(prefix_count=120),
            calendar=SimulationCalendar(num_days=3),
        )
    )
    return build_comparison(study)


def test_every_experiment_covered(rows):
    experiments = {row.experiment for row in rows}
    expected = {
        "Fig 1", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6", "Fig 7",
        "Fig 8", "Fig 9", "§4 table", "Footnote 1",
    }
    assert expected <= experiments


def test_rows_have_values(rows):
    for row in rows:
        assert row.paper_value
        assert row.measured_value
        assert row.verdict in ("reproduced", "deviates", "—")


def test_informational_rows_have_dash_verdict(rows):
    footnote = [row for row in rows if row.experiment == "Footnote 1"]
    assert footnote and footnote[0].verdict == "—"


def test_markdown_rendering(rows):
    text = format_markdown(rows, dataset_summary="summary line")
    assert text.startswith("| Experiment |")
    assert "summary line" in text
    assert text.count("\n") >= len(rows)
    # Every row rendered.
    for row in rows:
        assert row.paper_value in text


def test_comparison_row_verdicts():
    ok = ComparisonRow("F", "m", "p", "v", True)
    bad = ComparisonRow("F", "m", "p", "v", False)
    info = ComparisonRow("F", "m", "p", "v", None)
    assert ok.verdict == "reproduced"
    assert bad.verdict == "deviates"
    assert info.verdict == "—"
