"""Run reports and run manifests: telemetry for humans and for CI.

Two renderings of a :class:`~repro.telemetry.snapshot.TelemetrySnapshot`:

* :func:`format_run_report` — the ``repro telemetry`` CLI's output: the
  hierarchical phase-time tree (with each phase's share of its parent
  and the tree's coverage of the root), the top counters, histogram
  percentiles, and gauges.
* :func:`build_run_manifest` / :func:`write_run_manifest` — a compact
  JSON manifest (seed, config digest, engine, dataset digest, per-phase
  seconds) written alongside every exported dataset and benchmark
  report, so a result file is self-describing: which configuration
  produced it, and where its wall-clock went.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.registry import Histogram
from repro.telemetry.snapshot import TelemetrySnapshot

#: Format marker written into every manifest.
MANIFEST_FORMAT_VERSION = 1

#: Counters the report surfaces first, then the rest by value.
_HEADLINE_COUNTERS = (
    "campaign.beacons_total",
    "campaign.measurements_total",
    "campaign.queries_total",
)


def _rebuild_histogram(name: str, state: Dict[str, Any]) -> Histogram:
    histogram = Histogram(
        name,
        start=state["start"],
        growth=state["growth"],
        bucket_count=state["bucket_count"],
    )
    histogram.absorb(state["counts"], state["sum"], state["observations"])
    return histogram


def _render_span_tree(
    snapshot: TelemetrySnapshot,
    path: str,
    depth: int,
    parent_seconds: Optional[float],
    lines: List[str],
) -> None:
    record = snapshot.spans[path]
    name = path.rsplit("/", 1)[-1]
    share = (
        f"{record.seconds / parent_seconds:6.1%}"
        if parent_seconds and parent_seconds > 0
        else "      "
    )
    count = f"x{record.count}" if record.count > 1 else ""
    lines.append(
        f"  {'  ' * depth}{name:<{max(28 - 2 * depth, 8)}s}"
        f"{record.seconds:9.3f}s  {share}  {count}"
    )
    for child_path, _ in snapshot.span_children(path):
        _render_span_tree(
            snapshot, child_path, depth + 1, record.seconds, lines
        )


def format_run_report(snapshot: TelemetrySnapshot, top: int = 12) -> str:
    """Pretty-print a snapshot: phase tree, counters, percentiles."""
    context = snapshot.context
    header_bits = [
        f"{key}={context[key]}"
        for key in ("seed", "engine", "workers", "config_hash")
        if key in context and context[key] != ""
    ]
    lines = ["run report" + (": " + " ".join(header_bits) if header_bits else "")]

    if snapshot.spans:
        lines.append("")
        lines.append("phase tree (seconds sum across shards):")
        for root_path, root in snapshot.span_roots():
            _render_span_tree(snapshot, root_path, 0, None, lines)
            if snapshot.span_children(root_path):
                lines.append(
                    f"  {root_path}: children cover "
                    f"{snapshot.phase_coverage(root_path):.1%} of "
                    f"{root.seconds:.3f}s"
                )

    if snapshot.counters:
        lines.append("")
        lines.append("top counters:")
        ordered = [
            name for name in _HEADLINE_COUNTERS if name in snapshot.counters
        ]
        ordered += sorted(
            (n for n in snapshot.counters if n not in _HEADLINE_COUNTERS),
            key=lambda n: (-snapshot.counters[n], n),
        )
        for name in ordered[:top]:
            lines.append(f"  {name:<44s}{snapshot.counters[name]:>16,.0f}")
        if len(ordered) > top:
            lines.append(f"  ... and {len(ordered) - top} more")

    if snapshot.histograms:
        lines.append("")
        lines.append("histograms (p50 / p90 / p99):")
        for name in sorted(snapshot.histograms):
            histogram = _rebuild_histogram(name, snapshot.histograms[name])
            if histogram.count == 0:
                continue
            p50, p90, p99 = (
                histogram.percentile(q) for q in (50.0, 90.0, 99.0)
            )
            mean = histogram.sum / histogram.count
            lines.append(
                f"  {name:<36s} n={histogram.count:<9,d} "
                f"mean={mean:10.4g}  p50={p50:10.4g}  "
                f"p90={p90:10.4g}  p99={p99:10.4g}"
            )

    if snapshot.gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(snapshot.gauges):
            lines.append(
                f"  {name:<44s}{snapshot.gauges[name]['value']:>16.4g}"
            )

    return "\n".join(lines)


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------


def manifest_path_for(artifact_path: str) -> str:
    """The manifest path accompanying a dataset/report file."""
    for suffix in (".json", ".txt"):
        if artifact_path.endswith(suffix):
            return artifact_path[: -len(suffix)] + ".manifest.json"
    return artifact_path + ".manifest.json"


def build_run_manifest(
    snapshot: TelemetrySnapshot,
    dataset: Optional[object] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the self-describing run manifest for a snapshot.

    Args:
        snapshot: The run's merged telemetry.
        dataset: Optional :class:`~repro.simulation.dataset
            .StudyDataset`; contributes its canonical ``digest()`` and
            counts.
        extra: Additional fields to record verbatim (e.g. the artifact
            the manifest accompanies).
    """
    context = snapshot.context
    manifest: Dict[str, Any] = {
        "format_version": MANIFEST_FORMAT_VERSION,
        "seed": context.get("seed"),
        "engine": context.get("engine"),
        "workers": context.get("workers"),
        "config_hash": context.get("config_hash"),
        "beacon_count": int(
            snapshot.counters.get("campaign.beacons_total", 0)
        ),
        "measurement_count": int(
            snapshot.counters.get("campaign.measurements_total", 0)
        ),
        "wall_seconds": snapshot.gauges.get(
            "campaign.wall_seconds", {}
        ).get("value"),
        "phase_seconds": {
            path: record.seconds
            for path, record in sorted(snapshot.spans.items())
        },
        "phase_coverage": {
            path: snapshot.phase_coverage(path)
            for path, _ in snapshot.span_roots()
        },
    }
    if snapshot.trace is not None and snapshot.trace.events:
        manifest["trace"] = {
            "event_count": len(snapshot.trace.events),
            "lanes": sorted(
                {event.shard for event in snapshot.trace.events}
            ),
            "digest": snapshot.trace.digest(),
        }
    sidecar = {
        name: int(value)
        for name, value in sorted(snapshot.counters.items())
        if name.startswith("columnar.sidecar_")
    }
    if not sidecar:
        # The sidecar loader runs without a Telemetry handle (analysis
        # processes have no campaign), so its counters are process
        # globals; imported locally to keep telemetry import-light.
        from repro.measurement.columnar import SIDECAR_STATS

        sidecar = {
            name: value
            for name, value in SIDECAR_STATS.as_dict().items()
            if value
        }
    if sidecar:
        manifest["columnar"] = sidecar
    if "validate.records_total" in snapshot.counters:
        reason_prefix = "validate.quarantined."
        manifest["validation"] = {
            "records_total": int(
                snapshot.counters["validate.records_total"]
            ),
            "quarantined_total": int(
                snapshot.counters.get("validate.quarantined_total", 0)
            ),
            "repaired_total": int(
                snapshot.counters.get("validate.repaired_total", 0)
            ),
            "quarantined_by_reason": {
                name[len(reason_prefix):-len("_total")]: int(value)
                for name, value in sorted(snapshot.counters.items())
                if name.startswith(reason_prefix)
            },
        }
    if dataset is not None:
        manifest["dataset_digest"] = dataset.digest()
        manifest["dataset_beacon_count"] = dataset.beacon_count
        manifest["dataset_measurement_count"] = dataset.measurement_count
        # Degradation record: a campaign that lost shards (allow_partial)
        # declares exactly which client index ranges are absent, so a
        # partial artifact can never pass as a complete one.
        missing = getattr(dataset, "missing_ranges", None)
        if callable(missing):
            manifest["missing_client_ranges"] = [
                [start, stop] for start, stop in missing()
            ]
            manifest["client_coverage"] = dataset.coverage_fraction
        # Load-management record: per-front-end peak utilization and
        # shed fractions, withdrawal days, and the overload drills that
        # ran — present only for capacity-enabled campaigns.
        load_summary = getattr(dataset, "load_summary", None)
        if load_summary is not None:
            manifest["load"] = load_summary
    if extra:
        manifest.update(extra)
    return manifest


def write_run_manifest(
    path: str,
    snapshot: TelemetrySnapshot,
    dataset: Optional[object] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write :func:`build_run_manifest`'s output as JSON; returns it."""
    manifest = build_run_manifest(snapshot, dataset=dataset, extra=extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest
