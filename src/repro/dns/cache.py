"""TTL cache, as run by an LDNS resolver.

The beacon methodology (§3.2.2) removes DNS lookup latency from
measurements by issuing a warm-up request first and setting TTLs "longer
than the duration of the beacon", so the measured fetch hits the resolver
cache.  This cache provides exactly the semantics that trick relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Optional, Tuple, TypeVar

from repro.errors import ConfigurationError

V = TypeVar("V")


@dataclass(frozen=True)
class _Entry(Generic[V]):
    value: V
    expires_at: float


class TtlCache(Generic[V]):
    """A time-indexed cache with per-entry TTLs.

    Time is explicit (simulated seconds), not wall-clock: callers pass
    ``now`` so campaigns replay deterministically.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, _Entry[V]] = {}
        self._hits = 0
        self._misses = 0

    def put(self, key: str, value: V, now: float, ttl: float) -> None:
        """Insert/replace an entry valid until ``now + ttl``.

        Raises:
            ConfigurationError: for a non-positive TTL.
        """
        if ttl <= 0:
            raise ConfigurationError(f"TTL must be positive, got {ttl}")
        self._entries[key] = _Entry(value=value, expires_at=now + ttl)

    def get(self, key: str, now: float) -> Optional[V]:
        """The cached value, or ``None`` on a miss or expiry.

        Expired entries are evicted on access.
        """
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        if now >= entry.expires_at:
            del self._entries[key]
            self._misses += 1
            return None
        self._hits += 1
        return entry.value

    def contains(self, key: str, now: float) -> bool:
        """Whether a live entry exists (does not count as hit/miss)."""
        entry = self._entries.get(key)
        return entry is not None and now < entry.expires_at

    def purge_expired(self, now: float) -> int:
        """Drop all expired entries; returns how many were dropped."""
        dead = [k for k, e in self._entries.items() if now >= e.expires_at]
        for key in dead:
            del self._entries[key]
        return len(dead)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> Tuple[int, int]:
        """(hits, misses) counters."""
        return (self._hits, self._misses)
