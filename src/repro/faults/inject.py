"""Fault injection sites: turning a compiled plan into live failures.

The :class:`WorkerFaultInjector` carries *one* shard attempt's scheduled
fault (handed out by the coordinator from a
:class:`~repro.faults.plan.CompiledFaultPlan`) into the worker, and
fires it at the matching site:

* ``CRASH`` — :meth:`WorkerFaultInjector.on_worker_start`, before any
  work (the abort is modeled as a raised
  :class:`InjectedCrashError`, which crosses the process boundary
  cleanly — a hard ``os._exit`` would wedge the worker pool, and the
  coordinator treats both identically: attempt failed, retry);
* ``EXCEPTION`` — :meth:`WorkerFaultInjector.on_day`, at the start of a
  seed-derived calendar day, so the transient error lands mid-run;
* ``HANG`` — :meth:`WorkerFaultInjector.hang_before_return`, a bounded
  sleep after the shard's work completes, long enough for a configured
  shard timeout to fire first;
* ``CORRUPT`` — :meth:`WorkerFaultInjector.transform_payload`, flipping
  a byte of the serialized shard payload so the coordinator's
  content-hash check rejects it;
* ``MERGE`` — checked by the coordinator itself via
  :attr:`WorkerFaultInjector.fires_on_merge` when folding the shard's
  dataset into the campaign result.

Injected errors derive from :class:`repro.errors.FaultError`, so the
resilient executor can tell simulated faults from organic bugs in its
accounting while retrying both the same way.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.errors import FaultError
from repro.faults.plan import CompiledRecordFaultPlan, FaultKind
from repro.rand import derive_seed

#: Milliseconds a ``record-clock-skew`` fault subtracts from an RTT — a
#: large backwards clock step, far outside any plausible negative jitter.
CLOCK_SKEW_STEP_MS = 10_000_000.0


class InjectedFaultError(FaultError):
    """Base class for failures raised by fault injection."""


class InjectedCrashError(InjectedFaultError):
    """A simulated worker-process crash at shard start."""


class InjectedTransientError(InjectedFaultError):
    """A simulated transient failure mid-campaign (recoverable by retry)."""


class InjectedMergeError(InjectedFaultError):
    """A simulated failure while merging a shard into the campaign result."""


def corrupt_payload(payload: bytes) -> bytes:
    """Flip one byte in the middle of a serialized payload.

    Deterministic (always the same byte), guaranteed to change the
    payload's content hash, and cheap — the point is to exercise the
    coordinator's integrity check, not to model a particular bit-rot
    distribution.
    """
    if not payload:
        return b"\xff"
    corrupted = bytearray(payload)
    corrupted[len(corrupted) // 2] ^= 0xFF
    return bytes(corrupted)


class WorkerFaultInjector:
    """Fires one shard attempt's scheduled fault at the right site.

    Args:
        kind: The fault scheduled for this ``(shard, attempt)``, or
            ``None`` for a clean attempt (every site is then a no-op).
        seed: Scenario seed; derives the ``EXCEPTION`` firing day.
        shard_index: The shard this injector rides along with.
        attempt: The attempt number (0 = first try).
        hang_seconds: Sleep duration for ``HANG``.
        sleep: Sleep function, injectable for tests.
    """

    def __init__(
        self,
        kind: Optional[FaultKind],
        seed: int,
        shard_index: int,
        attempt: int,
        hang_seconds: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.kind = kind
        self.seed = seed
        self.shard_index = shard_index
        self.attempt = attempt
        self.hang_seconds = hang_seconds
        self._sleep = sleep

    def _describe(self) -> str:
        return f"shard {self.shard_index} attempt {self.attempt}"

    def on_worker_start(self) -> None:
        """``CRASH`` site: abort before the shard does any work."""
        if self.kind is FaultKind.CRASH:
            raise InjectedCrashError(
                f"injected worker crash ({self._describe()})"
            )

    def on_day(self, day: int, num_days: int) -> None:
        """``EXCEPTION`` site: raise at the start of a derived day."""
        if self.kind is not FaultKind.EXCEPTION:
            return
        target = derive_seed(
            self.seed, "fault-day", self.shard_index, self.attempt
        ) % max(num_days, 1)
        if day == target:
            raise InjectedTransientError(
                f"injected transient failure on day {day} "
                f"({self._describe()})"
            )

    def hang_before_return(self) -> None:
        """``HANG`` site: stall long enough for a shard timeout to fire."""
        if self.kind is FaultKind.HANG:
            self._sleep(self.hang_seconds)

    def transform_payload(self, payload: bytes) -> bytes:
        """``CORRUPT`` site: damage the serialized shard payload."""
        if self.kind is FaultKind.CORRUPT:
            return corrupt_payload(payload)
        return payload

    @property
    def fires_on_merge(self) -> bool:
        """Whether the coordinator should fail this shard's merge."""
        return self.kind is FaultKind.MERGE


class RecordFaultInjector:
    """Dirties individual measurement records per a compiled record plan.

    Where :class:`WorkerFaultInjector` fails *processes*, this injector
    damages *data*: for each ``(day, client)`` cell the plan targets, it
    picks record slots within that cell's fetch block and substitutes the
    kind's dirty value.  Slot choice depends only on the seed and the
    cell — not on engine or sharding — and the dirty values are exactly
    the shapes :mod:`repro.measurement.validate` classifies, so a
    lenient-mode campaign over a dirtied stream quarantines precisely
    the planted records.
    """

    def __init__(self, compiled: CompiledRecordFaultPlan) -> None:
        self.compiled = compiled
        #: Records actually dirtied so far, per kind value.
        self.planted: Dict[str, int] = {}

    @property
    def empty(self) -> bool:
        """True when the plan schedules no record faults."""
        return self.compiled.empty

    @staticmethod
    def dirty_value(kind: FaultKind, value: float) -> float:
        """The damaged value a fault kind turns an RTT into."""
        if kind is FaultKind.RECORD_CORRUPT:
            return float("nan")
        if kind is FaultKind.RECORD_CLOCK_SKEW:
            return value - CLOCK_SKEW_STEP_MS
        if kind is FaultKind.RECORD_TRUNCATE:
            return float("-inf")
        raise ValueError(f"not a record fault kind: {kind!r}")

    def slots_for(
        self, day: int, client_index: int, n_records: int
    ) -> Dict[int, FaultKind]:
        """Which record slots to dirty in one (day, client) fetch block.

        ``client_index`` indexes the full population and ``n_records``
        is the block's flat record count (``beacons * targets``) — both
        identical across engines and shard layouts, so the returned
        ``{record_index: kind}`` map is too.  Slot derivation excludes
        the kind (only ``spec_index``/``instance`` disambiguate), so
        same-shape plans of different kinds dirty the same slots.
        Collisions probe linearly; at most ``n_records`` slots dirty.
        """
        instances = self.compiled.instances_for(day, client_index)
        if not instances or n_records <= 0:
            return {}
        slots: Dict[int, FaultKind] = {}
        for kind, spec_index, instance in instances:
            if len(slots) >= n_records:
                break
            slot = derive_seed(
                self.compiled.seed, "record-slot", day, client_index,
                spec_index, instance,
            ) % n_records
            while slot in slots:
                slot = (slot + 1) % n_records
            slots[slot] = kind
            self.planted[kind.value] = self.planted.get(kind.value, 0) + 1
        return slots
