"""Tests for the §4 CDN size catalog."""

from repro.cdn.catalog import anycast_cdns, catalog, non_outliers


def test_explicit_counts_from_paper():
    by_name = {e.name: e for e in catalog(include_bing=False)}
    assert by_name["CDNetworks"].locations == 161
    assert by_name["SkyparkCDN"].locations == 119
    assert by_name["Level3"].locations == 62
    assert by_name["CloudFlare"].locations == 43
    assert by_name["CacheFly"].locations == 41
    assert by_name["Amazon CloudFront"].locations == 37
    assert by_name["EdgeCast"].locations == 31
    assert by_name["CDNify"].locations == 17


def test_outliers_flagged():
    outliers = {e.name for e in catalog(include_bing=False) if e.is_outlier}
    assert outliers == {"Google", "Akamai", "ChinaNetCenter", "ChinaCache"}


def test_anycast_cdns_match_section2():
    # §2 names Cloudflare, CacheFly, EdgeCast, and Microsoft as anycast CDNs.
    names = {e.name for e in anycast_cdns(include_bing=True)}
    assert {"CloudFlare", "CacheFly", "EdgeCast"} <= names
    assert any("Bing" in n for n in names)


def test_non_outlier_range_matches_paper():
    rows = non_outliers(include_bing=False)
    counts = [e.locations for e in rows]
    # §4: the remaining CDNs run between 17 (CDNify) and 161 (CDNetworks).
    assert min(counts) == 17
    assert max(counts) == 161


def test_bing_entry_uses_given_count():
    rows = catalog(include_bing=True, bing_locations=64)
    bing = next(e for e in rows if "Bing" in e.name)
    assert bing.locations == 64
    assert bing.is_anycast


def test_sorted_descending():
    rows = catalog()
    counts = [e.locations for e in rows]
    assert counts == sorted(counts, reverse=True)


def test_bing_is_level3_scale():
    """The measured CDN should rank near Level3/MaxCDN among non-outliers."""
    rows = [e for e in non_outliers(include_bing=True, bing_locations=64)]
    names_sorted = [e.name for e in rows]
    bing_index = next(i for i, n in enumerate(names_sorted) if "Bing" in n)
    level3_index = names_sorted.index("Level3")
    assert abs(bing_index - level3_index) <= 2
