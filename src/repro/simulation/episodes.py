"""Poor-path episodes: transient anycast latency inflation.

Figs 5 and 6 show that beyond the structurally bad routes, poor anycast
performance comes and goes: ~19% of /24s see *some* unicast improvement on
an average day, but ~60% of ever-poor prefixes are poor on only one day of
the month.  The transient component is modeled as episodes of congestion or
misrouting on a client's anycast path: an episode starts with a small daily
probability, lasts a geometric number of days (heavy one-day mass), and
inflates anycast RTTs by a lognormal amount while active.

Most episodes affect the anycast path — the unicast beacons to specific
front-ends take different routes, which is exactly why the paper's
methodology can see the problem.  A configurable minority instead hits one
specific unicast path, which is what makes yesterday's prediction
occasionally *worse* than anycast today (the left tail of Fig 9).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.clients.population import ClientPrefix
from repro.rand import derive_rng
from repro.simulation.clock import SimulationCalendar


class EpisodeScope(enum.Enum):
    """Which path an episode degrades."""

    ANYCAST = "anycast"
    UNICAST = "unicast"


@dataclass(frozen=True)
class EpisodeEffect:
    """An active episode's effect for one client-day.

    Attributes:
        inflation_ms: Added latency while the episode is active.
        scope: Anycast path, or one specific unicast path.
        selector: Uniform [0, 1) value identifying *which* unicast path is
            affected — the campaign maps it onto the client's candidate
            front-ends, keeping the affected path stable across the
            episode's days without this module knowing about front-ends.
    """

    inflation_ms: float
    scope: EpisodeScope
    selector: float

    def __post_init__(self) -> None:
        if self.inflation_ms < 0:
            raise ConfigurationError("inflation_ms must be non-negative")
        if not 0.0 <= self.selector < 1.0:
            raise ConfigurationError("selector must be in [0, 1)")


@dataclass(frozen=True)
class EpisodeConfig:
    """Episode process parameters.

    Attributes:
        daily_start_probability: Chance an idle client starts an episode
            on a given day.
        continue_probability: Chance an active episode survives into the
            next day (geometric duration; mean = 1/(1-p) days).
        inflation_median_ms: Median added latency while active.
        inflation_sigma: Lognormal shape of the inflation draw.
        susceptible_fraction: Fraction of clients that can have episodes
            at all (paths through congested or fragile segments).
        unicast_scope_fraction: Fraction of episodes that degrade one
            specific unicast path instead of the anycast path.
    """

    daily_start_probability: float = 0.02
    continue_probability: float = 0.25
    inflation_median_ms: float = 35.0
    inflation_sigma: float = 0.9
    susceptible_fraction: float = 0.7
    unicast_scope_fraction: float = 0.45

    def __post_init__(self) -> None:
        for name in (
            "daily_start_probability",
            "continue_probability",
            "susceptible_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {value}")
        if not 0.0 <= self.unicast_scope_fraction <= 1.0:
            raise ConfigurationError(
                "unicast_scope_fraction must be in [0, 1]"
            )
        if self.inflation_median_ms <= 0:
            raise ConfigurationError("inflation_median_ms must be positive")
        if self.inflation_sigma < 0:
            raise ConfigurationError("inflation_sigma must be non-negative")


class PoorPathEpisodeModel:
    """Evolves per-client episodes day by day.

    Like :class:`repro.simulation.churn.RouteChurnModel`, days advance in
    order; the model tracks the active inflation per client.
    """

    def __init__(
        self,
        clients: Sequence[ClientPrefix],
        calendar: SimulationCalendar,
        config: Optional[EpisodeConfig] = None,
        seed: int = 0,
    ) -> None:
        self._config = config or EpisodeConfig()
        self._calendar = calendar
        self._rng = derive_rng(seed, "episodes")
        cfg = self._config
        self._susceptible: Dict[str, bool] = {
            client.key: self._rng.random() < cfg.susceptible_fraction
            for client in clients
        }
        #: client_key -> active effect (absent = idle)
        self._active: Dict[str, EpisodeEffect] = {}
        self._next_day = 0

    @property
    def config(self) -> EpisodeConfig:
        """The episode parameters."""
        return self._config

    def is_susceptible(self, client_key: str) -> bool:
        """Whether a client can ever have episodes."""
        return self._susceptible[client_key]

    def inflations_for_day(self, day: int) -> Dict[str, EpisodeEffect]:
        """Evolve into ``day`` and return the active episode effects.

        Clients absent from the result have no active episode.  Must be
        called with consecutive day indices starting at 0.  An episode's
        effect (inflation, scope, selector) is constant for its lifetime.
        """
        if day != self._next_day:
            raise ConfigurationError(
                f"episodes must advance day by day (expected "
                f"{self._next_day}, got {day})"
            )
        self._next_day += 1
        cfg = self._config
        rng = self._rng
        mu = math.log(cfg.inflation_median_ms)

        # Existing episodes either continue (same effect) or end.
        surviving: Dict[str, EpisodeEffect] = {
            key: effect
            for key, effect in self._active.items()
            if rng.random() < cfg.continue_probability
        }
        # Idle susceptible clients may start a new episode.
        for client_key, susceptible in self._susceptible.items():
            if not susceptible or client_key in surviving:
                continue
            if rng.random() < cfg.daily_start_probability:
                scope = (
                    EpisodeScope.UNICAST
                    if rng.random() < cfg.unicast_scope_fraction
                    else EpisodeScope.ANYCAST
                )
                surviving[client_key] = EpisodeEffect(
                    inflation_ms=rng.lognormvariate(mu, cfg.inflation_sigma),
                    scope=scope,
                    selector=rng.random(),
                )
        self._active = surviving
        return dict(surviving)
