"""Decompose structural anycast penalty by cause."""
import numpy as np
from collections import Counter
from repro.simulation import Scenario, ScenarioConfig
from repro.clients.population import ClientPopulationConfig
from repro.measurement.beacon import BeaconTargetSelector
from repro.net.topology import EgressPolicy

cfg = ScenarioConfig(population=ClientPopulationConfig(prefix_count=600))
s = Scenario.build(cfg)
sel = BeaconTargetSelector(s.network.frontends, s.geolocation)
lat = s.latency_model
topo = s.topology
rows = []
for c in s.clients:
    p = s.network.anycast_path(c.asn, c.home_metro, c.location)
    base_any = lat.baseline_rtt_ms(p.path_km, p.backbone_km, p.as_hops, c.access_delay_ms)
    best, best_fe = None, None
    for fe in sel.candidates(c.ldns_id):
        up = s.network.unicast_path(fe, c.asn, c.home_metro, c.location)
        b = lat.baseline_rtt_ms(up.path_km, up.backbone_km, up.as_hops, c.access_delay_ms)
        if best is None or b < best: best, best_fe = b, fe
    d = base_any - best
    as_ = topo.get(c.asn)
    cold_acc = as_.egress_policy is EgressPolicy.COLD_POTATO
    cold_transit = any(topo.get(a).egress_policy is EgressPolicy.COLD_POTATO for a in p.route.as_path[1:-1])
    peer_direct = len(p.route.as_path) == 2
    rows.append((d, cold_acc, cold_transit, peer_direct, p.backbone_km > 0, p.as_hops, p.frontend.frontend_id == best_fe))
d = np.array([r[0] for r in rows])
def frac(mask, thr):
    m = np.array(mask); 
    return (d[m]>=thr).mean() if m.any() else 0, m.mean()
for name, mask in [
    ("cold_access", [r[1] for r in rows]),
    ("cold_transit_on_path", [r[2] for r in rows]),
    ("direct_peer", [r[3] for r in rows]),
    ("via_transit(no cold)", [not r[3] and not r[2] and not r[1] for r in rows]),
    ("backbone_leg", [r[4] for r in rows]),
    ("same_fe_as_best", [r[6] for r in rows]),
]:
    f1, share = frac(mask, 1); f10, _ = frac(mask, 10)
    print("%-22s share=%.2f  >=1ms %.2f  >=10ms %.2f" % (name, share, f1, f10))
same = np.array([r[6] for r in rows])
print("overall >=1 %.2f; among same-FE pairs: >=1 %.2f (diff should be ~hops only)" % ((d>=1).mean(), (d[same]>=1).mean()))
hops = np.array([r[5] for r in rows]); print("hops dist:", Counter(hops.tolist()))
