"""Perf-history ledger: per-run records and a regression gate.

``BENCH_*.json`` trajectory stayed empty for six PRs because nothing
recorded history.  This module closes the loop: every instrumented run
can append a :class:`PerfRecord` (engine, beacons/s, phase splits, peak
RSS, dataset digest) to a ``BENCH_history.json`` ledger, and
``tools/bench_history.py`` compares the newest record per group against
a rolling baseline, failing CI on >20% regressions once enough history
exists to compare.

Records group by ``(label, engine, host fingerprint, config hash)`` —
comparing a 2-core CI runner against a 32-core laptop, or a 3-day bench
against a 1-day smoke, would only produce noise.  Groups with fewer
than two records pass the check with a note, which is exactly the
"non-blocking until two records exist" CI semantics the gate wants.

Stdlib only: the ledger uses its own temp-file + ``os.replace`` atomic
write rather than :mod:`repro.measurement.storage` to keep
``repro.telemetry`` import-light and cycle-free.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import tempfile
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Bump when the ledger layout changes incompatibly.
HISTORY_FORMAT_VERSION = 1

#: Default ledger filename, mirroring the BENCH_* convention.
DEFAULT_HISTORY_NAME = "BENCH_history.json"

#: Phase deltas smaller than this are noise, not regressions.
DEFAULT_NOISE_FLOOR_SECONDS = 0.05

#: Relative slowdown that fails the gate (rate drop or phase growth).
DEFAULT_THRESHOLD = 0.20

#: How many prior records form the rolling baseline.
DEFAULT_BASELINE_WINDOW = 5


def host_fingerprint() -> str:
    """A coarse host identity so baselines never cross machines."""
    return (
        f"{platform.system()}-{platform.machine()}-cpu{os.cpu_count() or 0}"
    )


@dataclass(frozen=True)
class PerfRecord:
    """One run's performance summary, as appended to the ledger."""

    label: str
    engine: str
    host: str
    config_hash: str
    recorded_at: str
    wall_seconds: float
    beacons_per_second: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    peak_rss_bytes: int = 0
    dataset_digest: Optional[str] = None

    def group_key(self) -> Tuple[str, str, str, str]:
        """Records compare only within the same group."""
        return (self.label, self.engine, self.host, self.config_hash)

    def to_obj(self) -> Dict[str, Any]:
        """A JSON-compatible document for this record."""
        obj: Dict[str, Any] = {
            "label": self.label,
            "engine": self.engine,
            "host": self.host,
            "config_hash": self.config_hash,
            "recorded_at": self.recorded_at,
            "wall_seconds": self.wall_seconds,
            "beacons_per_second": self.beacons_per_second,
            "phase_seconds": dict(self.phase_seconds),
            "peak_rss_bytes": self.peak_rss_bytes,
        }
        if self.dataset_digest is not None:
            obj["dataset_digest"] = self.dataset_digest
        return obj

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "PerfRecord":
        """Rebuild a record from :meth:`to_obj` output."""
        return cls(
            label=str(obj["label"]),
            engine=str(obj["engine"]),
            host=str(obj["host"]),
            config_hash=str(obj["config_hash"]),
            recorded_at=str(obj["recorded_at"]),
            wall_seconds=float(obj["wall_seconds"]),
            beacons_per_second=float(obj["beacons_per_second"]),
            phase_seconds={
                str(k): float(v)
                for k, v in dict(obj.get("phase_seconds", {})).items()
            },
            peak_rss_bytes=int(obj.get("peak_rss_bytes", 0)),
            dataset_digest=obj.get("dataset_digest"),
        )


def utc_timestamp() -> str:
    """ISO-8601 UTC timestamp for :attr:`PerfRecord.recorded_at`."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def record_from_snapshot(
    snapshot: Any,
    label: str,
    *,
    engine: Optional[str] = None,
    config_hash: Optional[str] = None,
    dataset: Any = None,
    wall_seconds: Optional[float] = None,
    recorded_at: Optional[str] = None,
) -> PerfRecord:
    """Build a :class:`PerfRecord` from a :class:`TelemetrySnapshot`.

    Wall time comes from the ``campaign.wall_seconds`` gauge (or the
    explicit override), throughput from ``campaign.beacons_total`` over
    that wall time, phase splits from every span path, and peak RSS
    from the ``campaign.peak_rss_bytes`` gauge.
    """
    gauges = snapshot.gauges
    if wall_seconds is None:
        wall_entry = gauges.get("campaign.wall_seconds")
        wall_seconds = float(wall_entry["value"]) if wall_entry else 0.0
    beacons = snapshot.counters.get("campaign.beacons_total", 0)
    rate = beacons / wall_seconds if wall_seconds > 0 else 0.0
    rss_entry = gauges.get("campaign.peak_rss_bytes")
    peak_rss = int(rss_entry["value"]) if rss_entry else 0
    phase_seconds = {
        path: float(record.seconds)
        for path, record in sorted(snapshot.spans.items())
    }
    return PerfRecord(
        label=label,
        engine=engine or snapshot.context.get("engine", "unknown"),
        host=host_fingerprint(),
        config_hash=(
            config_hash
            or snapshot.context.get("config_hash", "unknown")
        ),
        recorded_at=recorded_at or utc_timestamp(),
        wall_seconds=wall_seconds,
        beacons_per_second=rate,
        phase_seconds=phase_seconds,
        peak_rss_bytes=peak_rss,
        dataset_digest=dataset.digest() if dataset is not None else None,
    )


class BenchHistory:
    """The append-only ledger behind ``BENCH_history.json``."""

    def __init__(self, records: Optional[List[PerfRecord]] = None) -> None:
        self.records: List[PerfRecord] = list(records or [])

    @classmethod
    def load(cls, path: str) -> "BenchHistory":
        """Load a ledger; a missing file is an empty ledger."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                obj = json.load(handle)
        except FileNotFoundError:
            return cls()
        version = obj.get("format_version")
        if version != HISTORY_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported history format_version {version!r}"
            )
        return cls(
            [PerfRecord.from_obj(item) for item in obj.get("records", [])]
        )

    def append(self, record: PerfRecord) -> None:
        """Add one record to the end of the ledger."""
        self.records.append(record)

    def extend(self, records: Sequence[PerfRecord]) -> None:
        """Add records to the end of the ledger, in order."""
        self.records.extend(records)

    def to_obj(self) -> Dict[str, Any]:
        """The ledger's JSON document form."""
        return {
            "format_version": HISTORY_FORMAT_VERSION,
            "records": [record.to_obj() for record in self.records],
        }

    def save(self, path: str) -> None:
        """Atomic write (temp file + ``os.replace``)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".bench-history-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_obj(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def groups(self) -> Dict[Tuple[str, str, str, str], List[PerfRecord]]:
        """Records partitioned by group key, ledger order preserved."""
        grouped: Dict[Tuple[str, str, str, str], List[PerfRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.group_key(), []).append(record)
        return grouped

    def baseline_for(
        self, record: PerfRecord, window: int = DEFAULT_BASELINE_WINDOW
    ) -> List[PerfRecord]:
        """The rolling baseline: up to ``window`` prior group records."""
        prior = [
            other
            for other in self.records
            if other is not record and other.group_key() == record.group_key()
        ]
        return prior[-window:]


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of checking one record against its baseline."""

    record: PerfRecord
    baseline_size: int
    failures: Tuple[str, ...] = ()
    notes: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no regression was detected."""
        return not self.failures

    @property
    def comparable(self) -> bool:
        """True when a baseline existed to compare against."""
        return self.baseline_size > 0


def compare_records(
    record: PerfRecord,
    baseline: Sequence[PerfRecord],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_seconds: float = DEFAULT_NOISE_FLOOR_SECONDS,
) -> ComparisonResult:
    """Compare one record against its baseline median.

    Fails when throughput drops below ``(1 - threshold)`` of the
    baseline median, or a phase grows past ``(1 + threshold)`` of its
    baseline median *and* the absolute delta clears the noise floor
    (sub-50ms phases jitter too much on shared CI runners to gate on).
    """
    if not baseline:
        return ComparisonResult(
            record=record,
            baseline_size=0,
            notes=("no baseline yet; gate is advisory for this group",),
        )
    failures: List[str] = []
    notes: List[str] = []

    base_rate = statistics.median(
        item.beacons_per_second for item in baseline
    )
    if base_rate > 0 and record.beacons_per_second < (1 - threshold) * base_rate:
        failures.append(
            f"throughput regressed: {record.beacons_per_second:,.0f}/s vs "
            f"baseline median {base_rate:,.0f}/s "
            f"({record.beacons_per_second / base_rate:.2f}x, "
            f"floor {1 - threshold:.2f}x)"
        )
    else:
        notes.append(
            f"throughput {record.beacons_per_second:,.0f}/s vs baseline "
            f"median {base_rate:,.0f}/s"
        )

    for phase in sorted(record.phase_seconds):
        samples = [
            item.phase_seconds[phase]
            for item in baseline
            if phase in item.phase_seconds
        ]
        if not samples:
            continue
        base_phase = statistics.median(samples)
        current = record.phase_seconds[phase]
        delta = current - base_phase
        if (
            current > (1 + threshold) * base_phase
            and delta > noise_floor_seconds
        ):
            failures.append(
                f"phase '{phase}' regressed: {current:.3f}s vs baseline "
                f"median {base_phase:.3f}s (+{delta:.3f}s, "
                f"limit {1 + threshold:.2f}x)"
            )
    return ComparisonResult(
        record=record,
        baseline_size=len(baseline),
        failures=tuple(failures),
        notes=tuple(notes),
    )


def check_history(
    history: BenchHistory,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_BASELINE_WINDOW,
    noise_floor_seconds: float = DEFAULT_NOISE_FLOOR_SECONDS,
) -> List[ComparisonResult]:
    """Check each group's newest record against its rolling baseline.

    Groups with a single record yield a non-comparable (passing)
    result — the gate only blocks once two records exist to compare.
    """
    results: List[ComparisonResult] = []
    for _, records in sorted(history.groups().items()):
        newest = records[-1]
        baseline = records[:-1][-window:]
        results.append(
            compare_records(
                newest,
                baseline,
                threshold=threshold,
                noise_floor_seconds=noise_floor_seconds,
            )
        )
    return results


def format_history_report(results: Sequence[ComparisonResult]) -> str:
    """Human-readable gate summary, one block per group."""
    if not results:
        return "bench history: no records\n"
    lines: List[str] = ["== bench history gate =="]
    for result in results:
        record = result.record
        status = "PASS" if result.ok else "FAIL"
        if not result.comparable:
            status = "PASS (no baseline)"
        lines.append(
            f"[{status}] {record.label} / {record.engine} "
            f"@ {record.host} cfg={record.config_hash} "
            f"(baseline n={result.baseline_size})"
        )
        for note in result.notes:
            lines.append(f"    note: {note}")
        for failure in result.failures:
            lines.append(f"    FAIL: {failure}")
    return "\n".join(lines) + "\n"
