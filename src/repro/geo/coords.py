"""Geographic coordinates and great-circle math.

All distances in this library are great-circle (haversine) kilometers, the
same metric the paper uses for client-to-front-end distance (Figs 2, 4, 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeoError

#: Mean Earth radius in kilometers (IUGG).
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, order=True)
class GeoPoint:
    """A point on the Earth's surface.

    Attributes:
        lat: Latitude in decimal degrees, in [-90, 90].
        lon: Longitude in decimal degrees, in [-180, 180].
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise GeoError(f"latitude {self.lat} out of range [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise GeoError(f"longitude {self.lon} out of range [-180, 180]")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometers."""
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometers.

    Uses the haversine formula, which is numerically stable for small
    distances (unlike the spherical law of cosines).
    """
    lat1 = math.radians(a.lat)
    lat2 = math.radians(b.lat)
    dlat = lat2 - lat1
    dlon = math.radians(b.lon - a.lon)
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    # Guard against floating-point drift pushing h just above 1.0.
    h = min(1.0, h)
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial bearing (forward azimuth) from ``a`` to ``b`` in degrees.

    Returns a value in [0, 360).  Undefined when the points coincide; by
    convention we return 0.0 in that case.
    """
    if a == b:
        return 0.0
    lat1 = math.radians(a.lat)
    lat2 = math.radians(b.lat)
    dlon = math.radians(b.lon - a.lon)
    x = math.sin(dlon) * math.cos(lat2)
    y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(lat2) * math.cos(
        dlon
    )
    bearing = math.degrees(math.atan2(x, y)) % 360.0
    # Floating-point rounding of a tiny negative angle can yield exactly
    # 360.0; keep the contract of [0, 360).
    return 0.0 if bearing >= 360.0 else bearing


def destination_point(origin: GeoPoint, bearing_deg: float, distance_km: float) -> GeoPoint:
    """Point reached by travelling ``distance_km`` from ``origin`` at ``bearing_deg``.

    Used by the client-population generator to scatter /24 prefixes around a
    metro center.
    """
    if distance_km < 0:
        raise GeoError(f"distance must be non-negative, got {distance_km}")
    angular = distance_km / EARTH_RADIUS_KM
    theta = math.radians(bearing_deg)
    lat1 = math.radians(origin.lat)
    lon1 = math.radians(origin.lon)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(angular)
        + math.cos(lat1) * math.sin(angular) * math.cos(theta)
    )
    lon2 = lon1 + math.atan2(
        math.sin(theta) * math.sin(angular) * math.cos(lat1),
        math.cos(angular) - math.sin(lat1) * math.sin(lat2),
    )
    # Normalize longitude to [-180, 180].
    lon_deg = (math.degrees(lon2) + 540.0) % 360.0 - 180.0
    return GeoPoint(lat=math.degrees(lat2), lon=lon_deg)
