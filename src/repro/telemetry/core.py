"""The per-run telemetry facade: registry + spans + run context.

One :class:`Telemetry` instance accompanies one campaign/study run.  It
bundles the three concerns every instrumented call site needs — the
metrics registry, the span tracker, and the run-identity context — so
the hot paths take a single object, and the whole state freezes into a
mergeable :class:`~repro.telemetry.snapshot.TelemetrySnapshot` at the
end.

:meth:`Telemetry.absorb` is the inverse of :meth:`Telemetry.snapshot`:
it folds a (worker's) snapshot back into this process's live registry,
which is how the sharded parallel runner aggregates — each worker ships
its snapshot over the process boundary, and the coordinator absorbs
them all, in any order, into its own telemetry.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, Optional, Union

from repro.telemetry.logs import RunContext
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.telemetry.spans import SpanTracker
from repro.telemetry.trace import TraceLog, set_active_trace


def config_digest(config: object) -> str:
    """A short stable digest of a configuration object.

    Frozen dataclass ``repr``s are deterministic field-by-field
    renderings, so hashing the repr fingerprints every knob without a
    custom serializer.  Used as the ``config_hash`` in run contexts and
    manifests, making runs self-describing ("same digest" == "same
    configuration").
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


class Telemetry:
    """Metrics registry, span tracker, and run context for one run."""

    def __init__(
        self,
        context: Optional[Union[RunContext, Dict[str, Any]]] = None,
    ) -> None:
        if isinstance(context, RunContext):
            self.context: Dict[str, Any] = context.as_dict()
        else:
            self.context = dict(context or {})
        self.registry = MetricsRegistry()
        self.spans = SpanTracker()
        # One timeline per run: spans mirror onto it as phase slices,
        # and emission sites without a Telemetry handle (e.g. the
        # columnar sidecar loader) reach it via the active-trace hook.
        self.trace = TraceLog()
        self.spans.trace = self.trace
        set_active_trace(self.trace)

    # ------------------------------------------------------------------
    # Registry delegation
    # ------------------------------------------------------------------

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create a counter (see :class:`MetricsRegistry`)."""
        return self.registry.counter(name, description)

    def gauge(
        self, name: str, description: str = "", merge: str = "max"
    ) -> Gauge:
        """Get or create a gauge."""
        return self.registry.gauge(name, description, merge)

    def histogram(self, name: str, description: str = "", **layout) -> Histogram:
        """Get or create a histogram."""
        return self.registry.histogram(name, description, **layout)

    def span(self, name: str, index: Optional[object] = None):
        """Time a nested region (see :meth:`SpanTracker.span`)."""
        return self.spans.span(name, index=index)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the current state into a mergeable snapshot."""
        return TelemetrySnapshot(
            context=dict(self.context),
            counters={
                counter.name: counter.value
                for counter in self.registry.counters()
            },
            gauges={
                gauge.name: {"value": gauge.value, "merge": gauge.merge_mode}
                for gauge in self.registry.gauges()
            },
            histograms={
                histogram.name: {
                    "start": histogram.start,
                    "growth": histogram.growth,
                    "bucket_count": histogram.bucket_count,
                    "counts": list(histogram.bucket_counts),
                    "sum": histogram.sum,
                    "observations": histogram.count,
                }
                for histogram in self.registry.histograms()
            },
            spans={
                path: type(record)(
                    count=record.count,
                    seconds=record.seconds,
                    indexed=dict(record.indexed),
                )
                for path, record in self.spans.records.items()
            },
            trace=self.trace.copy() if self.trace.events else None,
        )

    def absorb(self, snapshot: TelemetrySnapshot) -> None:
        """Fold a snapshot into this live telemetry (inverse of
        :meth:`snapshot`; order-insensitive across snapshots)."""
        for key, value in snapshot.context.items():
            self.context.setdefault(key, value)
        for name, value in snapshot.counters.items():
            self.registry.counter(name).inc(value)
        for name, gauge in snapshot.gauges.items():
            self.registry.gauge(name, merge=gauge["merge"]).combine(
                gauge["value"]
            )
        for name, histogram in snapshot.histograms.items():
            self.registry.histogram(
                name,
                start=histogram["start"],
                growth=histogram["growth"],
                bucket_count=histogram["bucket_count"],
            ).absorb(
                histogram["counts"],
                histogram["sum"],
                histogram["observations"],
            )
        self.spans.absorb(snapshot.spans)
        if snapshot.trace is not None and snapshot.trace.events:
            self.trace.merge(snapshot.trace)
