"""Bounded, mergeable latency quantile sketches.

A month-long campaign over millions of clients cannot retain raw
samples: the shared-LDNS digests and the per-request diff log grow
linearly with population.  :class:`LatencySketch` replaces raw retention
with a *deterministic log-linear histogram sketch* whose state is a pure
function of the multiset of inserted values:

* **Bounded.**  Bucket keys are the top ``mantissa_bits`` bits of the
  IEEE-754 representation of ``|value|`` — a log-linear binning with
  ``2**mantissa_bits`` equal-width buckets per octave.  On top of the
  domain bound, a hard ``max_buckets`` cap triggers *deterministic
  compression*: whenever the occupied signed buckets exceed the cap, one
  kept mantissa bit is dropped, exactly merging every adjacent bucket
  pair (``key >> 1``).  The final resolution is therefore the coarsest
  one the inserted multiset forces — a pure function of the multiset,
  not of insertion or merge order — so the cap never breaks parity.
  Resolution bottoms out at one mantissa bit (two buckets per octave);
  past that floor the occupied-bucket count is bounded by the data's
  *exponent span* (two buckets per power of two covered), which still
  does not grow with sample count — only with dynamic range.
* **Deterministic.**  Key extraction is pure integer arithmetic on the
  float's bit pattern — no transcendental functions whose last-ulp
  behavior could differ between the scalar and vectorized insert paths.
  Inserting the same multiset of values, in any order, through any mix
  of :meth:`add`, :meth:`extend`, and :meth:`merge`, yields bit-identical
  state.  (Proof sketch for compression: the distinct-key count at any
  resolution is monotone in the multiset, so the final ``mantissa_bits``
  is the largest value whose distinct-key count fits the cap — and
  bucket counts at that resolution are exact sums over finer keys.)
* **Mergeable.**  :meth:`merge` adds bucket counts; it is exact,
  commutative, and associative, so a sharded campaign's merged sketch
  equals the serial run's sketch *bit for bit* — the property the
  serial == sharded digest-parity contract rests on.
* **Canonical digest.**  :meth:`digest` hashes the sorted bucket state
  plus the exactly-tracked count/min/max, giving an order-insensitive
  fingerprint (the sketch-level analogue of
  :meth:`repro.simulation.dataset.StudyDataset.digest`).

Why not a classic t-digest?  t-digest compression depends on insertion
and merge order, so "serial == sharded, bit for bit" can only hold
within a tolerance.  The log-linear sketch trades slightly larger (but
still domain-bounded) state for an *exactly* order-insensitive merge,
which keeps the repo's digest-parity tests meaningful in sketch mode.

**Error bound.**  Each bucket's representative is its midpoint; a bucket
spanning ``[L, U)`` inside one octave has width ``U - L <= L *
2**-mantissa_bits``, so any reported quantile/threshold value is within
a relative ``2**-(mantissa_bits + 1)`` of some true sample value — at
the default accuracy (1%) that is ``2**-7 ~= 0.78%``.  Every
compression step doubles that bound (one fewer kept bit);
:attr:`LatencySketch.relative_error_bound` always reports the *current*
bound, and :attr:`LatencySketch.compressions` how many halvings the
data forced.  Rank queries (:meth:`fraction_at_or_below`) are exact in
*rank* for thresholds on bucket boundaries and carry the same
relative-value uncertainty elsewhere.  ``count``, ``minimum`` and
``maximum`` are always exact.
"""

from __future__ import annotations

import base64
import hashlib
import struct
from array import array
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import AnalysisError, MeasurementError

#: Schema marker for serialized sketches (export frames, transport).
SKETCH_SCHEMA_VERSION = 1

#: Default relative accuracy: reported values within 1% of a true sample.
DEFAULT_RELATIVE_ACCURACY = 0.01

#: Values with magnitude below this land in the exact zero bucket.
DEFAULT_MIN_TRACKABLE_MS = 1e-3

#: Default hard cap on occupied signed buckets per sketch.  Generous
#: enough that compression rarely engages over plausible RTT domains at
#: the default accuracy; it exists so the footprint is bounded even for
#: pathological value spreads.
DEFAULT_MAX_BUCKETS = 512

#: Smallest allowed ``max_buckets``: below this the sketch cannot hold
#: one octave at the coarsest useful resolution.
MIN_MAX_BUCKETS = 8

#: float64 has 52 mantissa bits; keys keep the top ``mantissa_bits``.
_FLOAT64_MANTISSA_BITS = 52

#: Hard cap: beyond ~26 kept bits the "sketch" is denser than float32.
_MAX_MANTISSA_BITS = 26


def mantissa_bits_for(relative_accuracy: float) -> int:
    """Smallest kept-mantissa-bit count meeting a relative accuracy.

    With midpoint representatives the worst-case relative error is
    ``2**-(m + 1)``; solve for the smallest ``m`` at or under the target.

    Raises:
        MeasurementError: when the accuracy is not in ``(0, 0.5]``.
    """
    if not 0.0 < relative_accuracy <= 0.5:
        raise MeasurementError(
            f"relative_accuracy must be in (0, 0.5], got {relative_accuracy!r}"
        )
    bits = 1
    while 2.0 ** -(bits + 1) > relative_accuracy and bits < _MAX_MANTISSA_BITS:
        bits += 1
    return bits


def _pack_int64(values: Iterable[int]) -> str:
    return base64.b64encode(
        np.asarray(tuple(values), dtype=np.int64).tobytes()
    ).decode("ascii")


def _unpack_int64(text: str) -> np.ndarray:
    return np.frombuffer(
        base64.b64decode(text.encode("ascii")), dtype=np.int64
    )


class LatencySketch:
    """A deterministic, mergeable, domain-bounded quantile sketch.

    Args:
        relative_accuracy: Worst-case relative error of reported values
            (default 1%); mapped to a kept-mantissa-bit count via
            :func:`mantissa_bits_for`.
        min_trackable: Magnitude below which values collapse into the
            exact zero bucket (reported as ``0.0``).
        max_buckets: Hard cap on occupied signed buckets.  When the data
            would exceed it, resolution halves (deterministically — see
            the module docstring) until it fits, doubling the error
            bound per halving.

    State is three stores — negative, zero, positive — so signed data
    (Fig 3's anycast − best-unicast diffs) sketches correctly.
    """

    __slots__ = (
        "_base_mantissa_bits",
        "_mantissa_bits",
        "_shift",
        "_min_trackable",
        "_max_buckets",
        "_pos",
        "_neg",
        "_zero",
        "_count",
        "_min",
        "_max",
        "_sum",
        "_ordered",
    )

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        min_trackable: float = DEFAULT_MIN_TRACKABLE_MS,
        *,
        mantissa_bits: Optional[int] = None,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        if mantissa_bits is None:
            mantissa_bits = mantissa_bits_for(relative_accuracy)
        if not 1 <= mantissa_bits <= _MAX_MANTISSA_BITS:
            raise MeasurementError(
                f"mantissa_bits must be in [1, {_MAX_MANTISSA_BITS}], "
                f"got {mantissa_bits!r}"
            )
        if not (min_trackable > 0.0 and np.isfinite(min_trackable)):
            raise MeasurementError("min_trackable must be finite and > 0")
        if max_buckets < MIN_MAX_BUCKETS:
            raise MeasurementError(
                f"max_buckets must be >= {MIN_MAX_BUCKETS}, "
                f"got {max_buckets!r}"
            )
        self._base_mantissa_bits = mantissa_bits
        self._mantissa_bits = mantissa_bits
        self._shift = _FLOAT64_MANTISSA_BITS - mantissa_bits
        self._min_trackable = float(min_trackable)
        self._max_buckets = int(max_buckets)
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._sum = 0.0
        self._ordered: Optional[List[Tuple[float, int]]] = None

    # ------------------------------------------------------------------
    # Key geometry
    # ------------------------------------------------------------------

    @property
    def mantissa_bits(self) -> int:
        """Current kept mantissa bits (``2**bits`` buckets per octave)."""
        return self._mantissa_bits

    @property
    def base_mantissa_bits(self) -> int:
        """Configured (pre-compression) kept mantissa bits."""
        return self._base_mantissa_bits

    @property
    def max_buckets(self) -> int:
        """Hard cap on occupied signed buckets."""
        return self._max_buckets

    @property
    def compressions(self) -> int:
        """Resolution halvings the inserted data has forced so far."""
        return self._base_mantissa_bits - self._mantissa_bits

    @property
    def relative_error_bound(self) -> float:
        """Worst-case relative error of reported values at the *current*
        resolution (doubles per compression step)."""
        return 2.0 ** -(self._mantissa_bits + 1)

    @property
    def min_trackable(self) -> float:
        """Magnitude threshold of the exact zero bucket."""
        return self._min_trackable

    def _set_resolution(self, mantissa_bits: int) -> None:
        """Coarsen to ``mantissa_bits``, exactly merging bucket pairs."""
        delta = self._mantissa_bits - mantissa_bits
        if delta <= 0:
            return
        for name in ("_pos", "_neg"):
            store: Dict[int, int] = getattr(self, name)
            if store:
                coarse: Dict[int, int] = {}
                for key, count in store.items():
                    shifted = key >> delta
                    coarse[shifted] = coarse.get(shifted, 0) + count
                setattr(self, name, coarse)
        self._mantissa_bits = mantissa_bits
        self._shift = _FLOAT64_MANTISSA_BITS - mantissa_bits
        self._ordered = None

    def _compress(self) -> None:
        """Halve resolution until the signed-bucket cap is met.

        Each halving merges adjacent bucket pairs exactly, so the final
        state depends only on the inserted multiset (the distinct-key
        count at every resolution is monotone in the multiset), never on
        insertion or merge order.
        """
        while (
            len(self._pos) + len(self._neg) > self._max_buckets
            and self._mantissa_bits > 1
        ):
            self._set_resolution(self._mantissa_bits - 1)

    def _key_scalar(self, magnitude: float) -> int:
        # Pure integer arithmetic on the IEEE bit pattern — bit-identical
        # to the vectorized path's ``view(int64) >> shift``.
        (bits,) = struct.unpack("<q", struct.pack("<d", magnitude))
        return bits >> self._shift

    def _bucket_bounds(self, key: int) -> Tuple[float, float]:
        low = struct.unpack("<d", struct.pack("<q", key << self._shift))[0]
        high = struct.unpack(
            "<d", struct.pack("<q", (key + 1) << self._shift)
        )[0]
        return low, high

    def _representative(self, key: int) -> float:
        low, high = self._bucket_bounds(key)
        return (low + high) / 2.0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def _track(self, lo: float, hi: float, total: float, n: int) -> None:
        self._count += n
        self._sum += total
        if self._min is None or lo < self._min:
            self._min = lo
        if self._max is None or hi > self._max:
            self._max = hi
        self._ordered = None

    def add(self, value: float) -> None:
        """Insert one sample."""
        value = float(value)
        if not np.isfinite(value):
            raise MeasurementError(
                f"sketch values must be finite, got {value!r}"
            )
        magnitude = abs(value)
        if magnitude < self._min_trackable:
            self._zero += 1
        elif value > 0.0:
            key = self._key_scalar(magnitude)
            self._pos[key] = self._pos.get(key, 0) + 1
        else:
            key = self._key_scalar(magnitude)
            self._neg[key] = self._neg.get(key, 0) + 1
        self._track(value, value, value, 1)
        self._compress()

    def extend(
        self, values: Union[np.ndarray, Iterable[float]]
    ) -> None:
        """Insert a batch of samples (the vectorized bulk path)."""
        arr = np.ascontiguousarray(values, dtype=np.float64).reshape(-1)
        if arr.size == 0:
            return
        if not np.isfinite(arr).all():
            raise MeasurementError("sketch values must be finite")
        magnitude = np.abs(arr)
        small = magnitude < self._min_trackable
        self._zero += int(small.sum())
        for mask, store in (
            ((~small) & (arr > 0.0), self._pos),
            ((~small) & (arr <= 0.0), self._neg),
        ):
            if not mask.any():
                continue
            keys = magnitude[mask].view(np.int64) >> self._shift
            uniques, counts = np.unique(keys, return_counts=True)
            for key, count in zip(uniques.tolist(), counts.tolist()):
                store[key] = store.get(key, 0) + count
        self._track(
            float(arr.min()), float(arr.max()), float(arr.sum()), arr.size
        )
        self._compress()

    def merge(self, other: "LatencySketch") -> "LatencySketch":
        """Fold another sketch's buckets into this one (in place).

        Exact bucket-count addition at the coarser of the two current
        resolutions: commutative, associative, and order-insensitive, so
        any merge tree over the same sketches reaches bit-identical
        state — compression included (a finer operand's buckets coarsen
        exactly via ``key >> delta``).

        Raises:
            MeasurementError: when the sketches' configured geometry
                differs (accuracy, zero-bucket threshold, or bucket cap)
                — their buckets would not align.
        """
        if (
            other._base_mantissa_bits != self._base_mantissa_bits
            or other._min_trackable != self._min_trackable
            or other._max_buckets != self._max_buckets
        ):
            raise MeasurementError(
                "cannot merge sketches with different key geometry "
                f"(mantissa_bits {other._base_mantissa_bits} vs "
                f"{self._base_mantissa_bits}, min_trackable "
                f"{other._min_trackable!r} vs {self._min_trackable!r}, "
                f"max_buckets {other._max_buckets} vs "
                f"{self._max_buckets})"
            )
        self._set_resolution(
            min(self._mantissa_bits, other._mantissa_bits)
        )
        delta = other._mantissa_bits - self._mantissa_bits
        for key, count in other._pos.items():
            key >>= delta
            self._pos[key] = self._pos.get(key, 0) + count
        for key, count in other._neg.items():
            key >>= delta
            self._neg[key] = self._neg.get(key, 0) + count
        self._zero += other._zero
        if other._count:
            assert other._min is not None and other._max is not None
            self._track(other._min, other._max, other._sum, other._count)
        self._compress()
        return self

    def copy(self) -> "LatencySketch":
        """An independent sketch with identical state."""
        clone = LatencySketch(
            min_trackable=self._min_trackable,
            mantissa_bits=self._base_mantissa_bits,
            max_buckets=self._max_buckets,
        )
        clone._mantissa_bits = self._mantissa_bits
        clone._shift = self._shift
        clone._pos = dict(self._pos)
        clone._neg = dict(self._neg)
        clone._zero = self._zero
        clone._count = self._count
        clone._min = self._min
        clone._max = self._max
        clone._sum = self._sum
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Exact number of inserted samples."""
        return self._count

    @property
    def bucket_count(self) -> int:
        """Occupied buckets (the bounded footprint), zero bucket included."""
        return len(self._pos) + len(self._neg) + (1 if self._zero else 0)

    def minimum(self) -> float:
        """Exact smallest sample."""
        if self._min is None:
            raise AnalysisError("empty sketch has no minimum")
        return self._min

    def maximum(self) -> float:
        """Exact largest sample."""
        if self._max is None:
            raise AnalysisError("empty sketch has no maximum")
        return self._max

    def sum_estimate(self) -> float:
        """Approximate sum (float accumulation order varies; diagnostic
        only — deliberately excluded from :meth:`digest`)."""
        return self._sum

    def _ordered_buckets(self) -> List[Tuple[float, int]]:
        """(representative, count) pairs in ascending value order."""
        if self._ordered is None:
            ordered: List[Tuple[float, int]] = [
                (-self._representative(key), self._neg[key])
                for key in sorted(self._neg, reverse=True)
            ]
            if self._zero:
                ordered.append((0.0, self._zero))
            ordered.extend(
                (self._representative(key), self._pos[key])
                for key in sorted(self._pos)
            )
            self._ordered = ordered
        return self._ordered

    def quantile(self, q: float) -> float:
        """The q-th percentile (``q`` in [0, 100]) within the error bound.

        Endpoints are exact: ``quantile(0) == minimum()`` and
        ``quantile(100) == maximum()``; interior results are bucket
        midpoints clamped into ``[minimum(), maximum()]``.

        Raises:
            AnalysisError: if empty, or ``q`` outside [0, 100].
        """
        if not self._count:
            raise AnalysisError("empty sketch has no percentiles")
        if not 0.0 <= q <= 100.0:
            raise AnalysisError(f"percentile must be in [0, 100], got {q}")
        assert self._min is not None and self._max is not None
        if q == 0.0:
            return self._min
        if q == 100.0:
            return self._max
        rank = (q / 100.0) * (self._count - 1)
        cumulative = 0
        for representative, count in self._ordered_buckets():
            cumulative += count
            if cumulative > rank:
                return min(max(representative, self._min), self._max)
        return self._max

    def median(self) -> float:
        """Shorthand for the 50th percentile."""
        return self.quantile(50.0)

    def fraction_at_or_below(self, x: float) -> float:
        """Approximate CDF at ``x`` (fraction of samples ``<= x``).

        Buckets count wholly by their representative, so the effective
        threshold is within the sketch's relative error of ``x``.
        """
        if not self._count:
            raise AnalysisError("empty sketch has no distribution")
        below = sum(
            count
            for representative, count in self._ordered_buckets()
            if representative <= x
        )
        return below / self._count

    def fraction_above(self, x: float) -> float:
        """Approximate CCDF at ``x`` (fraction strictly above)."""
        return 1.0 - self.fraction_at_or_below(x)

    # ------------------------------------------------------------------
    # Canonical digest and serialization
    # ------------------------------------------------------------------

    def canonical_state(self) -> Tuple[Any, ...]:
        """The order-insensitive state tuple :meth:`digest` hashes.

        A pure function of the inserted value multiset: the approximate
        ``sum`` (whose float accumulation order varies across merge
        trees) is deliberately excluded.
        """
        return (
            "latency-sketch",
            SKETCH_SCHEMA_VERSION,
            self._base_mantissa_bits,
            self._mantissa_bits,
            self._max_buckets,
            repr(self._min_trackable),
            self._count,
            self._zero,
            tuple(sorted(self._pos.items())),
            tuple(sorted(self._neg.items())),
            repr(self._min),
            repr(self._max),
        )

    def digest(self) -> str:
        """Canonical SHA-256 fingerprint of the sketch's contents."""
        h = hashlib.sha256()
        for part in self.canonical_state():
            h.update(str(part).encode("utf-8"))
            h.update(b"\x1f")
        return h.hexdigest()

    def column_state(self) -> Dict[str, Any]:
        """Columnar state for zero-copy transport: sorted key/count
        arrays (int64) per signed store, plus the exact scalars."""
        pos_keys = np.asarray(sorted(self._pos), dtype=np.int64)
        neg_keys = np.asarray(sorted(self._neg), dtype=np.int64)
        return {
            "mantissa_bits": self._mantissa_bits,
            "base_mantissa_bits": self._base_mantissa_bits,
            "max_buckets": self._max_buckets,
            "min_trackable": self._min_trackable,
            "pos_keys": pos_keys,
            "pos_counts": np.asarray(
                [self._pos[int(k)] for k in pos_keys], dtype=np.int64
            ),
            "neg_keys": neg_keys,
            "neg_counts": np.asarray(
                [self._neg[int(k)] for k in neg_keys], dtype=np.int64
            ),
            "zero": self._zero,
            "count": self._count,
            "min": self._min,
            "max": self._max,
            "sum": self._sum,
        }

    @classmethod
    def from_columns(
        cls,
        mantissa_bits: int,
        min_trackable: float,
        pos_keys: np.ndarray,
        pos_counts: np.ndarray,
        neg_keys: np.ndarray,
        neg_counts: np.ndarray,
        zero: int,
        count: int,
        minimum: Optional[float],
        maximum: Optional[float],
        total: float,
        base_mantissa_bits: Optional[int] = None,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> "LatencySketch":
        """Rebuild a sketch from :meth:`column_state` arrays."""
        if base_mantissa_bits is None:
            base_mantissa_bits = int(mantissa_bits)
        if not 1 <= int(mantissa_bits) <= int(base_mantissa_bits):
            raise MeasurementError(
                f"current mantissa_bits {mantissa_bits!r} must be in "
                f"[1, base {base_mantissa_bits!r}]"
            )
        sketch = cls(
            min_trackable=float(min_trackable),
            mantissa_bits=int(base_mantissa_bits),
            max_buckets=int(max_buckets),
        )
        sketch._mantissa_bits = int(mantissa_bits)
        sketch._shift = _FLOAT64_MANTISSA_BITS - int(mantissa_bits)
        sketch._pos = {
            int(k): int(c) for k, c in zip(pos_keys, pos_counts)
        }
        sketch._neg = {
            int(k): int(c) for k, c in zip(neg_keys, neg_counts)
        }
        sketch._zero = int(zero)
        sketch._count = int(count)
        sketch._min = None if minimum is None else float(minimum)
        sketch._max = None if maximum is None else float(maximum)
        sketch._sum = float(total)
        if sketch._count and (sketch._min is None or sketch._max is None):
            raise MeasurementError(
                "non-empty sketch state is missing its min/max envelope"
            )
        return sketch

    def to_obj(self) -> Dict[str, Any]:
        """JSON-compatible form (export frames, checkpoint spills)."""
        state = self.column_state()
        return {
            "schema": SKETCH_SCHEMA_VERSION,
            "mantissa_bits": state["mantissa_bits"],
            "base_mantissa_bits": state["base_mantissa_bits"],
            "max_buckets": state["max_buckets"],
            "min_trackable": state["min_trackable"],
            "pos_keys": _pack_int64(state["pos_keys"]),
            "pos_counts": _pack_int64(state["pos_counts"]),
            "neg_keys": _pack_int64(state["neg_keys"]),
            "neg_counts": _pack_int64(state["neg_counts"]),
            "zero": state["zero"],
            "count": state["count"],
            "min": state["min"],
            "max": state["max"],
            "sum": state["sum"],
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "LatencySketch":
        """Rebuild a sketch from :meth:`to_obj`'s output.

        Raises:
            MeasurementError: on an unknown schema or malformed state.
        """
        try:
            schema = obj["schema"]
            if schema != SKETCH_SCHEMA_VERSION:
                raise MeasurementError(
                    f"unsupported sketch schema version {schema!r}"
                )
            return cls.from_columns(
                mantissa_bits=obj["mantissa_bits"],
                base_mantissa_bits=obj.get("base_mantissa_bits"),
                max_buckets=obj.get("max_buckets", DEFAULT_MAX_BUCKETS),
                min_trackable=obj["min_trackable"],
                pos_keys=_unpack_int64(obj["pos_keys"]),
                pos_counts=_unpack_int64(obj["pos_counts"]),
                neg_keys=_unpack_int64(obj["neg_keys"]),
                neg_counts=_unpack_int64(obj["neg_counts"]),
                zero=obj["zero"],
                count=obj["count"],
                minimum=obj["min"],
                maximum=obj["max"],
                total=obj["sum"],
            )
        except KeyError as error:
            raise MeasurementError(
                f"malformed sketch object: missing field {error}"
            ) from error

    def __repr__(self) -> str:
        return (
            f"LatencySketch(count={self._count}, "
            f"buckets={self.bucket_count}, "
            f"mantissa_bits={self._mantissa_bits})"
        )
