"""Performance benchmarks for the simulation substrate itself.

These are classic microbenchmarks (not figure reproductions): how fast the
BGP solver converges, how fast the data plane resolves, and how fast a
full campaign runs — serial and sharded across worker processes, with
both measurement engines.  They guard against performance regressions in
the hot paths every figure depends on.
"""

import os

import pytest

from conftest import write_report

from repro.cdn.deployment import DeploymentConfig, attach_cdn
from repro.cdn.network import CdnNetwork
from repro.clients.population import ClientPopulationConfig
from repro.geo.metros import MetroDatabase
from repro.net.bgp import Announcement, RouteComputation
from repro.net.topology import AsRole, TopologyBuilder, populate_base_internet
from repro.clients.workload import WorkloadConfig
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.telemetry import (
    MemoryProbe,
    manifest_path_for,
    peak_rss_bytes,
    write_run_manifest,
)

#: Worker count for the parallel campaign cases, sized to the host — a
#: worker per core.  Parallel cases skip on single-core hosts, where
#: sharding can only lose (process startup plus scenario rebuild on the
#: same core that runs the work).
PARALLEL_WORKERS = os.cpu_count() or 1


def build_world(seed=11):
    builder = TopologyBuilder(MetroDatabase())
    populate_base_internet(builder, seed=seed)
    deployment = attach_cdn(builder, DeploymentConfig(), seed=seed)
    return builder.build(), deployment


def test_bgp_anycast_computation(benchmark):
    topology, deployment = build_world()
    computation = RouteComputation(topology)
    announcement = Announcement(
        prefix=deployment.anycast_prefix, origin_asn=deployment.asn
    )
    rib = benchmark(computation.compute, announcement)
    assert len(rib) == len(topology)


def test_cdn_network_construction(benchmark):
    """Builds the anycast RIB plus one unicast RIB per front-end."""
    topology, deployment = build_world()
    network = benchmark(CdnNetwork, topology, deployment)
    assert len(network.frontends) == len(deployment.frontends)


def test_data_plane_resolution(benchmark):
    topology, deployment = build_world()
    network = CdnNetwork(topology, deployment)
    pairs = [
        (a.asn, sorted(a.pop_metros)[0])
        for a in topology.ases_with_role(AsRole.ACCESS)
    ]

    def resolve_all():
        total_km = 0.0
        for asn, metro in pairs:
            total_km += network.anycast_path(asn, metro).total_km
        return total_km

    benchmark(resolve_all)


def _campaign_scenario():
    config = ScenarioConfig(
        seed=3,
        population=ClientPopulationConfig(prefix_count=150),
        calendar=SimulationCalendar(num_days=1),
    )
    return Scenario.build(config)


def test_single_campaign_day(benchmark):
    """End-to-end cost of one measured day at a small population."""
    scenario = _campaign_scenario()

    def run_day():
        return CampaignRunner(scenario).run().measurement_count

    measurements = benchmark.pedantic(run_day, rounds=3, iterations=1)
    assert measurements > 0


def test_single_campaign_day_vectorized(benchmark):
    """The same day through the vectorized measurement engine."""
    scenario = _campaign_scenario()
    config = CampaignConfig(engine="vectorized")

    def run_day():
        return CampaignRunner(scenario, config).run().measurement_count

    measurements = benchmark.pedantic(run_day, rounds=3, iterations=1)
    assert measurements > 0


def test_single_campaign_day_matrix(benchmark):
    """The same day through the whole-day matrix engine."""
    scenario = _campaign_scenario()
    config = CampaignConfig(engine="matrix")

    def run_day():
        return CampaignRunner(scenario, config).run().measurement_count

    measurements = benchmark.pedantic(run_day, rounds=3, iterations=1)
    assert measurements > 0


def test_single_campaign_day_parallel(benchmark):
    """The same day sharded across worker processes.

    Each worker rebuilds the scenario, so the win over serial only shows
    at populations large enough to amortize startup — and needs as many
    free cores as workers.  The digest assertion is the real guarantee:
    the parallel path produces a bit-identical dataset.
    """
    if PARALLEL_WORKERS < 2:
        pytest.skip("host has fewer than 2 cores; sharding cannot win")
    scenario = _campaign_scenario()
    serial_digest = CampaignRunner(scenario).run().digest()

    def run_day():
        return ParallelCampaignRunner(
            scenario, workers=PARALLEL_WORKERS
        ).run()

    dataset = benchmark.pedantic(run_day, rounds=3, iterations=1)
    assert dataset.measurement_count > 0
    assert dataset.digest() == serial_digest


def _timed_run(scenario, engine, workers=1):
    """Run one campaign; return (dataset, stats, telemetry snapshot).

    Timings come from the run's own telemetry — the ``campaign.wall_seconds``
    gauge and the phase-span tree — rather than an external stopwatch, so
    the benchmark reports exactly what every other consumer of the
    snapshot sees.
    """
    config = CampaignConfig(engine=engine)
    if workers == 1:
        runner = CampaignRunner(scenario, config)
    else:
        runner = ParallelCampaignRunner(scenario, config, workers=workers)
    dataset = runner.run()
    return dataset, runner.stats, runner.telemetry.snapshot()


def _wall_seconds(snapshot):
    return snapshot.gauges["campaign.wall_seconds"]["value"]


def _beacon_rate(snapshot):
    return snapshot.counters["campaign.beacons_total"] / _wall_seconds(snapshot)


def test_campaign_engines_report():
    """Record engine and sharding wall-clock for a multi-day campaign.

    Writes the numbers (plus the host's core count, which bounds the
    achievable sharding speedup) to
    ``benchmarks/out/pipeline_performance.txt``.  A multi-day run is the
    representative regime — the paper's campaign spans a month — and it
    amortizes the one-time path-cache warm-up that dominates day 1 for
    every engine.  The parallel timing rows are skipped (with a note) on
    single-core hosts, where sharding can only lose; the vectorized
    serial-vs-sharded digest check still runs, because it is a
    correctness property, not a timing.

    Three engines are recorded: reference (scalar oracle), vectorized
    (chunked per-client batches), and matrix (whole-day cross-client
    draws).  Matrix and vectorized share every counter-keyed stream, so
    the report asserts their digests match bit for bit, while reference
    is only statistically equivalent.  The analysis read path is timed
    too: one framed-JSON parse against one memory-mapped columnar
    sidecar load of the same export.
    """
    config = ScenarioConfig(
        seed=3,
        population=ClientPopulationConfig(prefix_count=600),
        calendar=SimulationCalendar(num_days=3),
    )
    scenario = Scenario.build(config)
    cores = os.cpu_count() or 1

    reference, ref_stats, ref_snapshot = _timed_run(scenario, "reference")
    vectorized, vec_stats, vec_snapshot = _timed_run(scenario, "vectorized")
    matrix, mat_stats, mat_snapshot = _timed_run(scenario, "matrix")
    assert matrix.digest() == vectorized.digest(), (
        "matrix engine diverged from its vectorized oracle"
    )
    ref_seconds = _wall_seconds(ref_snapshot)
    vec_seconds = _wall_seconds(vec_snapshot)
    mat_seconds = _wall_seconds(mat_snapshot)
    speedup = _beacon_rate(vec_snapshot) / _beacon_rate(ref_snapshot)
    matrix_speedup = _beacon_rate(mat_snapshot) / _beacon_rate(vec_snapshot)

    lines = [
        "pipeline performance: 3-day campaign, 600 client /24s",
        f"host cores: {cores}",
        (
            f"engine=reference  serial: {ref_seconds:7.2f}s  "
            f"({_beacon_rate(ref_snapshot):8,.0f} beacons/s)"
        ),
        (
            f"engine=vectorized serial: {vec_seconds:7.2f}s  "
            f"({_beacon_rate(vec_snapshot):8,.0f} beacons/s)"
        ),
        (
            f"engine=matrix     serial: {mat_seconds:7.2f}s  "
            f"({_beacon_rate(mat_snapshot):8,.0f} beacons/s)"
        ),
        f"vectorized speedup over reference: {speedup:.2f}x (target >= 5x)",
        (
            f"matrix speedup over vectorized: {matrix_speedup:.2f}x "
            "(bit-identical digests; CI gates >= 2x via tools/perf_smoke.py)"
        ),
    ]
    for label, snapshot in (
        ("reference", ref_snapshot),
        ("vectorized", vec_snapshot),
        ("matrix", mat_snapshot),
    ):
        phases = ", ".join(
            f"{path.rsplit('/', 1)[-1]}={record.seconds:.2f}s"
            for path, record in snapshot.span_children("campaign/day")
        )
        lines.append(f"engine={label:10s} day phases: {phases}")
    member_table = dict(mat_snapshot.span_children("campaign")).get(
        "campaign/matrix-member-table"
    )
    if member_table is not None:
        lines.append(
            "engine=matrix     one-time member table: "
            f"{member_table.seconds:.2f}s (amortized across all days)"
        )

    if cores >= 2:
        for engine in ("reference", "vectorized", "matrix"):
            dataset, stats, snapshot = _timed_run(
                scenario, engine, workers=PARALLEL_WORKERS
            )
            serial = {
                "reference": reference,
                "vectorized": vectorized,
                "matrix": matrix,
            }[engine]
            assert dataset.digest() == serial.digest()
            lines.append(
                f"engine={engine:10s} parallel: {_wall_seconds(snapshot):7.2f}s  "
                f"({_beacon_rate(snapshot):8,.0f} beacons/s, "
                f"workers={PARALLEL_WORKERS})"
            )
    else:
        lines.append(
            "parallel timing: skipped (single-core host; sharding adds "
            "process startup without adding compute)"
        )
        for engine, serial in (
            ("vectorized", vectorized), ("matrix", matrix)
        ):
            sharded, _, _ = _timed_run(scenario, engine, workers=2)
            assert sharded.digest() == serial.digest()
            lines.append(
                f"{engine} serial vs workers=2: identical "
                "(same StudyDataset.digest())"
            )

    # Regression guards, looser than the recorded headline numbers so a
    # noisy host does not flake the suite.
    assert speedup >= 3.0, (
        f"vectorized engine only {speedup:.2f}x over reference"
    )
    assert matrix_speedup >= 1.5, (
        f"matrix engine only {matrix_speedup:.2f}x over vectorized"
    )

    lines.extend(_analysis_load_report(matrix))

    memory_lines, memory_record = _memory_report()
    lines.extend(memory_lines)

    report_path = write_report("pipeline_performance", "\n".join(lines))
    # The manifest makes the recorded numbers self-describing: which
    # configuration produced them, and where the wall-clock went.
    write_run_manifest(
        manifest_path_for(str(report_path)),
        mat_snapshot,
        dataset=matrix,
        extra={"artifact": str(report_path), "memory": memory_record},
    )


def _analysis_load_report(dataset):
    """Time the analysis read path: framed parse vs columnar sidecar.

    Saves the campaign's dataset once (which writes both the framed
    export and its ``.cols`` sidecar), then times a best-of-five framed
    parse against a best-of-five memory-mapped columnar load and
    asserts both return the same dataset.  A collection runs before
    each timed load so the generations left behind by the campaign runs
    above don't trip a full GC inside one timing window and not another.
    """
    import gc
    import tempfile
    import time

    from repro.measurement.export import load_dataset, save_dataset

    with tempfile.TemporaryDirectory(prefix="bench-load-") as tmpdir:
        path = os.path.join(tmpdir, "dataset.json")
        save_dataset(dataset, path)
        export_mb = os.path.getsize(path) / (1024.0 * 1024.0)
        sidecar_mb = os.path.getsize(path + ".cols") / (1024.0 * 1024.0)
        framed_seconds, columnar_seconds = [], []
        for _ in range(5):
            gc.collect()
            start = time.perf_counter()
            framed = load_dataset(path, columnar=False)
            framed_seconds.append(time.perf_counter() - start)
            gc.collect()
            start = time.perf_counter()
            columnar = load_dataset(path)
            columnar_seconds.append(time.perf_counter() - start)
    assert framed.digest() == dataset.digest()
    assert columnar.digest() == dataset.digest()
    framed_best = min(framed_seconds)
    columnar_best = min(columnar_seconds)
    return [
        "analysis load (same export, best of 5):",
        (
            f"  framed JSON parse:      {framed_best:6.3f}s "
            f"({export_mb:.1f} MB export)"
        ),
        (
            f"  columnar sidecar mmap:  {columnar_best:6.3f}s "
            f"({sidecar_mb:.1f} MB sidecar)"
        ),
        (
            f"  columnar speedup: {framed_best / columnar_best:.2f}x "
            "(identical StudyDataset.digest())"
        ),
    ]


def _memory_scenario(clients: int) -> Scenario:
    """Fixed shape (150 /24s x 2 days), client load behind it scaled.

    The per-day beacon cap is lifted so the load knob actually reaches
    the measurement path — the same construction ``tools/memory_smoke.py``
    gates in CI, scaled down to benchmark-friendly sizes.
    """
    return Scenario.build(
        ScenarioConfig(
            seed=3,
            population=ClientPopulationConfig(
                prefix_count=150,
                volume_median_queries=max(1.0, clients / 150),
            ),
            workload=WorkloadConfig(max_beacons_per_day=1_000_000),
            calendar=SimulationCalendar(num_days=2),
        )
    )


def _memory_report():
    """Measure peak memory: exact vs sketch mode, then sketch under 3x load.

    Returns the report lines and a manifest record.  Fails the benchmark
    if sketch-mode peak memory grows with load (it must be nearly flat;
    exact mode is the linear baseline recorded for contrast).  The sizes
    and the 1.15x limit are exactly the ones ``tools/memory_smoke.py``
    gates in CI — smaller sizes sit in a regime where fixed transient
    buffers dominate the (small) peaks and the ratio reads as growth,
    which is how this report once claimed 1.87x while the gate held.
    """
    base_clients, scaled_clients = 100_000, 300_000
    load_ratio = scaled_clients / base_clients
    sketch_config = CampaignConfig(
        engine="vectorized", sketch_threshold=32, sketch_max_buckets=32
    )

    # Every probed run gets its own cold scenario, built OUTSIDE the
    # probe window — exactly how the CI gate measures.  This report once
    # claimed 1.87x growth against the gate's 1.15x because its windows
    # were uneven: the base sketch run reused a scenario whose caches a
    # prior run had already warmed (deflating its peak), while the
    # scaled window also swallowed its own scenario construction.
    exact_scenario = _memory_scenario(base_clients)
    base = _memory_scenario(base_clients)
    scaled_scenario = _memory_scenario(scaled_clients)
    with MemoryProbe() as exact_probe:
        exact = CampaignRunner(
            exact_scenario, CampaignConfig(engine="vectorized")
        ).run()
    with MemoryProbe() as sketch_probe:
        sketched = CampaignRunner(base, sketch_config).run()
    with MemoryProbe() as scaled_probe:
        scaled = CampaignRunner(scaled_scenario, sketch_config).run()

    peak_ratio = scaled_probe.peak_bytes / sketch_probe.peak_bytes
    # Same flat-memory contract tools/memory_smoke.py gates in CI: the
    # campaign shape is fixed, so peak memory must not track the load.
    # The benchmark records and enforces the same 1.15x limit so the
    # recorded number can never contradict the gate.
    assert peak_ratio <= 1.15, (
        f"sketch-mode peak memory grew {peak_ratio:.3f}x under "
        f"{load_ratio:.0f}x load — breaks the flat-memory contract "
        f"(tools/memory_smoke.py gates <= 1.15x)"
    )

    mb = 1024.0 * 1024.0
    lines = [
        "memory (tracemalloc peak, 150 /24s x 2 days, load scaled):",
        (
            f"  exact  @ {base_clients:7,} clients: "
            f"{exact_probe.peak_bytes / mb:6.1f} MB "
            f"({exact.measurement_count:,} measurements)"
        ),
        (
            f"  sketch @ {base_clients:7,} clients: "
            f"{sketch_probe.peak_bytes / mb:6.1f} MB "
            f"({sketched.measurement_count:,} measurements)"
        ),
        (
            f"  sketch @ {scaled_clients:7,} clients: "
            f"{scaled_probe.peak_bytes / mb:6.1f} MB "
            f"({scaled.measurement_count:,} measurements)"
        ),
        (
            f"  sketch peak growth under {load_ratio:.0f}x load: "
            f"{peak_ratio:.3f}x (flat-memory contract: <= 1.15x, same "
            f"limit tools/memory_smoke.py gates in CI)"
        ),
        f"  process peak RSS: {peak_rss_bytes() / mb:.1f} MB",
    ]
    record = {
        "exact_peak_bytes": exact_probe.peak_bytes,
        "sketch_peak_bytes": sketch_probe.peak_bytes,
        "sketch_scaled_peak_bytes": scaled_probe.peak_bytes,
        "load_ratio": load_ratio,
        "sketch_peak_ratio": peak_ratio,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    return lines, record
