"""Edge-case tests across modules that the mainline suites don't reach."""

import pytest

from repro.errors import MeasurementError, PredictionError
from repro.cdn.network import ServedPath
from repro.core.hybrid import HybridRedirector
from repro.core.predictor import HistoryBasedPredictor
from repro.dns.authoritative import ANYCAST_TARGET
from repro.measurement.aggregate import GroupedDailyAggregates, RequestDiffLog
from repro.net.anycast import AnycastRoute


class TestServedPath:
    def test_total_km(self, cdn_world):
        topology, _, network = cdn_world
        from repro.net.topology import AsRole

        access = topology.ases_with_role(AsRole.ACCESS)[0]
        metro = sorted(access.pop_metros)[0]
        path = network.anycast_path(access.asn, metro)
        assert path.total_km == pytest.approx(
            path.path_km + path.backbone_km
        )


class TestAnycastRouteAccessors:
    def test_paths_and_metros(self):
        route = AnycastRoute(
            client_asn=100,
            client_metro="nyc",
            hops=((100, "nyc"), (10, "chi"), (1, "sea")),
        )
        assert route.as_path == (100, 10, 1)
        assert route.metro_path == ("nyc", "chi", "sea")
        assert route.origin_asn == 1
        assert route.ingress_metro == "sea"


class TestRequestDiffLogLimits:
    def test_region_code_limit(self):
        log = RequestDiffLog()
        for index in range(128):
            log.region_code(f"region-{index}")
        with pytest.raises(MeasurementError, match="too many"):
            log.region_code("one-more")


class TestPredictorWithoutAnycastBaseline:
    def aggregates(self):
        agg = GroupedDailyAggregates("ecs")
        for _ in range(25):
            agg.observe(0, "g", "fe-a", 30.0)
        # anycast measured, but under the sample cut
        for _ in range(3):
            agg.observe(0, "g", ANYCAST_TARGET, 50.0)
        return agg

    def test_prediction_without_anycast_metric(self):
        prediction = HistoryBasedPredictor().predict_group(
            self.aggregates(), 0, "g"
        )
        assert prediction is not None
        assert prediction.target_id == "fe-a"
        assert prediction.anycast_metric_ms is None
        assert prediction.predicted_gain_ms == 0.0

    def test_hybrid_skips_unbaselined_groups(self):
        # Without an anycast baseline the gain is unknowable; the hybrid
        # conservatively keeps the group on anycast.
        selected = HybridRedirector().select_redirections(
            self.aggregates(), 0
        )
        assert selected == {}


class TestStudyArgumentsValidation:
    def test_hybrid_build_policy_requires_some_aggregates(self):
        with pytest.raises(PredictionError):
            HybridRedirector().build_policy()
