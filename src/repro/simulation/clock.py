"""Simulated calendar.

The paper's datasets span March–April 2015; the daily analyses (Figs 5–7)
depend on real weekday/weekend structure ("very little churn ... during
the weekend"), so days map onto actual calendar dates.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Seconds per simulated day.
SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class SimulationCalendar:
    """A run of consecutive days starting at a calendar date.

    The default matches the paper's main analysis window: April 2015
    (April 1 was a Wednesday, which is also where Fig 7's week starts).
    """

    start: datetime.date = datetime.date(2015, 4, 1)
    num_days: int = 28

    def __post_init__(self) -> None:
        if self.num_days < 1:
            raise ConfigurationError("num_days must be >= 1")

    def __len__(self) -> int:
        return self.num_days

    def _check(self, day: int) -> None:
        if not 0 <= day < self.num_days:
            raise ConfigurationError(
                f"day {day} outside calendar of {self.num_days} days"
            )

    def date_of(self, day: int) -> datetime.date:
        """Calendar date of a day index."""
        self._check(day)
        return self.start + datetime.timedelta(days=day)

    def weekday(self, day: int) -> int:
        """Weekday of a day index (0 = Monday ... 6 = Sunday)."""
        return self.date_of(day).weekday()

    def is_weekend(self, day: int) -> bool:
        """Whether a day is Saturday or Sunday."""
        return self.weekday(day) >= 5

    def day_name(self, day: int) -> str:
        """Short weekday name, e.g. 'Wed'."""
        return self.date_of(day).strftime("%a")

    def label(self, day: int) -> str:
        """Human-readable label, e.g. '2015-04-01 (Wed)'."""
        date = self.date_of(day)
        return f"{date.isoformat()} ({date.strftime('%a')})"

    def seconds_at(self, day: int, fraction: float = 0.0) -> float:
        """Simulated seconds since the calendar start.

        Args:
            fraction: Position within the day, in [0, 1).
        """
        self._check(day)
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(
                f"day fraction must be in [0, 1), got {fraction}"
            )
        return (day + fraction) * SECONDS_PER_DAY

    def days(self) -> range:
        """All day indices."""
        return range(self.num_days)
