"""Persisting campaign datasets to disk and loading them back.

A paper-scale campaign takes minutes to run; analyses and ablations over
it take milliseconds.  These helpers serialize a
:class:`repro.simulation.dataset.StudyDataset` so a campaign can be run
once and analyzed many times — the same split the paper's backend
storage provided.

Three on-disk formats:

* **v3 (current)** — the framed segment layout of v2 extended with
  sketch-aware frames: aggregate rows may carry a sketch object instead
  of packed raw samples, bounded diff logs write per-(day, region)
  ``diff_sketches`` frames instead of row chunks, bounded passive logs
  write per-day ``passive_totals`` frames, and the header records the
  sketch configuration so loads rebuild sinks in the right mode.
* **v2** — a crash-safe framed segment file
  (:mod:`repro.measurement.storage`): a header frame, client chunks,
  per-day aggregate/passive frames, request-diff chunks, and a footer,
  each line independently length- and CRC-verified, written via temp
  file + atomic rename.  Still readable; exact-mode datasets written
  today differ from v2 only by the header's version and sketch fields.
  :func:`load_dataset` reads framed files strictly;
  :func:`recover_dataset` salvages damaged ones — skipping corrupt
  frames, truncating torn tails — and reports exactly what survived.
* **v1 (legacy)** — a single JSON document.  Still readable
  (:func:`load_dataset` sniffs the format), never written, and unable
  to represent sketch-mode sinks (attempting to raises).

Latency samples are packed as base64 arrays in all formats to keep
files compact.
"""

from __future__ import annotations

import base64
import datetime
import json
from array import array
from dataclasses import dataclass
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple, Union

from repro.errors import MeasurementError, StorageError
from repro.clients.population import ClientPrefix
from repro.geo.coords import GeoPoint
from repro.measurement.aggregate import (
    GroupedDailyAggregates,
    LatencyDigest,
    RequestDiffLog,
)
from repro.measurement.logs import PassiveLog
from repro.measurement.sketch import DEFAULT_MAX_BUCKETS, LatencySketch
from repro.measurement.storage import (
    RecoveryReport,
    read_segment_text,
    write_segment_file,
)
from repro.measurement.validate import RECORD_SCHEMA_VERSION
from repro.telemetry import get_logger
from repro.net.ip import IPv4Prefix
from repro.simulation.clock import SimulationCalendar
from repro.simulation.dataset import StudyDataset

#: Format marker of the framed segment exports this module writes.
FORMAT_VERSION = 3

#: Framed format versions :func:`load_dataset` still reads.
SUPPORTED_FORMAT_VERSIONS = (2, 3)

#: Format marker of the legacy single-JSON-document exports (still read).
LEGACY_FORMAT_VERSION = 1

#: Client records per ``clients`` frame.
_CLIENT_CHUNK = 500

#: Request-diff rows per ``request_diffs`` frame.
_DIFF_CHUNK = 100_000

_log = get_logger("export")


def _pack_doubles(values) -> str:
    return base64.b64encode(array("d", values).tobytes()).decode("ascii")


def _unpack_doubles(text: str) -> array:
    packed = array("d")
    packed.frombytes(base64.b64decode(text.encode("ascii")))
    return packed


def _digest_payload(digest: LatencyDigest) -> Any:
    """One aggregate row's value cell: packed samples (exact) or a
    sketch object (promoted)."""
    if digest.is_exact:
        return _pack_doubles(digest.values_view())
    assert digest.sketch is not None
    return {"sketch": digest.sketch.to_obj()}


def _digest_from_payload(
    payload: Any,
    exact_threshold: Optional[int],
    relative_accuracy: float,
    max_buckets: int = DEFAULT_MAX_BUCKETS,
) -> LatencyDigest:
    if isinstance(payload, dict):
        return LatencyDigest.from_sketch(
            LatencySketch.from_obj(payload["sketch"]),
            exact_threshold=exact_threshold,
            relative_accuracy=relative_accuracy,
            max_buckets=max_buckets,
        )
    digest = LatencyDigest(
        exact_threshold=exact_threshold,
        relative_accuracy=relative_accuracy,
        max_buckets=max_buckets,
    )
    digest.extend(_unpack_doubles(payload))
    return digest


def digest_payload(digest: LatencyDigest) -> Any:
    """Serialize one :class:`LatencyDigest` to a JSON-safe payload.

    Exact digests pack their float64 samples bit-exactly (base64);
    promoted digests serialize their sketch.  Public companion of the
    internal aggregate-row packing, reused by the live service's window
    checkpoints so a spilled window round-trips without losing a bit.
    """
    return _digest_payload(digest)


def digest_from_payload(
    payload: Any,
    exact_threshold: Optional[int],
    relative_accuracy: float,
    max_buckets: int = DEFAULT_MAX_BUCKETS,
) -> LatencyDigest:
    """Inverse of :func:`digest_payload`, rebuilding the digest with the
    given sketch-mode configuration."""
    return _digest_from_payload(
        payload, exact_threshold, relative_accuracy, max_buckets
    )


def _aggregates_to_obj(aggregates: GroupedDailyAggregates) -> Dict[str, Any]:
    if aggregates.exact_threshold is not None:
        raise MeasurementError(
            "legacy (v1) JSON documents cannot represent sketch-mode "
            "aggregates; save through the framed exporter"
        )
    days: Dict[str, Any] = {}
    for day in aggregates.days:
        rows: List[Any] = []
        for group, target_id, digest in aggregates.iter_day(day):
            rows.append(
                [group, target_id, _pack_doubles(digest.values_view())]
            )
        days[str(day)] = rows
    return {"grouping": aggregates.grouping, "days": days}


def _aggregates_from_obj(obj: Dict[str, Any]) -> GroupedDailyAggregates:
    aggregates = GroupedDailyAggregates(obj["grouping"])
    for day_text, rows in obj["days"].items():
        day = int(day_text)
        for group, target_id, packed in rows:
            digest = aggregates._days.setdefault(day, {}).setdefault(
                group, {}
            )
            digest[target_id] = LatencyDigest(_unpack_doubles(packed))
    return aggregates


def _aggregate_day_rows(
    aggregates: GroupedDailyAggregates, day: int
) -> List[Any]:
    return [
        [group, target_id, _digest_payload(digest)]
        for group, target_id, digest in aggregates.iter_day(day)
    ]


def _apply_aggregate_rows(
    aggregates: GroupedDailyAggregates, day: int, rows: List[Any]
) -> None:
    for group, target_id, payload in rows:
        per_group = aggregates._days.setdefault(day, {}).setdefault(
            group, {}
        )
        per_group[target_id] = _digest_from_payload(
            payload,
            aggregates.exact_threshold,
            aggregates.relative_accuracy,
            aggregates.max_buckets,
        )


def _passive_to_obj(passive: PassiveLog) -> Dict[str, Any]:
    if passive.is_bounded:
        raise MeasurementError(
            "legacy (v1) JSON documents cannot represent a bounded "
            "passive log; save through the framed exporter"
        )
    return {
        str(day): {
            client_key: counts for client_key, counts in passive.iter_day(day)
        }
        for day in passive.days
    }


def _passive_day_obj(passive: PassiveLog, day: int) -> Dict[str, Any]:
    return {
        client_key: counts for client_key, counts in passive.iter_day(day)
    }


def _apply_passive_day(
    passive: PassiveLog, day: int, clients: Dict[str, Any]
) -> None:
    for client_key, counts in clients.items():
        for frontend_id, count in counts.items():
            passive.record(day, client_key, frontend_id, int(count))


def _passive_from_obj(obj: Dict[str, Any]) -> PassiveLog:
    passive = PassiveLog()
    for day_text, clients in obj.items():
        _apply_passive_day(passive, int(day_text), clients)
    return passive


def _diffs_slice_obj(
    diffs: RequestDiffLog, start: int, stop: int
) -> Dict[str, Any]:
    return {
        "region_names": list(diffs.region_names),
        "day": _pack_doubles(float(x) for x in diffs._day[start:stop]),
        "client_index": _pack_doubles(
            float(x) for x in diffs._client_index[start:stop]
        ),
        "region_code": _pack_doubles(
            float(x) for x in diffs._region_code[start:stop]
        ),
        "anycast": _pack_doubles(diffs._anycast[start:stop]),
        "best_unicast": _pack_doubles(diffs._best_unicast[start:stop]),
    }


def _diffs_to_obj(diffs: RequestDiffLog) -> Dict[str, Any]:
    if diffs.is_bounded:
        raise MeasurementError(
            "legacy (v1) JSON documents cannot represent a bounded "
            "request-diff log; save through the framed exporter"
        )
    return _diffs_slice_obj(diffs, 0, len(diffs))


def _apply_diffs_obj(diffs: RequestDiffLog, obj: Dict[str, Any]) -> None:
    names = obj["region_names"]
    for name in names:
        diffs.region_code(name)
    days = _unpack_doubles(obj["day"])
    clients = _unpack_doubles(obj["client_index"])
    regions = _unpack_doubles(obj["region_code"])
    anycast = _unpack_doubles(obj["anycast"])
    best = _unpack_doubles(obj["best_unicast"])
    for day, client, region, a, b in zip(days, clients, regions, anycast, best):
        diffs.observe(int(day), int(client), names[int(region)], a, b)


def _diffs_from_obj(obj: Dict[str, Any]) -> RequestDiffLog:
    diffs = RequestDiffLog()
    _apply_diffs_obj(diffs, obj)
    return diffs


def _client_to_obj(client: ClientPrefix) -> Dict[str, Any]:
    return {
        "prefix": str(client.prefix),
        "asn": client.asn,
        "home_metro": client.home_metro,
        "lat": client.location.lat,
        "lon": client.location.lon,
        "access_delay_ms": client.access_delay_ms,
        "daily_queries": client.daily_queries,
        "ldns_id": client.ldns_id,
    }


def _client_from_obj(obj: Dict[str, Any]) -> ClientPrefix:
    return ClientPrefix(
        prefix=IPv4Prefix.parse(obj["prefix"]),
        asn=int(obj["asn"]),
        home_metro=obj["home_metro"],
        location=GeoPoint(obj["lat"], obj["lon"]),
        access_delay_ms=float(obj["access_delay_ms"]),
        daily_queries=float(obj["daily_queries"]),
        ldns_id=obj["ldns_id"],
    )


# ----------------------------------------------------------------------
# Legacy v1: one JSON document
# ----------------------------------------------------------------------


def dataset_to_json(dataset: StudyDataset) -> Dict[str, Any]:
    """Serialize a dataset to a legacy (v1) JSON document.

    Kept for in-memory round trips and compatibility; files written by
    :func:`save_dataset` use the framed v2 format instead.
    """
    return {
        "format_version": LEGACY_FORMAT_VERSION,
        "calendar": {
            "start": dataset.calendar.start.isoformat(),
            "num_days": dataset.calendar.num_days,
        },
        "clients": [_client_to_obj(c) for c in dataset.clients],
        "ecs_aggregates": _aggregates_to_obj(dataset.ecs_aggregates),
        "ldns_aggregates": _aggregates_to_obj(dataset.ldns_aggregates),
        "request_diffs": _diffs_to_obj(dataset.request_diffs),
        "passive": _passive_to_obj(dataset.passive),
        "beacon_count": dataset.beacon_count,
        "measurement_count": dataset.measurement_count,
        "covered_ranges": [
            [start, stop] for start, stop in (dataset.covered_ranges or ())
        ],
        "load_summary": dataset.load_summary,
    }


def _check_version(
    version: Any, expected: Tuple[int, ...], what: str
) -> None:
    if version is None:
        raise MeasurementError(
            f"{what} carries no format version field — not a dataset "
            "export, or one too damaged to identify"
        )
    if version not in expected:
        raise MeasurementError(
            f"unsupported dataset format version {version!r}"
        )


def dataset_from_json(document: Dict[str, Any]) -> StudyDataset:
    """Rebuild a dataset from :func:`dataset_to_json`'s output.

    Raises:
        MeasurementError: on a missing/unknown format version, or a
            structurally incomplete document (every malformed shape
            surfaces as a clear error, never a raw ``KeyError``).
    """
    _check_version(
        document.get("format_version"), (LEGACY_FORMAT_VERSION,),
        "dataset document",
    )
    try:
        calendar = SimulationCalendar(
            start=datetime.date.fromisoformat(document["calendar"]["start"]),
            num_days=int(document["calendar"]["num_days"]),
        )
        # Files written before coverage tracking carry no key; those read
        # as full coverage (None), while an explicit list — even an empty
        # one — is preserved so partial datasets survive the round trip.
        if "covered_ranges" in document:
            covered: Optional[Tuple[Tuple[int, int], ...]] = tuple(
                (int(start), int(stop))
                for start, stop in document["covered_ranges"]
            )
        else:
            covered = None
        return StudyDataset(
            calendar=calendar,
            clients=tuple(
                _client_from_obj(obj) for obj in document["clients"]
            ),
            ecs_aggregates=_aggregates_from_obj(document["ecs_aggregates"]),
            ldns_aggregates=_aggregates_from_obj(document["ldns_aggregates"]),
            request_diffs=_diffs_from_obj(document["request_diffs"]),
            passive=_passive_from_obj(document["passive"]),
            beacon_count=int(document["beacon_count"]),
            measurement_count=int(document["measurement_count"]),
            covered_ranges=covered,
            load_summary=document.get("load_summary"),
        )
    except KeyError as error:
        raise MeasurementError(
            f"malformed dataset document: missing field {error}"
        ) from error


# ----------------------------------------------------------------------
# v2: framed segment files
# ----------------------------------------------------------------------


def _dataset_frames(dataset: StudyDataset) -> Iterator[Dict[str, Any]]:
    """Yield a dataset as v3 frames (header, clients, data, no footer)."""
    clients = dataset.clients
    client_chunks = max(
        1, (len(clients) + _CLIENT_CHUNK - 1) // _CLIENT_CHUNK
    )
    diffs = dataset.request_diffs
    diff_chunks = (
        0
        if diffs.is_bounded
        else (len(diffs) + _DIFF_CHUNK - 1) // _DIFF_CHUNK
    )
    ecs = dataset.ecs_aggregates
    yield {
        "kind": "header",
        "format_version": FORMAT_VERSION,
        "record_schema_version": RECORD_SCHEMA_VERSION,
        "calendar": {
            "start": dataset.calendar.start.isoformat(),
            "num_days": dataset.calendar.num_days,
        },
        "beacon_count": dataset.beacon_count,
        "measurement_count": dataset.measurement_count,
        "covered_ranges": (
            None
            if dataset.covered_ranges is None
            else [[start, stop] for start, stop in dataset.covered_ranges]
        ),
        "ecs_grouping": ecs.grouping,
        "ldns_grouping": dataset.ldns_aggregates.grouping,
        "client_count": len(clients),
        "client_chunks": client_chunks,
        "diff_chunks": diff_chunks,
        # Sketch configuration (v3): loads rebuild sinks in this mode.
        "sketch": {
            "exact_threshold": ecs.exact_threshold,
            "relative_accuracy": ecs.relative_accuracy,
            "max_buckets": ecs.max_buckets,
        },
        "diffs_bounded": diffs.is_bounded,
        "diffs_accuracy": diffs.relative_accuracy,
        "diffs_max_buckets": diffs.max_buckets,
        "passive_bounded": dataset.passive.is_bounded,
        "load_summary": dataset.load_summary,
    }
    for index in range(client_chunks):
        start = index * _CLIENT_CHUNK
        yield {
            "kind": "clients",
            "index": index,
            "rows": [
                _client_to_obj(c)
                for c in clients[start : start + _CLIENT_CHUNK]
            ],
        }
    # Data frames are per day (and per diff chunk), so damage is
    # localized: a torn tail loses trailing days, not the whole file.
    days = sorted(
        set(dataset.ecs_aggregates.days)
        | set(dataset.ldns_aggregates.days)
        | set(dataset.passive.days)
    )
    for day in days:
        yield {
            "kind": "aggregates",
            "which": "ecs",
            "day": day,
            "rows": _aggregate_day_rows(dataset.ecs_aggregates, day),
        }
        yield {
            "kind": "aggregates",
            "which": "ldns",
            "day": day,
            "rows": _aggregate_day_rows(dataset.ldns_aggregates, day),
        }
        if dataset.passive.is_bounded:
            yield {
                "kind": "passive_totals",
                "day": day,
                "totals": dataset.passive.day_totals(day),
            }
        else:
            yield {
                "kind": "passive",
                "day": day,
                "clients": _passive_day_obj(dataset.passive, day),
            }
    if diffs.is_bounded:
        # One frame per day, mirroring the aggregate frames' damage
        # locality: a torn tail loses trailing days of sketches only.
        sketches = diffs.day_region_sketches()
        sketch_days = sorted({day for day, _ in sketches})
        for day in sketch_days:
            yield {
                "kind": "diff_sketches",
                "day": day,
                "rows": [
                    [region, sketches[(d, region)].to_obj()]
                    for d, region in sorted(sketches)
                    if d == day
                ],
            }
    for index in range(diff_chunks):
        start = index * _DIFF_CHUNK
        yield {
            "kind": "request_diffs",
            "index": index,
            **_diffs_slice_obj(diffs, start, start + _DIFF_CHUNK),
        }


@dataclass
class DatasetRecovery:
    """What :func:`recover_dataset` salvaged from a damaged export.

    Attributes:
        report: The frame-level salvage accounting.
        claimed_beacon_count: Beacon count the header recorded.
        claimed_measurement_count: Measurement count the header recorded.
        recovered_measurement_count: Joined measurements actually present
            in the salvaged frames; equals the claim iff nothing data-
            bearing was lost.
    """

    report: RecoveryReport
    claimed_beacon_count: int = 0
    claimed_measurement_count: int = 0
    recovered_measurement_count: int = 0

    @property
    def complete(self) -> bool:
        """True when the file was undamaged after all."""
        return (
            self.report.complete
            and self.recovered_measurement_count
            == self.claimed_measurement_count
        )

    def to_obj(self) -> Dict[str, Any]:
        """JSON-compatible form for run manifests."""
        return {
            "complete": self.complete,
            "claimed_beacon_count": self.claimed_beacon_count,
            "claimed_measurement_count": self.claimed_measurement_count,
            "recovered_measurement_count": self.recovered_measurement_count,
            **self.report.to_obj(),
        }


def _dataset_from_frames(
    frames: List[Dict[str, Any]], report: RecoveryReport
) -> Tuple[StudyDataset, DatasetRecovery]:
    """Assemble a dataset from decoded v2 frames.

    Raises:
        MeasurementError: on a missing/unknown header format version.
        StorageError: when the salvageable frames cannot anchor a
            dataset at all (no header, or client chunks missing).
    """
    if not frames or frames[0].get("kind") != "header":
        raise StorageError(
            "unrecoverable dataset export: header frame is missing or "
            "damaged"
        )
    header = frames[0]
    _check_version(
        header.get("format_version"), SUPPORTED_FORMAT_VERSIONS,
        "dataset export",
    )
    try:
        calendar = SimulationCalendar(
            start=datetime.date.fromisoformat(header["calendar"]["start"]),
            num_days=int(header["calendar"]["num_days"]),
        )
        covered_obj = header["covered_ranges"]
        covered = (
            None
            if covered_obj is None
            else tuple((int(s), int(e)) for s, e in covered_obj)
        )
        client_chunks: Dict[int, List[Any]] = {}
        # v2 headers carry no sketch fields; they read as exact mode.
        sketch_config = header.get("sketch") or {}
        exact_threshold = sketch_config.get("exact_threshold")
        if exact_threshold is not None:
            exact_threshold = int(exact_threshold)
        relative_accuracy = float(
            sketch_config.get("relative_accuracy", 0.01)
        )
        max_buckets = int(
            sketch_config.get("max_buckets", DEFAULT_MAX_BUCKETS)
        )
        ecs = GroupedDailyAggregates(
            header["ecs_grouping"],
            exact_threshold=exact_threshold,
            relative_accuracy=relative_accuracy,
            max_buckets=max_buckets,
        )
        ldns = GroupedDailyAggregates(
            header["ldns_grouping"],
            exact_threshold=exact_threshold,
            relative_accuracy=relative_accuracy,
            max_buckets=max_buckets,
        )
        passive = PassiveLog(bounded=bool(header.get("passive_bounded")))
        diffs = RequestDiffLog(
            bounded=bool(header.get("diffs_bounded")),
            relative_accuracy=float(
                header.get("diffs_accuracy", relative_accuracy)
            ),
            max_buckets=int(
                header.get("diffs_max_buckets", DEFAULT_MAX_BUCKETS)
            ),
        )
        diff_chunks: Dict[int, Dict[str, Any]] = {}
        for frame in frames[1:]:
            kind = frame.get("kind")
            if kind == "clients":
                client_chunks[int(frame["index"])] = frame["rows"]
            elif kind == "aggregates":
                target = ecs if frame["which"] == "ecs" else ldns
                _apply_aggregate_rows(
                    target, int(frame["day"]), frame["rows"]
                )
            elif kind == "passive":
                _apply_passive_day(
                    passive, int(frame["day"]), frame["clients"]
                )
            elif kind == "passive_totals":
                day = int(frame["day"])
                for frontend_id, count in frame["totals"].items():
                    passive.record(day, "", frontend_id, int(count))
            elif kind == "diff_sketches":
                day = int(frame["day"])
                for region, sketch_obj in frame["rows"]:
                    sketch = LatencySketch.from_obj(sketch_obj)
                    diffs.region_code(region)
                    existing = diffs._sketches.get((day, region))
                    if existing is None:
                        diffs._sketches[(day, region)] = sketch
                    else:
                        existing.merge(sketch)
                    diffs._total += sketch.count
            elif kind == "request_diffs":
                diff_chunks[int(frame["index"])] = frame
        if sorted(client_chunks) != list(range(int(header["client_chunks"]))):
            raise StorageError(
                "unrecoverable dataset export: client frames are "
                f"incomplete ({len(client_chunks)} of "
                f"{header['client_chunks']} chunks survived)"
            )
        clients = tuple(
            _client_from_obj(obj)
            for index in sorted(client_chunks)
            for obj in client_chunks[index]
        )
        if len(clients) != int(header["client_count"]):
            raise StorageError(
                "unrecoverable dataset export: client count mismatch "
                f"({len(clients)} != {header['client_count']})"
            )
        # Row order matters for the diff columns; apply chunks in index
        # order and drop anything after a gap (rows would misalign).
        for index in range(int(header["diff_chunks"])):
            frame = diff_chunks.get(index)
            if frame is None:
                break
            _apply_diffs_obj(diffs, frame)
        recovered_measurements = sum(
            digest.count
            for day in ecs.days
            for _, _, digest in ecs.iter_day(day)
        )
        recovery = DatasetRecovery(
            report=report,
            claimed_beacon_count=int(header["beacon_count"]),
            claimed_measurement_count=int(header["measurement_count"]),
            recovered_measurement_count=recovered_measurements,
        )
        dataset = StudyDataset(
            calendar=calendar,
            clients=clients,
            ecs_aggregates=ecs,
            ldns_aggregates=ldns,
            request_diffs=diffs,
            passive=passive,
            beacon_count=int(header["beacon_count"]),
            measurement_count=(
                int(header["measurement_count"])
                if recovery.complete
                else recovered_measurements
            ),
            covered_ranges=covered,
            # .get(): headers written before load awareness lack the key.
            load_summary=header.get("load_summary"),
        )
        return dataset, recovery
    except KeyError as error:
        raise MeasurementError(
            f"malformed dataset export: missing field {error}"
        ) from error


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def save_dataset(
    dataset: StudyDataset,
    path_or_file: Union[str, IO[str]],
    columnar: bool = True,
) -> None:
    """Write a dataset as a crash-safe framed (v2) export.

    Paths are written via temp file + atomic rename, so an interrupted
    save never leaves a torn file at the destination.  Saves to a path
    also write a columnar sidecar (``<path>.cols``,
    :mod:`repro.measurement.columnar`) so later loads skip the JSON
    frame parse; pass ``columnar=False`` to suppress it.  The sidecar
    is best-effort — failing to write it never fails the save.
    """
    write_segment_file(path_or_file, _dataset_frames(dataset))
    if isinstance(path_or_file, str):
        if columnar:
            from repro.measurement.columnar import write_sidecar

            write_sidecar(path_or_file, dataset)
        _log.info(
            "dataset saved",
            extra={
                "path": path_or_file,
                "measurements": dataset.measurement_count,
            },
        )


def _read_text(path_or_file: Union[str, IO[str]]) -> Tuple[str, str]:
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8", newline="") as handle:
            return handle.read(), path_or_file
    return path_or_file.read(), getattr(path_or_file, "name", "<stream>")


def load_dataset(
    path_or_file: Union[str, IO[str]], columnar: bool = True
) -> StudyDataset:
    """Read a dataset export (framed v2, or a legacy v1 JSON document).

    Strict: a damaged v2 file raises :class:`StorageError` (use
    :func:`recover_dataset` to salvage), and a version-less or
    unknown-version file raises a clear :class:`MeasurementError`.

    Loads from a path first try the columnar sidecar
    (:mod:`repro.measurement.columnar`): when one exists and its
    fingerprint matches the export's current bytes, the dataset decodes
    from memory-mapped columns without touching the JSON frames.  A
    missing or stale sidecar falls back to the framed parse and — for a
    framed file — rewrites the sidecar so the next load is fast again.
    Pass ``columnar=False`` to force the framed parse.
    """
    fingerprint = None
    if isinstance(path_or_file, str) and columnar:
        from repro.measurement.columnar import (
            file_fingerprint,
            load_sidecar,
            write_sidecar,
        )

        try:
            fingerprint = file_fingerprint(path_or_file)
        except OSError as error:
            raise MeasurementError(
                f"{path_or_file}: cannot read dataset export ({error})"
            ) from error
        cached = load_sidecar(path_or_file, fingerprint)
        if cached is not None:
            _log.info(
                "dataset loaded",
                extra={"path": path_or_file, "columnar": True},
            )
            return cached
    text, source = _read_text(path_or_file)
    if text.lstrip()[:1] == "{":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise MeasurementError(
                f"{source}: not a dataset export (unparseable JSON "
                f"document: {error})"
            ) from error
        dataset = dataset_from_json(document)
    else:
        frames, report = read_segment_text(text, strict=True, source=source)
        dataset, _ = _dataset_from_frames(frames, report)
        if fingerprint is not None:
            # Framed parse succeeded but the sidecar was absent/stale:
            # refresh it (best-effort) so the next load takes the
            # columnar path.
            write_sidecar(path_or_file, dataset, fingerprint)
    if isinstance(path_or_file, str):
        _log.info("dataset loaded", extra={"path": path_or_file})
    return dataset


def recover_dataset(
    path_or_file: Union[str, IO[str]]
) -> Tuple[StudyDataset, DatasetRecovery]:
    """Salvage a (possibly damaged) framed export.

    Skips corrupt frames, truncates the torn tail, and returns whatever
    dataset the surviving frames describe plus a
    :class:`DatasetRecovery` accounting for exactly what was lost.  An
    undamaged file recovers to the same dataset :func:`load_dataset`
    returns, with ``recovery.complete`` true.

    Raises:
        StorageError: when not even a header + client frames survived —
            there is no dataset to anchor.
    """
    text, source = _read_text(path_or_file)
    if text.lstrip()[:1] == "{":
        raise MeasurementError(
            f"{source}: legacy (v1) JSON exports have no frame structure "
            "to recover; re-export in the framed format"
        )
    frames, report = read_segment_text(text, strict=False, source=source)
    dataset, recovery = _dataset_from_frames(frames, report)
    if not recovery.complete:
        _log.warning(
            "dataset recovered with losses",
            extra={"path": source, **recovery.to_obj()},
        )
    return dataset, recovery
