"""Deterministic, seed-derived fault plans.

A :class:`FaultPlan` describes *what* should go wrong during a campaign
(worker crashes, hangs, transient exceptions, corrupted shard payloads,
sink-merge failures) without saying *when* in wall-clock terms — the
plan compiles against a ``(seed, shard count)`` pair into a
:class:`CompiledFaultPlan` that pins every fault to a ``(shard,
attempt)`` firing point via :func:`repro.rand.derive_seed`.  Firing
points therefore depend only on the scenario seed and the shard layout:
the same plan fires at the same points for the reference and vectorized
engines, for any worker count, and on every re-run — which is what lets
the chaos tests assert that a campaign surviving injected faults via
retries is bit-identical to the fault-free run.

Faults assigned to the same shard stack on successive attempts (the
first fault fires on attempt 0, the second on the retry, ...), so a plan
with more faults on one shard than the campaign's retry budget forces
that shard to exhaust its retries — the degraded/partial path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rand import derive_seed

#: Default simulated hang duration (seconds); see :attr:`FaultPlan.hang_seconds`.
DEFAULT_HANG_SECONDS = 30.0


class FaultKind(enum.Enum):
    """The injectable failure modes of a sharded measurement campaign.

    Mirrors the operational failure classes the paper's pipeline rode
    through (§6: front-end drains, route changes, partial data loss):

    * ``CRASH`` — the worker process aborts before doing any work.
    * ``HANG`` — the worker stalls (simulated as a bounded sleep) so a
      configured shard timeout fires.
    * ``EXCEPTION`` — a transient error surfaces mid-run, at a
      seed-derived day of the campaign calendar.
    * ``CORRUPT`` — the worker completes but its shard payload is
      corrupted in transit; the coordinator's integrity check rejects it.
    * ``MERGE`` — folding the shard's dataset into the campaign result
      fails at the coordinator.

    The ``RECORD_*`` kinds are *dirty-data* faults: instead of failing a
    worker, they damage individual measurement records in flight (the
    client-side garbage real JavaScript beacons produce — §3.2's filter
    targets), exercising the validation gate rather than the retry
    machinery:

    * ``RECORD_CORRUPT`` — a record's RTT becomes ``NaN`` (torn upload).
    * ``RECORD_CLOCK_SKEW`` — a large negative clock step is added to
      the RTT, making it wildly negative.
    * ``RECORD_TRUNCATE`` — the record is cut off mid-upload, encoded as
      ``-inf`` (no value to recover).
    """

    CRASH = "crash"
    HANG = "hang"
    EXCEPTION = "exception"
    CORRUPT = "corrupt"
    MERGE = "merge"
    RECORD_CORRUPT = "record-corrupt"
    RECORD_CLOCK_SKEW = "record-clock-skew"
    RECORD_TRUNCATE = "record-truncate"


#: The dirty-data kinds, which target records instead of workers.
RECORD_KINDS = frozenset(
    {
        FaultKind.RECORD_CORRUPT,
        FaultKind.RECORD_CLOCK_SKEW,
        FaultKind.RECORD_TRUNCATE,
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind with a multiplicity and an optional pinned shard.

    Attributes:
        kind: The failure mode to inject.
        count: How many instances of the fault to schedule.
        shard: Pin every instance to this shard index (modulo the
            compiled shard count); ``None`` picks shards from a
            seed-derived stream.
    """

    kind: FaultKind
    count: int = 1
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(
                f"fault spec {self.kind.value!r}: count must be >= 1"
            )
        if self.shard is not None and self.shard < 0:
            raise ConfigurationError(
                f"fault spec {self.kind.value!r}: shard must be >= 0"
            )
        if self.shard is not None and self.kind in RECORD_KINDS:
            # Record faults land on (day, client) coordinates derived
            # from the *population*, precisely so they hit the same
            # records no matter how clients are sharded; a shard pin
            # would contradict that.
            raise ConfigurationError(
                f"fault spec {self.kind.value!r}: record faults cannot "
                "be pinned to a shard"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults to inject into a campaign.

    Attributes:
        specs: The faults to schedule, in order.
        hang_seconds: How long a ``HANG`` fault sleeps.  Pick a value
            comfortably above the campaign's ``shard_timeout`` so the
            timeout, not the sleep, decides the outcome.
    """

    specs: Tuple[FaultSpec, ...] = ()
    hang_seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.hang_seconds < 0:
            raise ConfigurationError("hang_seconds must be >= 0")

    @classmethod
    def from_spec(
        cls, text: str, hang_seconds: float = DEFAULT_HANG_SECONDS
    ) -> "FaultPlan":
        """Parse a plan from a compact CLI spec string.

        The grammar is ``kind[:count][@shard]`` entries joined by commas,
        e.g. ``"crash:1"``, ``"crash:2,hang:1"``, or ``"exception:3@0"``
        (three transient exceptions all pinned to shard 0 — enough to
        exhaust a 2-retry budget).

        Raises:
            ConfigurationError: on an unknown kind or malformed entry.
        """
        specs = []
        for raw_entry in text.split(","):
            entry = raw_entry.strip()
            if not entry:
                continue
            shard: Optional[int] = None
            if "@" in entry:
                entry, _, shard_text = entry.partition("@")
                try:
                    shard = int(shard_text)
                except ValueError:
                    raise ConfigurationError(
                        f"fault spec {raw_entry!r}: shard must be an integer"
                    ) from None
            kind_text, _, count_text = entry.partition(":")
            try:
                kind = FaultKind(kind_text.strip())
            except ValueError:
                valid = ", ".join(k.value for k in FaultKind)
                raise ConfigurationError(
                    f"unknown fault kind {kind_text.strip()!r}; expected one "
                    f"of: {valid}"
                ) from None
            try:
                count = int(count_text) if count_text else 1
            except ValueError:
                raise ConfigurationError(
                    f"fault spec {raw_entry!r}: count must be an integer"
                ) from None
            specs.append(FaultSpec(kind=kind, count=count, shard=shard))
        if not specs:
            raise ConfigurationError(f"empty fault plan spec {text!r}")
        return cls(specs=tuple(specs), hang_seconds=hang_seconds)

    def spec_string(self) -> str:
        """The compact spec string this plan round-trips to."""
        parts = []
        for spec in self.specs:
            entry = f"{spec.kind.value}:{spec.count}"
            if spec.shard is not None:
                entry += f"@{spec.shard}"
            parts.append(entry)
        return ",".join(parts)

    @property
    def worker_specs(self) -> Tuple[FaultSpec, ...]:
        """The worker-level specs (everything except record faults)."""
        return tuple(s for s in self.specs if s.kind not in RECORD_KINDS)

    @property
    def record_specs(self) -> Tuple[FaultSpec, ...]:
        """The dirty-data (``record-*``) specs."""
        return tuple(s for s in self.specs if s.kind in RECORD_KINDS)

    def record_only(self) -> Optional["FaultPlan"]:
        """The record-fault subset of this plan, or ``None`` if empty.

        The coordinator hands exactly this subset to workers: worker
        faults are the coordinator's to schedule per attempt, but record
        faults must travel with the data-producing code so every shard
        dirties its own slice of the (day, client) grid.
        """
        record_specs = self.record_specs
        if not record_specs:
            return None
        return FaultPlan(specs=record_specs, hang_seconds=self.hang_seconds)

    def compile(self, seed: int, shards: int) -> "CompiledFaultPlan":
        """Pin every worker-fault instance to a deterministic firing point.

        Unpinned instances land on a shard drawn from
        ``derive_seed(seed, "fault-plan", kind, spec_index, instance)``,
        so the assignment depends only on ``(seed, shards)`` — not on
        engine, worker count, or execution order.  Faults stack per
        shard: the n-th fault scheduled on a shard fires on attempt n.
        Record faults are not shard events and are skipped here; compile
        them with :meth:`compile_records`.

        Raises:
            ConfigurationError: if ``shards`` < 1.
        """
        if shards < 1:
            raise ConfigurationError("cannot compile a fault plan for 0 shards")
        next_attempt: Dict[int, int] = {}
        firing: Dict[Tuple[int, int], FaultKind] = {}
        for spec_index, spec in enumerate(self.specs):
            if spec.kind in RECORD_KINDS:
                # Skipped here, but still numbered: spec_index is a
                # spec's identity in *both* compilers, so one plan
                # string always derives one schedule.
                continue
            for instance in range(spec.count):
                if spec.shard is not None:
                    shard = spec.shard % shards
                else:
                    shard = derive_seed(
                        seed, "fault-plan", spec.kind.value, spec_index,
                        instance,
                    ) % shards
                attempt = next_attempt.get(shard, 0)
                next_attempt[shard] = attempt + 1
                firing[(shard, attempt)] = spec.kind
        return CompiledFaultPlan(
            firing=firing, hang_seconds=self.hang_seconds, seed=seed
        )

    def compile_records(
        self, seed: int, num_days: int, population: int
    ) -> "CompiledRecordFaultPlan":
        """Pin every record-fault instance to a ``(day, client)`` cell.

        Coordinates are derived from the seed and the *full* client
        population — never the shard layout — so a sharded campaign
        dirties exactly the records a serial one does.  The derivation
        tags deliberately exclude the fault *kind*: plans that differ
        only in kind (``record-corrupt:5`` vs ``record-truncate:5``) hit
        the same cells, which is what lets the chaos tests compare their
        quarantine accounting record-for-record.

        Raises:
            ConfigurationError: if ``num_days`` or ``population`` < 1
            while record faults are scheduled.
        """
        record_specs = [
            (spec_index, spec)
            for spec_index, spec in enumerate(self.specs)
            if spec.kind in RECORD_KINDS
        ]
        points: Dict[Tuple[int, int], Tuple[Tuple[FaultKind, int, int], ...]] = {}
        if record_specs and (num_days < 1 or population < 1):
            raise ConfigurationError(
                "cannot compile record faults for an empty campaign "
                f"({num_days} days, {population} clients)"
            )
        staged: Dict[Tuple[int, int], list] = {}
        for spec_index, spec in record_specs:
            for instance in range(spec.count):
                day = derive_seed(
                    seed, "record-fault", spec_index, instance, "day"
                ) % num_days
                client = derive_seed(
                    seed, "record-fault", spec_index, instance, "client"
                ) % population
                staged.setdefault((day, client), []).append(
                    (spec.kind, spec_index, instance)
                )
        for cell, instances in staged.items():
            points[cell] = tuple(instances)
        return CompiledRecordFaultPlan(points=points, seed=seed)


@dataclass(frozen=True)
class CompiledFaultPlan:
    """A fault plan resolved to concrete ``(shard, attempt)`` firing points.

    Attributes:
        firing: Maps ``(shard, attempt)`` to the fault that fires there.
        hang_seconds: Sleep duration for ``HANG`` faults.
        seed: The scenario seed the plan was compiled against (also used
            to derive the firing day of ``EXCEPTION`` faults).
    """

    firing: Dict[Tuple[int, int], FaultKind] = field(default_factory=dict)
    hang_seconds: float = DEFAULT_HANG_SECONDS
    seed: int = 0

    def fault_for(self, shard: int, attempt: int) -> Optional[FaultKind]:
        """The fault scheduled for this shard attempt, if any."""
        return self.firing.get((shard, attempt))

    def firing_points(self) -> Tuple[Tuple[int, int, str], ...]:
        """All ``(shard, attempt, kind)`` points, sorted."""
        return tuple(
            (shard, attempt, kind.value)
            for (shard, attempt), kind in sorted(self.firing.items())
        )

    def faults_on(self, shard: int) -> int:
        """How many faults are scheduled on a shard (stacked attempts)."""
        return sum(1 for (s, _) in self.firing if s == shard)


@dataclass(frozen=True)
class CompiledRecordFaultPlan:
    """Record faults resolved to concrete ``(day, client)`` cells.

    Attributes:
        points: Maps ``(day, client_index)`` — indices into the full
            population — to the fault instances landing in that cell.
            Each instance is ``(kind, spec_index, instance)``; the last
            two disambiguate record-slot derivation when several
            instances share a cell.
        seed: The scenario seed the plan was compiled against.
    """

    points: Dict[Tuple[int, int], Tuple[Tuple[FaultKind, int, int], ...]] = (
        field(default_factory=dict)
    )
    seed: int = 0

    @property
    def empty(self) -> bool:
        """True when no record faults are scheduled."""
        return not self.points

    def instances_for(
        self, day: int, client_index: int
    ) -> Tuple[Tuple[FaultKind, int, int], ...]:
        """The fault instances landing on one (day, client) cell."""
        return self.points.get((day, client_index), ())

    def planted_counts(self) -> Dict[str, int]:
        """Scheduled instances per kind (for telemetry counters)."""
        counts: Dict[str, int] = {}
        for instances in self.points.values():
            for kind, _, _ in instances:
                counts[kind.value] = counts.get(kind.value, 0) + 1
        return counts
