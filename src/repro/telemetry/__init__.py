"""Unified telemetry: metrics registry, phase tracing, structured logs.

The paper's methodology is itself a measurement pipeline; this package
is the pipeline's *own* instrumentation, the counterpart of the
measurement accounting a production anycast CDN keeps over its beacon
and passive-log volumes (§3).  One :class:`Telemetry` object per run
bundles:

* a :class:`MetricsRegistry` of counters, gauges, and histograms with
  fixed log-spaced buckets (so shards merge deterministically);
* a :class:`SpanTracker` of nested phase timers producing the
  hierarchical wall-clock breakdown;
* the run context (seed, engine, workers, config hash) stamped on
  structured JSON-lines logs via :func:`configure_logging`.

Snapshots (:class:`TelemetrySnapshot`) cross process boundaries and
merge order-insensitively, mirroring the measurement sinks; they export
to JSON and Prometheus text format, pretty-print as a run report, and
distill into the run manifest written alongside every dataset.
"""

from repro.telemetry.core import Telemetry, config_digest
from repro.telemetry.history import (
    BenchHistory,
    ComparisonResult,
    PerfRecord,
    check_history,
    compare_records,
    format_history_report,
    host_fingerprint,
    record_from_snapshot,
)
from repro.telemetry.logs import (
    JsonLineFormatter,
    RunContext,
    TextLineFormatter,
    configure_logging,
    get_logger,
)
from repro.telemetry.memory import MemoryProbe, peak_rss_bytes
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.report import (
    build_run_manifest,
    format_run_report,
    manifest_path_for,
    write_run_manifest,
)
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.telemetry.spans import SpanRecord, SpanTracker
from repro.telemetry.trace import (
    TraceEvent,
    TraceLog,
    active_trace,
    format_trace_report,
    merge_trace_logs,
    set_active_trace,
)

__all__ = [
    "BenchHistory",
    "ComparisonResult",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "MemoryProbe",
    "MetricsRegistry",
    "PerfRecord",
    "RunContext",
    "SpanRecord",
    "SpanTracker",
    "Telemetry",
    "TelemetrySnapshot",
    "TextLineFormatter",
    "TraceEvent",
    "TraceLog",
    "active_trace",
    "build_run_manifest",
    "check_history",
    "compare_records",
    "config_digest",
    "configure_logging",
    "format_history_report",
    "format_run_report",
    "format_trace_report",
    "get_logger",
    "host_fingerprint",
    "manifest_path_for",
    "merge_trace_logs",
    "peak_rss_bytes",
    "record_from_snapshot",
    "set_active_trace",
    "write_run_manifest",
]
