"""Tests for client population and workload models."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.clients.population import (
    ClientPopulationConfig,
    generate_population,
)
from repro.clients.workload import WorkloadConfig, WorkloadModel
from repro.dns.ldns import LdnsDirectory
from repro.geo.coords import haversine_km
from repro.geo.geolocation import GeolocationDatabase
from repro.geo.metros import MetroDatabase
from repro.net.topology import generate_topology


@pytest.fixture(scope="module")
def world():
    topo = generate_topology(MetroDatabase(), seed=31)
    ldns = LdnsDirectory(topo, seed=31)
    return topo, ldns


def make_population(world, **kwargs):
    topo, ldns = world
    geo = GeolocationDatabase(error_fraction=0.0, seed=1)
    config = ClientPopulationConfig(prefix_count=300, **kwargs)
    return generate_population(topo, ldns, geo, config, seed=5), geo, topo


class TestPopulation:
    def test_count_and_uniqueness(self, world):
        clients, _, _ = make_population(world)
        assert len(clients) == 300
        assert len({c.key for c in clients}) == 300

    def test_registered_in_geolocation(self, world):
        clients, geo, _ = make_population(world)
        for client in clients[:50]:
            assert geo.true_location(client.key) == client.location

    def test_home_metro_is_isp_pop(self, world):
        clients, _, topo = make_population(world)
        for client in clients:
            assert client.home_metro in topo.get(client.asn).pop_metros

    def test_location_near_home_metro(self, world):
        clients, _, topo = make_population(world)
        config = ClientPopulationConfig()
        for client in clients:
            center = topo.metro_db.get(client.home_metro).location
            assert haversine_km(client.location, center) <= (
                config.scatter_km_max + 1.0
            )

    def test_positive_volume_and_delay(self, world):
        clients, _, _ = make_population(world)
        assert all(c.daily_queries > 0 for c in clients)
        assert all(c.access_delay_ms > 0 for c in clients)

    def test_volume_is_heavily_skewed(self, world):
        clients, _, _ = make_population(world)
        volumes = sorted(c.daily_queries for c in clients)
        top_decile_share = sum(volumes[-30:]) / sum(volumes)
        assert top_decile_share > 0.4  # lognormal skew

    def test_ldns_assigned_from_directory(self, world):
        topo, ldns = world
        clients, _, _ = make_population(world)
        for client in clients:
            assert client.ldns_id in ldns

    def test_deterministic(self, world):
        a, _, _ = make_population(world)
        b, _, _ = make_population(world)
        assert [c.key for c in a] == [c.key for c in b]
        assert [c.daily_queries for c in a] == [c.daily_queries for c in b]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"prefix_count": 0},
            {"scatter_km_mean": -1.0},
            {"scatter_km_mean": 100.0, "scatter_km_max": 50.0},
            {"volume_median_queries": 0.0},
            {"volume_sigma": -1.0},
            {"access_delay_median_ms": 0.0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClientPopulationConfig(**kwargs)


class TestWorkload:
    @pytest.fixture()
    def model(self):
        return WorkloadModel()

    @pytest.fixture()
    def client(self, world):
        clients, _, _ = make_population(world)
        return clients[0]

    def test_queries_non_negative(self, model, client):
        rng = random.Random(0)
        assert all(
            model.daily_queries(client, False, rng) >= 0 for _ in range(100)
        )

    def test_weekend_volume_lower_on_average(self, model, client):
        rng = random.Random(1)
        weekday = sum(model.daily_queries(client, False, rng) for _ in range(400))
        weekend = sum(model.daily_queries(client, True, rng) for _ in range(400))
        assert weekend < weekday

    def test_beacons_bounded_by_queries_and_cap(self, model):
        rng = random.Random(2)
        config = model.config
        for queries in (0, 1, 5, 100, 10_000):
            beacons = model.daily_beacons(queries, rng)
            assert 0 <= beacons <= min(queries, config.max_beacons_per_day)

    def test_beacon_fraction_roughly_respected(self, model):
        rng = random.Random(3)
        total = sum(model.daily_beacons(100, rng) for _ in range(300))
        expected = 300 * 100 * model.config.beacon_fraction
        assert 0.8 * expected <= total <= 1.2 * expected

    def test_zero_queries_zero_beacons(self, model):
        assert model.daily_beacons(0, random.Random(0)) == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beacon_fraction": 0.0},
            {"beacon_fraction": 1.5},
            {"weekend_volume_factor": 0.0},
            {"max_beacons_per_day": 0},
            {"min_beacons_per_day": -1},
            {"min_beacons_per_day": 10, "max_beacons_per_day": 5},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(**kwargs)
