"""Sharded parallel campaign execution, resilient to worker faults.

Production anycast CDNs shard their measurement pipelines the same way:
per-front-end (or per-prefix) local state, merged globally.  Here the
parallel axis is the client population — each worker process runs the
full calendar for one contiguous shard of /24s and returns a partial
:class:`repro.simulation.dataset.StudyDataset`, which the coordinator
merges.

Correctness rests on two properties established elsewhere:

* every random draw in :class:`repro.simulation.campaign.CampaignRunner`
  comes from an RNG derived per ``(client, day)`` (or finer), so a
  client's measurements do not depend on which shard runs it — this
  holds for both measurement engines (the vectorized engine derives its
  ``numpy.random.Generator`` per (client, day) the same way), so the
  ``engine`` setting composes freely with ``workers``;
* all dataset sinks are mergeable, and
  :meth:`repro.simulation.dataset.StudyDataset.digest` is canonical, so
  ``serial ≡ parallel ≡ reordered`` is testable bit-for-bit within
  either engine.

**Resilience.**  The coordinator treats every shard attempt as
disposable: a crash, hang (when ``shard_timeout`` is set), transient
exception, or corrupted payload fails the attempt, and the shard is
retried with exponential backoff up to ``max_retries`` times.  Because
each retry re-derives the exact same RNG streams, a campaign that
survives faults via retries produces a dataset *bit-identical* to the
fault-free run.  Completed shards can be spilled as checkpoints
(``checkpoint_dir``) and reused on resume; a shard that exhausts its
retries either raises :class:`repro.errors.ShardFailureError` or — with
``allow_partial`` — is dropped, leaving a partial dataset whose
:meth:`~repro.simulation.dataset.StudyDataset.missing_ranges` names the
gap.  Every shard payload crosses the process boundary inside an
integrity envelope (SHA-256 over the columnar transport bytes of
:mod:`repro.simulation.transport` — raw sample/sketch buffers plus a
small manifest, shipped via shared memory where available), so
corruption in transit is detected rather than merged.

Workers rebuild the scenario from its :class:`ScenarioConfig` — scenario
construction is cheap relative to a multi-day campaign and avoids
pickling the whole routed topology.  For small populations the rebuild
plus process startup dominates; parallelism pays off from roughly a
thousand client /24s per worker upward.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import queue as queue_module
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    FaultError,
    ShardFailureError,
    ValidationError,
)
from repro.faults import (
    CompiledFaultPlan,
    FaultKind,
    InjectedMergeError,
    WorkerFaultInjector,
)
from repro.measurement.aggregate import GroupedDailyAggregates, RequestDiffLog
from repro.measurement.logs import PassiveLog
from repro.measurement.validate import QuarantineLog
from repro.simulation.campaign import (
    CampaignConfig,
    CampaignProgress,
    CampaignRunner,
    CampaignStats,
)
from repro.simulation.checkpoint import (
    load_shard_checkpoint,
    load_shard_quarantine,
    write_shard_checkpoint,
)
from repro.simulation.dataset import StudyDataset
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.simulation.transport import (
    HAVE_SHARED_MEMORY,
    decode_shard_payload,
    encode_shard_payload,
    receive_payload,
    release_payload,
    ship_payload,
)
from repro.telemetry import (
    RunContext,
    Telemetry,
    config_digest,
    get_logger,
)

_log = get_logger("parallel")

#: Fork keeps worker startup cheap where available (Linux); elsewhere
#: fall back to spawn, which re-imports this module in each worker.
_START_METHOD = (
    "fork"
    if "fork" in multiprocessing.get_all_start_methods()
    else "spawn"
)

#: Coordinator poll interval while shard attempts are in flight.
_POLL_SECONDS = 0.01


def shard_bounds(population: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal half-open index ranges covering a population.

    The first ``population % shards`` shards get one extra client, so any
    two shards differ in size by at most one.  ``shards`` is clamped to
    ``population`` — callers must size their worker pool off the
    *returned* list, not the requested count.

    Raises:
        ConfigurationError: if ``shards`` < 1 or ``population`` < 1.
    """
    if population < 1:
        raise ConfigurationError("population must be >= 1")
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    shards = min(shards, population)
    base, extra = divmod(population, shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


@dataclasses.dataclass(frozen=True)
class _ShardTask:
    """Everything one shard attempt needs to run in a worker process.

    ``heartbeats`` is an optional queue (a ``multiprocessing.Manager``
    proxy for worker processes, a plain queue in-process) the worker
    posts per-day progress dicts into; absent when no progress hook is
    configured, so quiet runs pay no Manager cost.
    """

    scenario_config: ScenarioConfig
    campaign_config: CampaignConfig
    start: int
    stop: int
    shard_index: int
    attempt: int
    fault_kind: Optional[FaultKind]
    hang_seconds: float
    use_shm: bool = False
    heartbeats: Optional[object] = None


@dataclasses.dataclass(frozen=True)
class _ShardEnvelope:
    """A shard result in transit: columnar payload plus integrity hash.

    The payload is the columnar encoding of
    :func:`repro.simulation.transport.encode_shard_payload` — raw
    sample/sketch buffers plus a pickled manifest, never the client
    population.  It travels either inline (``payload``) or through a
    shared-memory block (``shm_name``); ``payload_size`` is the exact
    byte length either way.  The hash is computed over the encoded
    bytes *before* any (injected or organic) corruption, so the
    coordinator verifies content integrity end to end instead of
    trusting the transport.
    """

    shard_index: int
    attempt: int
    payload: bytes
    sha256: str
    shm_name: Optional[str] = None
    payload_size: int = 0


def _run_shard(task: _ShardTask) -> _ShardEnvelope:
    """Worker entry point: rebuild the scenario, run one client shard.

    The worker's telemetry crosses the process boundary inside the
    envelope as a snapshot (the live :class:`Telemetry` holds
    unpicklable state); the coordinator absorbs the snapshots
    order-insensitively.  The task's scheduled fault (if any) fires at
    its site: crash before any work, transient exception at a derived
    day, hang after the work, payload corruption on the way out.
    """
    injector = WorkerFaultInjector(
        task.fault_kind,
        seed=task.scenario_config.seed,
        shard_index=task.shard_index,
        attempt=task.attempt,
        hang_seconds=task.hang_seconds,
    )
    # Crash before the (comparatively expensive) scenario rebuild — a
    # worker that dies on arrival does no work at all.
    injector.on_worker_start()
    engine = task.campaign_config.engine or task.scenario_config.engine
    telemetry = Telemetry(
        RunContext(
            seed=task.scenario_config.seed,
            engine=engine,
            workers=1,
            config_hash=config_digest(task.scenario_config),
        )
    )
    # Trace events this worker emits land on its own shard lane,
    # stamped with the attempt so retries are distinguishable.
    telemetry.trace.lane = task.shard_index
    telemetry.trace.attempt = task.attempt
    heartbeat = None
    if task.heartbeats is not None:
        channel = task.heartbeats

        def heartbeat(day: int, num_days: int, beacons: int) -> None:
            try:
                channel.put(
                    {
                        "shard": task.shard_index,
                        "attempt": task.attempt,
                        "day": day,
                        "days": num_days,
                        "beacons": beacons,
                    }
                )
            except Exception:
                # Progress is best-effort; a torn Manager connection
                # (e.g. coordinator tearing down) must not fail the
                # shard's real work.
                pass

    # The rebuild is real per-worker work; timing it keeps the merged
    # phase tree honest about where the sharded run's seconds go.
    with telemetry.span("scenario_build"):
        scenario = Scenario.build(task.scenario_config)
    runner = CampaignRunner(
        scenario,
        task.campaign_config,
        client_slice=(task.start, task.stop),
        telemetry=telemetry,
        fault_injector=injector,
        heartbeat=heartbeat,
    )
    dataset = runner.run()
    assert runner.stats is not None
    payload = encode_shard_payload(
        dataset, runner.stats, runner.telemetry.snapshot(), runner.quarantine
    )
    sha256 = hashlib.sha256(payload).hexdigest()
    # Corruption (injected here, organic anywhere) lands on the encoded
    # bytes before they are placed, so the integrity check sees it
    # regardless of whether the bytes travel inline or via shared memory.
    payload = injector.transform_payload(payload)
    inline, shm_name = ship_payload(payload, use_shm=task.use_shm)
    return _ShardEnvelope(
        shard_index=task.shard_index,
        attempt=task.attempt,
        payload=inline,
        sha256=sha256,
        shm_name=shm_name,
        payload_size=len(payload),
    )


class _InlineResult:
    """An already-evaluated stand-in for :class:`AsyncResult`."""

    def __init__(self, task: _ShardTask) -> None:
        self._error: Optional[BaseException] = None
        self._envelope: Optional[_ShardEnvelope] = None
        try:
            self._envelope = _run_shard(task)
        except Exception as error:
            self._error = error

    def ready(self) -> bool:
        """Always true — the work ran synchronously at submit time."""
        return True

    def get(self) -> _ShardEnvelope:
        """The envelope, or re-raise the worker's exception."""
        if self._error is not None:
            raise self._error
        assert self._envelope is not None
        return self._envelope


class _InlinePool:
    """A single-process pool: shard attempts run in the coordinator.

    Gives the resilient coordinator one code path for both execution
    modes.  Timeouts cannot preempt an in-process attempt (``ready()``
    is immediately true), which is the documented ``shard_timeout``
    limitation for single-worker runs.
    """

    def apply_async(self, func, args) -> _InlineResult:
        """Run the task immediately; mirror ``Pool.apply_async``."""
        assert func is _run_shard
        (task,) = args
        return _InlineResult(task)

    def __enter__(self) -> "_InlinePool":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


#: Minimum seconds between ``progress_listener`` emissions while the
#: coordinator is aggregating heartbeats (the final emission is never
#: throttled).
_PROGRESS_EMIT_SECONDS = 0.2


class _ProgressAggregator:
    """Folds worker heartbeats into the campaign-level progress hooks.

    ``progress_callback`` keeps its serial contract under sharding: it
    fires exactly once per day, in day order, when that day is complete
    across *every* shard (the minimum of per-shard completed days).
    Retried attempts replay earlier days; the per-shard maximum keeps
    reported progress monotone, so replays never re-fire the callback.

    ``progress_listener`` receives throttled :class:`CampaignProgress`
    observations with live beacon totals, shard completion, and retry
    counts.
    """

    def __init__(
        self,
        cfg: CampaignConfig,
        shards: int,
        run_start: float,
    ) -> None:
        self._cfg = cfg
        self._shards = shards
        self._run_start = run_start
        self._num_days = 0
        self._days_done: Dict[int, int] = {}
        self._beacons: Dict[int, int] = {}
        self._complete: Set[int] = set()
        self._retries = 0
        self._reported = 0
        self._last_emit = float("-inf")

    @property
    def wanted(self) -> bool:
        """Whether any progress hook is configured at all."""
        return (
            self._cfg.progress_callback is not None
            or self._cfg.progress_listener is not None
        )

    def heartbeat(self, message: object) -> None:
        """Fold one worker heartbeat dict in (malformed ones dropped)."""
        if not isinstance(message, dict):
            return
        try:
            shard = int(message["shard"])
            day = int(message["day"])
            self._num_days = max(self._num_days, int(message["days"]))
            beacons = int(message["beacons"])
        except (KeyError, TypeError, ValueError):
            return
        self._days_done[shard] = max(self._days_done.get(shard, 0), day + 1)
        self._beacons[shard] = max(self._beacons.get(shard, 0), beacons)
        self._advance()

    def mark_complete(self, shard: int) -> None:
        """A shard's data has merged (run, resumed, or checkpointed)."""
        self._complete.add(shard)
        if self._num_days:
            self._days_done[shard] = self._num_days
        self._advance()

    def note_retry(self) -> None:
        self._retries += 1

    def finish(self) -> None:
        """Report any remaining days and emit the final observation.

        Called on normal coordinator exit only: the run is over, so the
        day sequence completes even if trailing heartbeats were lost.
        """
        if self._num_days:
            for shard in range(self._shards):
                self._days_done[shard] = self._num_days
        self._advance(force=True)

    def _floor_days(self) -> int:
        floor: Optional[int] = None
        for shard in range(self._shards):
            if shard in self._complete:
                done = self._num_days
            else:
                done = self._days_done.get(shard)
                if done is None:
                    return 0
            floor = done if floor is None else min(floor, done)
        return floor or 0

    def _advance(self, force: bool = False) -> None:
        floor = self._floor_days()
        callback = self._cfg.progress_callback
        if callback is not None:
            while self._reported < floor:
                callback(self._reported, self._num_days)
                self._reported += 1
        listener = self._cfg.progress_listener
        if listener is None:
            return
        now = time.perf_counter()
        if not force and now - self._last_emit < _PROGRESS_EMIT_SECONDS:
            return
        self._last_emit = now
        elapsed = now - self._run_start
        beacons = sum(self._beacons.values())
        listener(
            CampaignProgress(
                days_completed=floor,
                num_days=self._num_days,
                beacons=beacons,
                beacons_per_second=(
                    beacons / elapsed if elapsed > 0 else 0.0
                ),
                elapsed_seconds=elapsed,
                shards_done=len(self._complete),
                shards_total=self._shards,
                retries=self._retries,
            )
        )


class ParallelCampaignRunner:
    """Runs a campaign sharded across worker processes, riding out faults.

    Drop-in equivalent of :class:`CampaignRunner` — same constructor
    shape, same :meth:`run` contract, same :attr:`stats` afterwards — but
    the client population is partitioned into contiguous shards executed
    by worker processes and merged.  Results are bit-identical to a
    serial run (same :meth:`StudyDataset.digest`), including runs that
    recover from injected or organic shard failures via retries.

    The worker pool is sized off the *clamped* shard count
    (:func:`shard_bounds` caps shards at the population), so requesting
    more workers than clients never spawns idle processes; the resolved
    count is exported as the ``campaign.effective_workers`` gauge.

    Args:
        scenario: The built study environment.
        config: Campaign knobs.  ``progress_callback`` and
            ``progress_listener`` are honored for sharded runs: workers
            post per-day heartbeats through a queue, and the coordinator
            aggregates them — the callback fires once per day completed
            across *all* shards, in day order, exactly like a serial
            run.  The resilience knobs — ``fault_plan``, ``max_retries``,
            ``shard_timeout``, ``allow_partial``, ``checkpoint_dir``,
            ``resume`` — are honored here; see :class:`CampaignConfig`.
        workers: Worker-process count; ``None`` resolves
            ``config.workers``, then ``scenario.config.workers``.  A
            resolved count of 1 runs serially in-process (still with
            retries/checkpoints when those are configured).

    After :meth:`run`, :attr:`fired_faults` lists the fault-plan firing
    points that were reached, as sorted ``(shard, attempt, kind)``
    tuples — identical across engines and worker counts for a fixed
    ``(seed, shard count)``.
    """

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[CampaignConfig] = None,
        workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._scenario = scenario
        self._config = config or CampaignConfig()
        if workers is None:
            workers = self._config.workers
        if workers is None:
            workers = scenario.config.workers
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        # Shards first, workers second: the pool never outnumbers the
        # (population-clamped) shard list it serves.
        self._bounds = shard_bounds(len(scenario.clients), workers)
        self._workers = min(workers, len(self._bounds))
        engine = self._config.engine or scenario.config.engine
        self.telemetry = telemetry or Telemetry(
            RunContext(
                seed=scenario.config.seed,
                engine=engine,
                workers=self._workers,
                config_hash=config_digest(scenario.config),
            )
        )
        self.stats: Optional[CampaignStats] = None
        self.fired_faults: Tuple[Tuple[int, int, str], ...] = ()
        #: Merged quarantine accounting across all shards (or the single
        #: in-process run).  Deterministic: identical to a serial run's.
        self.quarantine = QuarantineLog()

    @property
    def workers(self) -> int:
        """The resolved worker count (clamped to the shard count)."""
        return self._workers

    @property
    def shards(self) -> int:
        """How many client shards the campaign splits into."""
        return len(self._bounds)

    def _needs_resilience(self) -> bool:
        cfg = self._config
        return cfg.fault_plan is not None or cfg.checkpoint_dir is not None

    def run(self) -> StudyDataset:
        """Execute the campaign and return the merged dataset.

        Raises:
            ShardFailureError: when a shard exhausts its retries and the
                campaign was not configured with ``allow_partial``.
        """
        tel = self.telemetry
        tel.gauge(
            "campaign.effective_workers",
            "worker processes actually used (clamped to shard count)",
        ).set(self._workers)
        tel.gauge(
            "campaign.shards", "client shards the campaign split into"
        ).set(len(self._bounds))

        if self._workers == 1 and not self._needs_resilience():
            runner = CampaignRunner(
                self._scenario, self._config, telemetry=tel
            )
            dataset = runner.run()
            self.stats = runner.stats
            self.quarantine = runner.quarantine
            self._set_coverage_gauge(dataset)
            return dataset

        dataset = self._run_resilient()
        self._set_coverage_gauge(dataset)
        return dataset

    def _set_coverage_gauge(self, dataset: StudyDataset) -> None:
        """Export the degradation gauge: fraction of clients measured."""
        self.telemetry.gauge(
            "campaign.client_coverage",
            "fraction of the client population with measurements",
            merge="min",
        ).set(dataset.coverage_fraction)

    # ------------------------------------------------------------------
    # Resilient coordinator
    # ------------------------------------------------------------------

    def _run_resilient(self) -> StudyDataset:
        run_start = time.perf_counter()
        scenario = self._scenario
        cfg = self._config
        tel = self.telemetry
        engine = cfg.engine or scenario.config.engine
        seed = scenario.config.seed
        bounds = self._bounds
        # Workers receive no *worker*-fault plan: the coordinator compiles
        # it once and hands each attempt its own (possibly absent) fault,
        # so the plan cannot double-fire through CampaignRunner's
        # self-compile.  Record (dirty-data) faults do travel with the
        # workers — each shard dirties its own slice of the population-
        # derived (day, client) grid.
        worker_config = dataclasses.replace(
            cfg,
            progress_callback=None,
            progress_listener=None,
            workers=None,
            fault_plan=(
                cfg.fault_plan.record_only()
                if cfg.fault_plan is not None
                else None
            ),
            checkpoint_dir=None,
            resume=False,
        )
        # Checkpoint identity: anything that changes the *data* — the
        # scenario, the beacon methodology, the engine, the validation
        # policy, and any dirty-data faults.  Deliberately excludes
        # worker-fault/retry knobs, which never change the data.
        record_plan = worker_config.fault_plan
        checkpoint_hash = config_digest(
            (
                scenario.config,
                worker_config.beacon,
                engine,
                cfg.validation,
                record_plan.spec_string() if record_plan is not None else None,
                cfg.sketch_threshold,
                cfg.sketch_accuracy,
                cfg.sketch_max_buckets,
                cfg.frontend_capacity,
                cfg.load_policy,
                (
                    cfg.overload_plan.spec_string()
                    if cfg.overload_plan is not None
                    else None
                ),
            )
        )
        compiled: Optional[CompiledFaultPlan] = (
            cfg.fault_plan.compile(seed, len(bounds))
            if cfg.fault_plan is not None
            else None
        )

        retries_counter = tel.counter(
            "shard.retries_total", "shard attempts re-dispatched after failure"
        )
        failures_counter = tel.counter(
            "shard.failures_total",
            "failed shard attempts (crash, timeout, corruption, merge)",
        )
        injected_counter = tel.counter(
            "faults.injected_total", "fault-plan firing points reached"
        )

        merged: Optional[StudyDataset] = None
        merged_stats: Optional[CampaignStats] = None
        fired: List[Tuple[int, int, str]] = []
        missing: List[int] = []
        last_error: Dict[int, str] = {}
        pending: Set[int] = set(range(len(bounds)))
        progress = _ProgressAggregator(cfg, len(bounds), run_start)
        # Start timestamps of in-flight attempts, for the per-attempt
        # trace slices rendered on each shard's lane.
        dispatch_ts: Dict[Tuple[int, int], int] = {}

        # Resume: reuse intact, matching shard checkpoints.
        if cfg.resume and cfg.checkpoint_dir is not None:
            for index in sorted(pending):
                try:
                    loaded = load_shard_checkpoint(
                        cfg.checkpoint_dir, index, bounds[index],
                        seed=seed, config_hash=checkpoint_hash,
                    )
                except CheckpointError as error:
                    tel.counter(
                        "checkpoint.invalid_total",
                        "checkpoints rejected by integrity checks",
                    ).inc()
                    tel.trace.instant(
                        "checkpoint.invalid", "checkpoint", shard=index
                    )
                    _log.warning(
                        "checkpoint rejected",
                        extra={"shard": index, "error": str(error)},
                    )
                    continue
                if loaded is None:
                    continue
                tel.counter(
                    "checkpoint.loaded_total",
                    "shards restored from checkpoints instead of re-run",
                ).inc()
                tel.trace.instant(
                    "checkpoint.loaded", "checkpoint", shard=index
                )
                merged = loaded if merged is None else merged.merge(loaded)
                restored_quarantine = load_shard_quarantine(
                    cfg.checkpoint_dir, index
                )
                if restored_quarantine is not None:
                    self.quarantine.merge(restored_quarantine)
                pending.discard(index)
                progress.mark_complete(index)

        _log.info(
            "dispatching shards",
            extra={
                "shards": len(bounds),
                "resumed": len(bounds) - len(pending),
                "workers": self._workers,
                "start_method": _START_METHOD,
                "fault_plan": (
                    cfg.fault_plan.spec_string() if cfg.fault_plan else None
                ),
            },
        )

        context = multiprocessing.get_context(_START_METHOD)
        # The heartbeat channel exists only when a progress hook asked
        # for it: worker processes need a picklable Manager queue proxy,
        # which costs an extra process — quiet runs skip it entirely.
        manager = None
        heartbeat_channel = None
        if progress.wanted:
            if self._workers == 1:
                heartbeat_channel = queue_module.SimpleQueue()
            else:
                manager = context.Manager()
                heartbeat_channel = manager.Queue()

        def drain_heartbeats() -> None:
            if heartbeat_channel is None:
                return
            while True:
                try:
                    message = heartbeat_channel.get_nowait()
                except (queue_module.Empty, OSError, EOFError):
                    return
                progress.heartbeat(message)

        pool = (
            _InlinePool()
            if self._workers == 1
            else context.Pool(processes=self._workers)
        )
        # Worker-process shards ship large payloads via shared memory;
        # an in-process pool hands the envelope straight back, so the
        # extra copy would be pure overhead.
        use_shm = self._workers > 1 and HAVE_SHARED_MEMORY
        with pool:
            inflight: Dict[Tuple[int, int], Tuple[object, Optional[float]]] = {}
            retry_queue: List[Tuple[float, int, int]] = []
            # Timed-out attempts whose workers may still complete and
            # leave a shared-memory block behind; polled so their blocks
            # are released instead of leaked.
            abandoned: List[object] = []

            def sweep_abandoned() -> None:
                for stale in list(abandoned):
                    if not stale.ready():  # type: ignore[attr-defined]
                        continue
                    abandoned.remove(stale)
                    try:
                        envelope = stale.get()  # type: ignore[attr-defined]
                    except Exception:
                        continue
                    release_payload(envelope.shm_name)

            def dispatch(shard: int, attempt: int) -> None:
                kind = (
                    compiled.fault_for(shard, attempt)
                    if compiled is not None
                    else None
                )
                if kind is not None:
                    # Firing points are deterministic per (seed, shards),
                    # so counting at dispatch keeps the accounting exact
                    # even for faults that destroy the worker's telemetry.
                    fired.append((shard, attempt, kind.value))
                    injected_counter.inc()
                    tel.counter(
                        f"faults.injected.{kind.value}_total",
                        f"{kind.value} faults fired by the plan",
                    ).inc()
                    tel.trace.instant(
                        "fault.injected",
                        "fault",
                        shard=shard,
                        attempt=attempt,
                        kind=kind.value,
                    )
                dispatch_ts[(shard, attempt)] = tel.trace.now_us()
                tel.trace.instant(
                    "shard.dispatch", "scheduler", shard=shard, attempt=attempt
                )
                start, stop = bounds[shard]
                task = _ShardTask(
                    scenario_config=scenario.config,
                    campaign_config=worker_config,
                    start=start,
                    stop=stop,
                    shard_index=shard,
                    attempt=attempt,
                    fault_kind=kind,
                    hang_seconds=(
                        compiled.hang_seconds if compiled is not None else 0.0
                    ),
                    use_shm=use_shm,
                    heartbeats=heartbeat_channel,
                )
                deadline = (
                    time.monotonic() + cfg.shard_timeout
                    if cfg.shard_timeout is not None
                    else None
                )
                inflight[(shard, attempt)] = (
                    pool.apply_async(_run_shard, (task,)),
                    deadline,
                )

            def on_failure(shard: int, attempt: int, error: Exception) -> None:
                nonlocal merged
                failures_counter.inc()
                last_error[shard] = f"{type(error).__name__}: {error}"
                started = dispatch_ts.pop((shard, attempt), None)
                now_us = tel.trace.now_us()
                if started is not None:
                    tel.trace.complete(
                        "shard.attempt",
                        "shard",
                        ts_us=started,
                        dur_us=now_us - started,
                        shard=shard,
                        attempt=attempt,
                        status="failed",
                        error=type(error).__name__,
                    )
                _log.warning(
                    "shard attempt failed",
                    extra={
                        "shard": shard,
                        "attempt": attempt,
                        "error": last_error[shard],
                    },
                )
                if isinstance(error, (ConfigurationError, ValidationError)):
                    # Deterministic failures — misconfiguration, or an
                    # invalid record under the strict policy — fail every
                    # retry identically; surface them instead of burning
                    # budget.
                    raise error
                if attempt < cfg.max_retries:
                    retries_counter.inc()
                    progress.note_retry()
                    backoff = cfg.retry_backoff_seconds * (2 ** attempt)
                    tel.trace.instant(
                        "shard.retry",
                        "scheduler",
                        shard=shard,
                        attempt=attempt + 1,
                        backoff_seconds=backoff,
                    )
                    retry_queue.append(
                        (time.monotonic() + backoff, shard, attempt + 1)
                    )
                    return
                attempts = attempt + 1
                if cfg.allow_partial:
                    missing.append(shard)
                    pending.discard(shard)
                    tel.trace.instant(
                        "shard.dropped",
                        "scheduler",
                        shard=shard,
                        attempt=attempt,
                        attempts=attempts,
                    )
                    _log.warning(
                        "shard dropped after exhausting retries",
                        extra={"shard": shard, "attempts": attempts},
                    )
                    return
                start, stop = bounds[shard]
                raise ShardFailureError(
                    f"shard {shard} (clients [{start}, {stop})) failed after "
                    f"{attempts} attempts; last error: {last_error[shard]}",
                    shard_index=shard,
                    attempts=attempts,
                    client_range=(start, stop),
                ) from error

            def on_ready(shard: int, attempt: int, async_result) -> None:
                nonlocal merged, merged_stats
                try:
                    envelope = async_result.get()
                    payload = receive_payload(
                        envelope.payload,
                        envelope.shm_name,
                        envelope.payload_size,
                    )
                    actual = hashlib.sha256(payload).hexdigest()
                    if actual != envelope.sha256:
                        raise FaultError(
                            f"shard {shard} attempt {attempt}: payload "
                            "integrity check failed (content hash mismatch)"
                        )
                    shard_dataset, shard_stats, shard_snapshot, shard_quarantine = (
                        decode_shard_payload(payload, scenario.clients)
                    )
                    if (
                        compiled is not None
                        and compiled.fault_for(shard, attempt)
                        is FaultKind.MERGE
                    ):
                        raise InjectedMergeError(
                            f"injected merge failure (shard {shard} "
                            f"attempt {attempt})"
                        )
                except Exception as error:
                    on_failure(shard, attempt, error)
                    return
                if cfg.checkpoint_dir is not None:
                    write_shard_checkpoint(
                        cfg.checkpoint_dir, shard, bounds[shard],
                        shard_dataset, seed=seed, config_hash=checkpoint_hash,
                        quarantine=shard_quarantine,
                    )
                    tel.counter(
                        "checkpoint.saved_total",
                        "completed shards spilled as checkpoints",
                    ).inc()
                    tel.trace.instant(
                        "checkpoint.saved",
                        "checkpoint",
                        shard=shard,
                        attempt=attempt,
                    )
                started = dispatch_ts.pop((shard, attempt), None)
                if started is not None:
                    tel.trace.complete(
                        "shard.attempt",
                        "shard",
                        ts_us=started,
                        dur_us=tel.trace.now_us() - started,
                        shard=shard,
                        attempt=attempt,
                        status="ok",
                    )
                tel.absorb(shard_snapshot)
                self.quarantine.merge(shard_quarantine)
                merged = (
                    shard_dataset
                    if merged is None
                    else merged.merge(shard_dataset)
                )
                merged_stats = (
                    shard_stats
                    if merged_stats is None
                    else merged_stats.merge(shard_stats)
                )
                pending.discard(shard)
                progress.mark_complete(shard)

            for shard in sorted(pending):
                dispatch(shard, 0)

            while inflight or retry_queue:
                drain_heartbeats()
                now = time.monotonic()
                for entry in list(retry_queue):
                    ready_time, shard, attempt = entry
                    if now >= ready_time:
                        retry_queue.remove(entry)
                        dispatch(shard, attempt)
                progressed = False
                for key in list(inflight):
                    shard, attempt = key
                    async_result, deadline = inflight[key]
                    if async_result.ready():
                        del inflight[key]
                        on_ready(shard, attempt, async_result)
                        progressed = True
                    elif deadline is not None and now > deadline:
                        # The attempt is declared hung; any result it
                        # eventually produces is stale — kept only so
                        # its shared-memory block can be released.
                        del inflight[key]
                        abandoned.append(async_result)
                        on_failure(
                            shard,
                            attempt,
                            FaultError(
                                f"shard {shard} attempt {attempt} exceeded "
                                f"shard_timeout of {cfg.shard_timeout}s"
                            ),
                        )
                        progressed = True
                sweep_abandoned()
                if not progressed and (inflight or retry_queue):
                    time.sleep(_POLL_SECONDS)
            drain_heartbeats()
            sweep_abandoned()
        progress.finish()
        if manager is not None:
            manager.shutdown()

        if merged is None:
            # Every shard was lost (allow_partial): an empty dataset that
            # honestly reports zero coverage.
            bounded = cfg.sketch_threshold is not None
            merged = StudyDataset(
                calendar=scenario.calendar,
                clients=scenario.clients,
                ecs_aggregates=GroupedDailyAggregates(
                    "ecs",
                    exact_threshold=cfg.sketch_threshold,
                    relative_accuracy=cfg.sketch_accuracy,
                    max_buckets=cfg.sketch_max_buckets,
                ),
                ldns_aggregates=GroupedDailyAggregates(
                    "ldns",
                    exact_threshold=cfg.sketch_threshold,
                    relative_accuracy=cfg.sketch_accuracy,
                    max_buckets=cfg.sketch_max_buckets,
                ),
                request_diffs=RequestDiffLog(
                    bounded=bounded,
                    relative_accuracy=cfg.sketch_accuracy,
                    max_buckets=cfg.sketch_max_buckets,
                ),
                passive=PassiveLog(bounded=bounded),
                covered_ranges=(),
            )
        if missing:
            _log.warning(
                "campaign degraded to partial dataset",
                extra={
                    "missing_shards": sorted(missing),
                    "coverage": round(merged.coverage_fraction, 4),
                },
            )

        self.fired_faults = tuple(sorted(fired))
        wall_seconds = time.perf_counter() - run_start
        tel.gauge(
            "campaign.wall_seconds",
            "campaign wall-clock (max across concurrent shards)",
        ).set(wall_seconds)
        if merged_stats is None:
            merged_stats = CampaignStats.from_snapshot(tel.snapshot())
        merged_stats.wall_seconds = wall_seconds
        merged_stats.workers = self._workers
        self.stats = merged_stats
        # Re-home the merged dataset on this process's client tuple (the
        # workers' rebuilt clients are equal by value, but analyses that
        # compare identity expect the coordinator's scenario objects).
        merged.clients = scenario.clients
        return merged


def run_campaign(
    scenario: Scenario,
    config: Optional[CampaignConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[StudyDataset, CampaignStats]:
    """Run a campaign with the configured worker count.

    Dispatches to :class:`ParallelCampaignRunner` (which runs serially
    in-process when the resolved worker count is 1) and returns both the
    dataset and the run's :class:`CampaignStats`.  Pass ``telemetry`` to
    collect the run's metrics/spans into a caller-owned registry.
    """
    runner = ParallelCampaignRunner(scenario, config, telemetry=telemetry)
    dataset = runner.run()
    assert runner.stats is not None
    return dataset, runner.stats
