"""Property suite for the bounded, mergeable latency sketch.

Everything the constant-memory mode rests on is asserted here over
Hypothesis-generated sample multisets:

* merge algebra — commutative, associative, order-insensitive — via
  canonical digest equality, with and without the bucket cap binding;
* the quantile error bound versus an exact oracle, including after
  cap-forced compression (the bound doubles per halving and the sketch
  reports the widened bound);
* scalar/vectorized insert parity (``add`` loop == one ``extend``);
* serialization round trips.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError, MeasurementError
from repro.measurement.sketch import (
    DEFAULT_MAX_BUCKETS,
    MIN_MAX_BUCKETS,
    LatencySketch,
    mantissa_bits_for,
)

# Magnitudes span microseconds to minutes — a realistic RTT-ish domain
# that still covers many octaves, so the bucket cap can genuinely bind.
finite_values = st.one_of(
    st.floats(min_value=1e-2, max_value=1e5),
    st.floats(min_value=-1e4, max_value=-1e-2),
    st.just(0.0),
)
sample_lists = st.lists(finite_values, min_size=1, max_size=300)
caps = st.sampled_from([MIN_MAX_BUCKETS, 16, 64, DEFAULT_MAX_BUCKETS])

relaxed = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def sketch_of(values, max_buckets=DEFAULT_MAX_BUCKETS):
    sketch = LatencySketch(max_buckets=max_buckets)
    sketch.extend(np.asarray(values, dtype=np.float64))
    return sketch


@given(sample_lists, sample_lists, caps)
@relaxed
def test_merge_commutative(a, b, cap):
    left = sketch_of(a, cap).merge(sketch_of(b, cap))
    right = sketch_of(b, cap).merge(sketch_of(a, cap))
    assert left.digest() == right.digest()


@given(sample_lists, sample_lists, sample_lists, caps)
@relaxed
def test_merge_associative(a, b, c, cap):
    left = sketch_of(a, cap).merge(sketch_of(b, cap)).merge(sketch_of(c, cap))
    right = sketch_of(a, cap).merge(
        sketch_of(b, cap).merge(sketch_of(c, cap))
    )
    assert left.digest() == right.digest()


@given(sample_lists, st.randoms(use_true_random=False), caps)
@relaxed
def test_state_is_a_pure_function_of_the_multiset(values, rnd, cap):
    """Any insertion order, any shard split, any mix of add/extend/merge
    reaches bit-identical state — compression included."""
    serial = sketch_of(values, cap)

    shuffled = list(values)
    rnd.shuffle(shuffled)
    shards = [LatencySketch(max_buckets=cap) for _ in range(3)]
    for index, value in enumerate(shuffled):
        if index % 5 == 0:
            shards[index % 3].add(value)
        else:
            shards[index % 3].extend([value])
    merged = shards[0].merge(shards[1]).merge(shards[2])

    assert merged.digest() == serial.digest()
    assert merged.canonical_state() == serial.canonical_state()


@given(sample_lists)
@relaxed
def test_digest_idempotent_and_query_safe(values):
    sketch = sketch_of(values)
    first = sketch.digest()
    sketch.quantile(50.0)
    sketch.fraction_at_or_below(1.0)
    assert sketch.digest() == first


@given(sample_lists, caps)
@relaxed
def test_quantile_error_within_reported_bound(values, cap):
    """Interior quantiles land within ``relative_error_bound`` of a true
    sample (or within ``min_trackable`` of zero for zero-bucket hits);
    endpoints are exact."""
    sketch = sketch_of(values, cap)
    ordered = sorted(values)
    assert sketch.quantile(0.0) == ordered[0]
    assert sketch.quantile(100.0) == ordered[-1]
    bound = sketch.relative_error_bound
    for q in (10.0, 25.0, 50.0, 75.0, 90.0, 99.0):
        estimate = sketch.quantile(q)
        # The estimate must be close to *some* sample — rank resolution
        # within a shared bucket is intentionally traded away.
        best = min(
            abs(estimate - true)
            / max(abs(true), sketch.min_trackable)
            for true in ordered
        )
        assert best <= bound + 1e-12


@given(sample_lists)
@relaxed
def test_extend_equals_add_loop(values):
    looped = LatencySketch()
    for value in values:
        looped.add(value)
    assert looped.digest() == sketch_of(values).digest()


@given(sample_lists, caps)
@relaxed
def test_obj_round_trip(values, cap):
    sketch = sketch_of(values, cap)
    restored = LatencySketch.from_obj(sketch.to_obj())
    assert restored.digest() == sketch.digest()
    assert restored.count == sketch.count
    assert restored.minimum() == sketch.minimum()
    assert restored.maximum() == sketch.maximum()
    assert restored.compressions == sketch.compressions
    # The round-tripped sketch is live: inserts and merges still work.
    restored.add(1.0)
    assert restored.count == sketch.count + 1


@given(sample_lists, caps)
@relaxed
def test_column_round_trip(values, cap):
    sketch = sketch_of(values, cap)
    state = sketch.column_state()
    restored = LatencySketch.from_columns(
        mantissa_bits=state["mantissa_bits"],
        base_mantissa_bits=state["base_mantissa_bits"],
        max_buckets=state["max_buckets"],
        min_trackable=state["min_trackable"],
        pos_keys=state["pos_keys"],
        pos_counts=state["pos_counts"],
        neg_keys=state["neg_keys"],
        neg_counts=state["neg_counts"],
        zero=state["zero"],
        count=state["count"],
        minimum=state["min"],
        maximum=state["max"],
        total=state["sum"],
    )
    assert restored.digest() == sketch.digest()


def test_exact_scalars():
    sketch = sketch_of([5.0, -3.0, 0.0, 250.0, 1e-9])
    assert sketch.count == 5
    assert sketch.minimum() == -3.0
    assert sketch.maximum() == 250.0
    # 0.0 and 1e-9 both land in the exact zero bucket.
    assert sketch.fraction_at_or_below(0.0) == pytest.approx(3 / 5)


def test_signed_and_zero_buckets():
    sketch = sketch_of([-10.0] * 4 + [0.0] * 2 + [10.0] * 4)
    assert sketch.fraction_at_or_below(-5.0) == pytest.approx(0.4)
    assert sketch.fraction_at_or_below(0.0) == pytest.approx(0.6)
    assert sketch.fraction_above(5.0) == pytest.approx(0.4)
    assert sketch.median() == 0.0


def test_cap_forces_deterministic_compression():
    values = [1.5 ** k for k in range(1, 40)]
    capped = sketch_of(values, MIN_MAX_BUCKETS)
    free = sketch_of(values)
    assert free.compressions == 0
    assert capped.compressions > 0
    assert capped.relative_error_bound == free.relative_error_bound * (
        2 ** capped.compressions
    )
    assert capped.count == free.count == len(values)
    # Above the 1-mantissa-bit resolution floor the cap is hard.
    if capped.mantissa_bits > 1:
        assert capped.bucket_count <= MIN_MAX_BUCKETS + 1


def test_merge_geometry_mismatch_rejected():
    base = sketch_of([1.0, 2.0])
    with pytest.raises(MeasurementError):
        base.merge(sketch_of([1.0], max_buckets=16))
    with pytest.raises(MeasurementError):
        base.merge(LatencySketch(relative_accuracy=0.25))


def test_invalid_construction_and_inserts():
    with pytest.raises(MeasurementError):
        LatencySketch(max_buckets=MIN_MAX_BUCKETS - 1)
    with pytest.raises(MeasurementError):
        LatencySketch(relative_accuracy=0.0)
    sketch = LatencySketch()
    with pytest.raises(MeasurementError):
        sketch.add(math.inf)
    with pytest.raises(MeasurementError):
        sketch.extend([1.0, math.nan])
    with pytest.raises(AnalysisError):
        sketch.quantile(50.0)
    with pytest.raises(AnalysisError):
        sketch.minimum()


def test_from_obj_rejects_malformed():
    obj = sketch_of([1.0]).to_obj()
    with pytest.raises(MeasurementError):
        LatencySketch.from_obj({**obj, "schema": 99})
    broken = dict(obj)
    del broken["pos_keys"]
    with pytest.raises(MeasurementError):
        LatencySketch.from_obj(broken)


def test_mantissa_bits_for_accuracy_map():
    # 1% needs 6 kept bits (2**-7 ~= 0.78%); coarser targets need fewer.
    assert mantissa_bits_for(0.01) == 6
    assert mantissa_bits_for(0.25) == 1
    assert 2.0 ** -(mantissa_bits_for(0.001) + 1) <= 0.001
    with pytest.raises(MeasurementError):
        mantissa_bits_for(0.6)
