"""Tests for the simulated calendar, churn, and episode processes."""

import datetime
import random

import pytest

from repro.errors import ConfigurationError
from repro.simulation.churn import ChurnConfig, DayRoutePlan, RouteChurnModel
from repro.simulation.clock import SECONDS_PER_DAY, SimulationCalendar
from repro.simulation.episodes import (
    EpisodeConfig,
    EpisodeScope,
    PoorPathEpisodeModel,
)


class TestCalendar:
    def test_april_2015_starts_wednesday(self):
        calendar = SimulationCalendar()
        assert calendar.start == datetime.date(2015, 4, 1)
        assert calendar.day_name(0) == "Wed"
        assert not calendar.is_weekend(0)

    def test_weekend_detection(self):
        calendar = SimulationCalendar()
        # April 4-5, 2015 were Saturday and Sunday.
        assert calendar.is_weekend(3)
        assert calendar.is_weekend(4)
        assert not calendar.is_weekend(5)

    def test_date_arithmetic(self):
        calendar = SimulationCalendar()
        assert calendar.date_of(27) == datetime.date(2015, 4, 28)

    def test_bounds_enforced(self):
        calendar = SimulationCalendar(num_days=5)
        with pytest.raises(ConfigurationError):
            calendar.date_of(5)
        with pytest.raises(ConfigurationError):
            calendar.date_of(-1)

    def test_seconds_at(self):
        calendar = SimulationCalendar()
        assert calendar.seconds_at(0) == 0.0
        assert calendar.seconds_at(1) == SECONDS_PER_DAY
        assert calendar.seconds_at(1, 0.5) == 1.5 * SECONDS_PER_DAY
        with pytest.raises(ConfigurationError):
            calendar.seconds_at(0, 1.0)

    def test_label_and_len(self):
        calendar = SimulationCalendar(num_days=3)
        assert len(calendar) == 3
        assert calendar.label(0) == "2015-04-01 (Wed)"
        assert list(calendar.days()) == [0, 1, 2]

    def test_needs_at_least_one_day(self):
        with pytest.raises(ConfigurationError):
            SimulationCalendar(num_days=0)


class TestDayRoutePlan:
    def test_invariants(self):
        with pytest.raises(ConfigurationError):
            DayRoutePlan(ranks=(0, 1), fractions=(0.5,))
        with pytest.raises(ConfigurationError):
            DayRoutePlan(ranks=(0, 1), fractions=(0.5, 0.4))
        with pytest.raises(ConfigurationError):
            DayRoutePlan(ranks=(), fractions=())

    def test_single_rank(self):
        plan = DayRoutePlan(ranks=(2,), fractions=(1.0,))
        assert not plan.switched
        assert plan.final_rank == 2
        assert plan.sample_rank(random.Random(0)) == 2

    def test_switch_day_sampling(self):
        plan = DayRoutePlan(ranks=(0, 1), fractions=(0.5, 0.5))
        assert plan.switched
        rng = random.Random(1)
        samples = {plan.sample_rank(rng) for _ in range(100)}
        assert samples == {0, 1}


class TestChurn:
    def test_day_order_enforced(self, small_scenario):
        churn = small_scenario.new_churn_model()
        churn.plans_for_day(0)
        with pytest.raises(ConfigurationError, match="day by day"):
            churn.plans_for_day(2)

    def test_every_client_gets_a_plan(self, small_scenario):
        churn = small_scenario.new_churn_model()
        plans = churn.plans_for_day(0)
        assert set(plans) == {c.key for c in small_scenario.clients}

    def test_single_variant_clients_never_switch(self, small_scenario):
        churn = small_scenario.new_churn_model()
        frozen = [
            c.key for c in small_scenario.clients
            if len(churn.variants(c.key)) == 1
        ]
        assert frozen  # some clients must be structurally stable
        for day in range(small_scenario.calendar.num_days):
            plans = churn.plans_for_day(day)
            for key in frozen:
                assert not plans[key].switched

    def test_weekday_switches_exceed_weekend(self, small_scenario):
        """Run one synthetic week (Wed..Tue) and compare switch counts."""
        calendar = SimulationCalendar(num_days=7)
        churn = RouteChurnModel(
            small_scenario.clients,
            small_scenario.network,
            calendar,
            ChurnConfig(),
            seed=3,
        )
        weekday_switches = 0
        weekend_switches = 0
        for day in range(7):
            plans = churn.plans_for_day(day)
            switched = sum(1 for p in plans.values() if p.switched)
            if calendar.is_weekend(day):
                weekend_switches += switched
            else:
                weekday_switches += switched
        # 5 weekdays at ~38% of unstable vs 2 weekend days at ~2%.
        assert weekday_switches > weekend_switches * 3

    def test_unstable_fraction_diagnostic(self, small_scenario):
        churn = small_scenario.new_churn_model()
        assert 0.0 <= churn.unstable_fraction_overall() <= 1.0

    def test_switch_changes_rank(self, small_scenario):
        churn = small_scenario.new_churn_model()
        for day in range(small_scenario.calendar.num_days):
            for plan in churn.plans_for_day(day).values():
                if plan.switched:
                    assert plan.ranks[0] != plan.ranks[1]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(unstable_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ChurnConfig(max_rank=0)


class TestEpisodes:
    def test_day_order_enforced(self, small_scenario):
        episodes = small_scenario.new_episode_model()
        episodes.inflations_for_day(0)
        with pytest.raises(ConfigurationError, match="day by day"):
            episodes.inflations_for_day(5)

    def test_effect_constant_while_active(self, small_scenario):
        # High continue probability: clients present on both days almost
        # always carried the same episode (an end-then-restart on the same
        # day is possible but needs two rare events in a row).
        config = EpisodeConfig(
            daily_start_probability=0.3, continue_probability=0.97
        )
        episodes = PoorPathEpisodeModel(
            small_scenario.clients, small_scenario.calendar, config, seed=2
        )
        day0 = episodes.inflations_for_day(0)
        day1 = episodes.inflations_for_day(1)
        carried = set(day0) & set(day1)
        assert carried  # with p_continue=0.97 many survive
        unchanged = sum(1 for key in carried if day0[key] == day1[key])
        assert unchanged / len(carried) > 0.9

    def test_only_susceptible_clients_start_episodes(self, small_scenario):
        episodes = PoorPathEpisodeModel(
            small_scenario.clients,
            small_scenario.calendar,
            EpisodeConfig(daily_start_probability=0.8),
            seed=4,
        )
        active = episodes.inflations_for_day(0)
        assert active
        for key in active:
            assert episodes.is_susceptible(key)

    def test_scopes_mixed(self, small_scenario):
        episodes = PoorPathEpisodeModel(
            small_scenario.clients,
            small_scenario.calendar,
            EpisodeConfig(
                daily_start_probability=0.8, unicast_scope_fraction=0.5
            ),
            seed=5,
        )
        active = episodes.inflations_for_day(0)
        scopes = {effect.scope for effect in active.values()}
        assert scopes == {EpisodeScope.ANYCAST, EpisodeScope.UNICAST}

    def test_inflations_positive(self, small_scenario):
        episodes = PoorPathEpisodeModel(
            small_scenario.clients,
            small_scenario.calendar,
            EpisodeConfig(daily_start_probability=0.5),
            seed=6,
        )
        for effect in episodes.inflations_for_day(0).values():
            assert effect.inflation_ms > 0
            assert 0.0 <= effect.selector < 1.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EpisodeConfig(daily_start_probability=1.0)
        with pytest.raises(ConfigurationError):
            EpisodeConfig(inflation_median_ms=0.0)
        with pytest.raises(ConfigurationError):
            EpisodeConfig(unicast_scope_fraction=-0.5)
