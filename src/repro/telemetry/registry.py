"""Process-local metrics: counters, gauges, and mergeable histograms.

The registry is the single source of truth for a run's numeric
instrumentation.  Three metric kinds cover the pipeline's needs:

* :class:`Counter` — monotonically increasing totals (beacons executed,
  cache hits).  Decrements are a bug and raise.
* :class:`Gauge` — point-in-time values (wall seconds, worker count)
  with an explicit merge policy, because "combine two shards' gauges"
  has no single right answer.
* :class:`Histogram` — distributions over *fixed log-spaced buckets*.
  The bucket layout is part of the metric's identity (``start`` ×
  ``growth`` ** i upper edges), so any two histograms of the same name
  share layouts and merge by integer bucket-count addition — an
  order-insensitive, deterministic operation, unlike quantile sketches.

Every metric name may be registered once per registry; re-requesting the
same name with the same shape returns the existing metric, while a
conflicting re-registration raises
:class:`repro.errors.TelemetryError` instead of silently overwriting.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import TelemetryError

#: Default histogram bucket layout: upper edges 1e-6 * 2**i for
#: i in [0, 48) — spanning microseconds to ~weeks when observing
#: seconds, and 1 to ~1e8 when observing counts.
DEFAULT_BUCKET_START = 1e-6
DEFAULT_BUCKET_GROWTH = 2.0
DEFAULT_BUCKET_COUNT = 48

#: Gauge merge policies.
GAUGE_MERGE_MODES = ("max", "min", "sum", "last")


class Counter:
    """A monotonically non-decreasing total."""

    kind = "counter"
    __slots__ = ("name", "description", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0

    @property
    def value(self) -> Union[int, float]:
        """The current total."""
        return self._value

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` to the counter.

        Raises:
            TelemetryError: for a negative ``amount`` — counters are
                monotonic by contract, and a decrement is always a bug.
        """
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self._value += amount


class Gauge:
    """A point-in-time value with an explicit cross-shard merge policy."""

    kind = "gauge"
    __slots__ = ("name", "description", "merge_mode", "_value")

    def __init__(
        self, name: str, description: str = "", merge: str = "max"
    ) -> None:
        if merge not in GAUGE_MERGE_MODES:
            raise TelemetryError(
                f"gauge {name!r}: unknown merge mode {merge!r}; expected "
                f"one of {GAUGE_MERGE_MODES}"
            )
        self.name = name
        self.description = description
        self.merge_mode = merge
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current value."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = float(value)

    def combine(self, other_value: float) -> None:
        """Fold another gauge's value in, per this gauge's merge policy."""
        if self.merge_mode == "max":
            self._value = max(self._value, other_value)
        elif self.merge_mode == "min":
            self._value = min(self._value, other_value)
        elif self.merge_mode == "sum":
            self._value += other_value
        else:  # "last"
            self._value = other_value


class Histogram:
    """A distribution over fixed log-spaced buckets.

    Bucket ``i`` counts observations ``v`` with ``v <= start *
    growth**i`` (and above the previous edge); an overflow bucket
    catches everything past the last edge.  Because the layout is fixed
    by ``(start, growth, count)`` rather than adapted to the data, two
    shards' histograms always share bucket boundaries and merge by
    adding integer counts — deterministically, in any order.
    """

    kind = "histogram"
    __slots__ = (
        "name", "description", "start", "growth", "bucket_count",
        "_edges", "_counts", "_sum", "_observations",
    )

    def __init__(
        self,
        name: str,
        description: str = "",
        start: float = DEFAULT_BUCKET_START,
        growth: float = DEFAULT_BUCKET_GROWTH,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
    ) -> None:
        if start <= 0:
            raise TelemetryError(f"histogram {name!r}: start must be > 0")
        if growth <= 1.0:
            raise TelemetryError(f"histogram {name!r}: growth must be > 1")
        if bucket_count < 1:
            raise TelemetryError(
                f"histogram {name!r}: bucket_count must be >= 1"
            )
        self.name = name
        self.description = description
        self.start = float(start)
        self.growth = float(growth)
        self.bucket_count = int(bucket_count)
        self._edges = [
            self.start * self.growth ** i for i in range(self.bucket_count)
        ]
        # One extra slot for the overflow (+Inf) bucket.
        self._counts = [0] * (self.bucket_count + 1)
        self._sum = 0.0
        self._observations = 0

    # ------------------------------------------------------------------

    @property
    def layout(self) -> Tuple[float, float, int]:
        """The bucket layout identity ``(start, growth, bucket_count)``."""
        return (self.start, self.growth, self.bucket_count)

    @property
    def edges(self) -> Tuple[float, ...]:
        """Finite bucket upper edges (the overflow bucket is implicit)."""
        return tuple(self._edges)

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket observation counts, overflow last."""
        return tuple(self._counts)

    @property
    def count(self) -> int:
        """Total observations."""
        return self._observations

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def _bucket_index(self, value: float) -> int:
        if value <= self.start:
            return 0
        # ceil(log_growth(value / start)), clamped into the layout.
        index = int(
            math.ceil(
                math.log(value / self.start) / math.log(self.growth) - 1e-12
            )
        )
        return min(max(index, 0), self.bucket_count)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[self._bucket_index(value)] += 1
        self._sum += value
        self._observations += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations (one pass, no numpy needed)."""
        for value in values:
            self.observe(value)

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100]).

        Walks the cumulative bucket counts and interpolates
        geometrically inside the covering bucket, which is the natural
        interpolation for log-spaced edges.  Returns 0 for an empty
        histogram; observations in the overflow bucket report the last
        finite edge (an underestimate, flagged by the report layer).
        """
        if not 0.0 <= q <= 100.0:
            raise TelemetryError(f"percentile {q!r} outside [0, 100]")
        if self._observations == 0:
            return 0.0
        target = q / 100.0 * self._observations
        cumulative = 0
        for index, bucket in enumerate(self._counts):
            cumulative += bucket
            if cumulative >= target and bucket > 0:
                if index >= self.bucket_count:
                    return self._edges[-1]
                upper = self._edges[index]
                lower = (
                    upper / self.growth if index > 0 else min(upper, upper / self.growth)
                )
                fraction = (target - (cumulative - bucket)) / bucket
                return lower * (upper / lower) ** fraction
        return self._edges[-1]

    def absorb(
        self, counts: Sequence[int], total: float, observations: int
    ) -> None:
        """Fold another histogram's state (same layout) into this one."""
        if len(counts) != len(self._counts):
            raise TelemetryError(
                f"histogram {self.name!r}: cannot absorb "
                f"{len(counts)}-bucket state into "
                f"{len(self._counts)} buckets"
            )
        for index, bucket in enumerate(counts):
            self._counts[index] += bucket
        self._sum += total
        self._observations += observations


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name-keyed store of this process's metrics.

    All accessors are get-or-create: asking for an existing name with a
    compatible shape returns the existing metric, so call sites never
    need to thread metric objects around.  Asking for an existing name
    with a *different* kind, gauge merge policy, or histogram bucket
    layout raises :class:`TelemetryError` — a silent overwrite would
    corrupt whichever call site registered first.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def get(self, name: str) -> Optional[Metric]:
        """The metric registered under ``name``, if any."""
        return self._metrics.get(name)

    def register(self, metric: Metric) -> Metric:
        """Add a pre-built metric.

        Raises:
            TelemetryError: if the name is already registered — double
                registration is always a wiring bug, never overwritten.
        """
        existing = self._metrics.get(metric.name)
        if existing is not None:
            raise TelemetryError(
                f"metric {metric.name!r} already registered as "
                f"{existing.kind}; refusing to overwrite"
            )
        self._metrics[metric.name] = metric
        return metric

    def _get_or_create(self, name: str, factory, check) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            check(existing)
            return existing
        return self.register(factory())

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create a counter."""

        def check(existing: Metric) -> None:
            if existing.kind != "counter":
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not counter"
                )

        return self._get_or_create(
            name, lambda: Counter(name, description), check
        )

    def gauge(
        self, name: str, description: str = "", merge: str = "max"
    ) -> Gauge:
        """Get or create a gauge with the given merge policy."""

        def check(existing: Metric) -> None:
            if existing.kind != "gauge":
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not gauge"
                )
            if existing.merge_mode != merge:
                raise TelemetryError(
                    f"gauge {name!r} already registered with merge="
                    f"{existing.merge_mode!r}, not {merge!r}"
                )

        return self._get_or_create(
            name, lambda: Gauge(name, description, merge), check
        )

    def histogram(
        self,
        name: str,
        description: str = "",
        start: float = DEFAULT_BUCKET_START,
        growth: float = DEFAULT_BUCKET_GROWTH,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
    ) -> Histogram:
        """Get or create a histogram with the given bucket layout."""

        def check(existing: Metric) -> None:
            if existing.kind != "histogram":
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not histogram"
                )
            if existing.layout != (float(start), float(growth), int(bucket_count)):
                raise TelemetryError(
                    f"histogram {name!r} already registered with bucket "
                    f"layout {existing.layout}, not "
                    f"{(start, growth, bucket_count)}"
                )

        return self._get_or_create(
            name,
            lambda: Histogram(name, description, start, growth, bucket_count),
            check,
        )

    # ------------------------------------------------------------------

    def counters(self) -> List[Counter]:
        """All counters, registration-ordered."""
        return [m for m in self._metrics.values() if m.kind == "counter"]

    def gauges(self) -> List[Gauge]:
        """All gauges, registration-ordered."""
        return [m for m in self._metrics.values() if m.kind == "gauge"]

    def histograms(self) -> List[Histogram]:
        """All histograms, registration-ordered."""
        return [m for m in self._metrics.values() if m.kind == "histogram"]
