"""Tests for the latency model and percentile utilities."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError, ConfigurationError
from repro.latency.model import LatencyConfig, LatencyModel
from repro.latency.sampling import (
    coefficient_of_variation,
    percentile,
    percentile_stability_profile,
)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fiber_km_per_ms": 0.0},
            {"path_stretch": 0.9},
            {"backbone_stretch": 0.5},
            {"per_hop_ms": -1.0},
            {"jitter_sigma": -0.1},
            {"spike_probability": 1.0},
            {"daily_variation_probability": -0.1},
            {"anycast_daily_variation_probability": 1.0},
            {"daily_variation_sigma": -1.0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            LatencyConfig(**kwargs)


class TestBaseline:
    @pytest.fixture()
    def model(self):
        return LatencyModel(
            LatencyConfig(
                jitter_median_ms=0.0,
                spike_probability=0.0,
                daily_variation_probability=0.0,
                anycast_daily_variation_probability=0.0,
            )
        )

    def test_monotone_in_distance(self, model):
        short = model.baseline_rtt_ms(100, 0, 2, 5.0)
        long = model.baseline_rtt_ms(1000, 0, 2, 5.0)
        assert long > short

    def test_propagation_math(self, model):
        cfg = model.config
        rtt = model.baseline_rtt_ms(1000.0, 0.0, 1, 0.0)
        expected = 2 * 1000.0 * cfg.path_stretch / cfg.fiber_km_per_ms
        expected += cfg.per_hop_ms
        assert rtt == pytest.approx(expected)

    def test_backbone_uses_its_own_stretch(self, model):
        cfg = model.config
        with_backbone = model.baseline_rtt_ms(0.0, 500.0, 1, 0.0)
        expected = 2 * 500.0 * cfg.backbone_stretch / cfg.fiber_km_per_ms
        expected += cfg.per_hop_ms
        assert with_backbone == pytest.approx(expected)

    def test_floor_applies(self, model):
        assert model.baseline_rtt_ms(0.0, 0.0, 1, 0.0) == model.config.min_rtt_ms

    def test_access_delay_added(self, model):
        base = model.baseline_rtt_ms(1000, 0, 2, 0.0)
        assert model.baseline_rtt_ms(1000, 0, 2, 7.5) == pytest.approx(base + 7.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"path_km": -1.0, "backbone_km": 0, "as_hops": 1, "access_delay_ms": 0},
            {"path_km": 0, "backbone_km": -1.0, "as_hops": 1, "access_delay_ms": 0},
            {"path_km": 0, "backbone_km": 0, "as_hops": 0, "access_delay_ms": 0},
            {"path_km": 0, "backbone_km": 0, "as_hops": 1, "access_delay_ms": -1},
        ],
    )
    def test_input_validation(self, model, kwargs):
        with pytest.raises(ConfigurationError):
            model.baseline_rtt_ms(**kwargs)


class TestSampling:
    def test_jitter_non_negative(self):
        model = LatencyModel()
        rng = random.Random(1)
        assert all(model.sample_jitter_ms(rng) >= 0 for _ in range(500))

    def test_sample_rtt_at_least_baseline(self):
        model = LatencyModel()
        rng = random.Random(2)
        baseline = model.baseline_rtt_ms(500, 0, 2, 5.0)
        for _ in range(100):
            assert model.sample_rtt_ms(500, 0, 2, 5.0, rng) >= baseline

    def test_inflation_added(self):
        model = LatencyModel(LatencyConfig(jitter_median_ms=0.0, spike_probability=0.0))
        rng = random.Random(3)
        plain = model.sample_rtt_ms(500, 0, 2, 5.0, rng)
        inflated = model.sample_rtt_ms(500, 0, 2, 5.0, rng, inflation_ms=40.0)
        assert inflated == pytest.approx(plain + 40.0)

    def test_negative_inflation_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel().sample_rtt_ms(1, 0, 1, 0, random.Random(0), -1.0)

    def test_spikes_fatten_the_tail(self):
        rng_a, rng_b = random.Random(5), random.Random(5)
        spiky = LatencyModel(LatencyConfig(spike_probability=0.3))
        calm = LatencyModel(LatencyConfig(spike_probability=0.0))
        spiky_draws = sorted(spiky.sample_jitter_ms(rng_a) for _ in range(2000))
        calm_draws = sorted(calm.sample_jitter_ms(rng_b) for _ in range(2000))
        assert np.percentile(spiky_draws, 95) > np.percentile(calm_draws, 95) + 10

    def test_daily_variation_probability_split(self):
        model = LatencyModel(
            LatencyConfig(
                daily_variation_probability=0.5,
                anycast_daily_variation_probability=0.0,
            )
        )
        rng = random.Random(7)
        unicast_hits = sum(
            1 for _ in range(1000) if model.sample_daily_variation_ms(rng) > 0
        )
        anycast_hits = sum(
            1
            for _ in range(1000)
            if model.sample_daily_variation_ms(rng, anycast=True) > 0
        )
        assert 400 <= unicast_hits <= 600
        assert anycast_hits == 0

    def test_determinism_with_seed(self):
        model = LatencyModel()
        a = [model.sample_jitter_ms(random.Random(9)) for _ in range(5)]
        b = [model.sample_jitter_ms(random.Random(9)) for _ in range(5)]
        assert a == b

    def test_static_offset_probability_split(self):
        model = LatencyModel(
            LatencyConfig(
                static_offset_probability=0.5,
                anycast_static_offset_probability=0.0,
            )
        )
        rng = random.Random(11)
        unicast_hits = sum(
            1 for _ in range(1000) if model.sample_static_offset_ms(rng) > 0
        )
        anycast_hits = sum(
            1
            for _ in range(1000)
            if model.sample_static_offset_ms(rng, anycast=True) > 0
        )
        assert 400 <= unicast_hits <= 600
        assert anycast_hits == 0

    def test_static_offset_positive_when_present(self):
        model = LatencyModel(LatencyConfig(static_offset_probability=0.9))
        rng = random.Random(12)
        draws = [model.sample_static_offset_ms(rng) for _ in range(200)]
        assert all(d >= 0 for d in draws)
        assert any(d > 0 for d in draws)

    def test_static_offset_config_validated(self):
        with pytest.raises(ConfigurationError):
            LatencyConfig(static_offset_probability=1.0)
        with pytest.raises(ConfigurationError):
            LatencyConfig(static_offset_median_ms=-1.0)
        with pytest.raises(ConfigurationError):
            LatencyConfig(static_offset_sigma=-0.5)


class TestSection6Property:
    def test_percentile_stability_increases_with_percentile(self):
        """§6's premise: low percentiles of a latency distribution are
        stable, high ones noisy.  The model must reproduce it."""
        model = LatencyModel()
        rng_template = random.Random(0)

        def sampler(rng):
            return 20.0 + model.sample_jitter_ms(rng)

        profile = percentile_stability_profile(
            sampler, percentiles=(25.0, 50.0, 95.0), batches=40, batch_size=50
        )
        assert profile[25.0] < profile[95.0]
        assert profile[50.0] < profile[95.0]

    def test_profile_validation(self):
        with pytest.raises(AnalysisError):
            percentile_stability_profile(lambda rng: 1.0, batches=1)


class TestPercentileHelpers:
    def test_matches_numpy(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        for q in (0, 10, 25, 50, 75, 90, 100):
            assert percentile(values, q) == pytest.approx(
                np.percentile(values, q)
            )

    def test_single_value(self):
        assert percentile([4.2], 75) == 4.2

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(AnalysisError):
            percentile([1.0], 101)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=1, max_size=60,
        ),
        st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=60)
    def test_percentile_matches_numpy_property(self, values, q):
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q)), rel=1e-9, abs=1e-9
        )

    def test_cov(self):
        assert coefficient_of_variation([1.0, 1.0, 1.0]) == 0.0
        assert coefficient_of_variation([1.0, 3.0]) > 0

    def test_cov_validation(self):
        with pytest.raises(AnalysisError):
            coefficient_of_variation([1.0])
        with pytest.raises(AnalysisError):
            coefficient_of_variation([-1.0, 1.0])
