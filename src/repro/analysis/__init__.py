"""Analyses reproducing each figure of the paper's evaluation."""

from repro.analysis.affinity import (
    AffinityResult,
    SwitchDistanceResult,
    daily_switch_rate,
    frontend_affinity,
    switch_distance_cdf,
)
from repro.analysis.ldns_proximity import (
    LdnsProximityResult,
    ldns_proximity,
)
from repro.analysis.plotting import ascii_chart
from repro.analysis.tcp_disruption import (
    TcpDisruptionResult,
    format_disruption_table,
    tcp_disruption,
)

# NOTE: repro.analysis.report is intentionally not re-exported here — it
# consumes repro.core.study (which consumes this package), so re-exporting
# it would create an import cycle.  Import it as repro.analysis.report.
from repro.analysis.anycast_perf import (
    EUROPE,
    UNITED_STATES,
    WORLD,
    AnycastDistanceResult,
    AnycastPenaltyResult,
    anycast_distance_cdf,
    anycast_penalty_ccdf,
)
from repro.analysis.geo_artifacts import (
    GeoArtifactResult,
    geolocation_artifacts,
)
from repro.analysis.poor_paths import (
    DailyImprovement,
    PoorPathDuration,
    PoorPathPrevalence,
    daily_improvements,
    poor_path_duration,
    poor_path_prevalence,
)
from repro.analysis.prediction_eval import (
    ECS,
    LDNS,
    ImprovementSummary,
    PredictionEvaluation,
    evaluate_prediction,
)
from repro.analysis.proximity import (
    DiminishingReturnsResult,
    NthClosestDistances,
    diminishing_returns,
    nth_closest_distance_cdf,
)
from repro.analysis.stats import (
    CdfSeries,
    WeightedDistribution,
    linear_grid,
    log2_grid,
)

__all__ = [
    "ECS",
    "EUROPE",
    "LDNS",
    "UNITED_STATES",
    "WORLD",
    "AffinityResult",
    "AnycastDistanceResult",
    "AnycastPenaltyResult",
    "CdfSeries",
    "DailyImprovement",
    "LdnsProximityResult",
    "DiminishingReturnsResult",
    "GeoArtifactResult",
    "ImprovementSummary",
    "NthClosestDistances",
    "PoorPathDuration",
    "PoorPathPrevalence",
    "PredictionEvaluation",
    "SwitchDistanceResult",
    "TcpDisruptionResult",
    "WeightedDistribution",
    "ascii_chart",
    "anycast_distance_cdf",
    "anycast_penalty_ccdf",
    "daily_improvements",
    "daily_switch_rate",
    "format_disruption_table",
    "ldns_proximity",
    "tcp_disruption",
    "diminishing_returns",
    "evaluate_prediction",
    "frontend_affinity",
    "geolocation_artifacts",
    "linear_grid",
    "log2_grid",
    "nth_closest_distance_cdf",
    "poor_path_duration",
    "poor_path_prevalence",
    "switch_distance_cdf",
]
