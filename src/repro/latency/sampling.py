"""Percentile utilities and the §6 percentile-stability property.

§6 of the paper justifies predicting on low percentiles: "analysis of
client data showed that higher percentiles of latency distributions are
very noisy ... The 25th percentile and median have lower coefficient of
variation, indicating less variation and more stability."  These helpers
compute percentiles the way the analysis layer needs them and quantify that
stability claim against any latency source.
"""

from __future__ import annotations

import math
import random
import statistics
from typing import Callable, Dict, List, Sequence

from repro.errors import AnalysisError


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches numpy's default ("linear") method, but works on plain Python
    sequences so hot analysis loops avoid array conversion overhead for
    tiny inputs.

    Raises:
        AnalysisError: on an empty input or ``q`` outside [0, 100].
    """
    if not values:
        raise AnalysisError("cannot take a percentile of no data")
    if not 0.0 <= q <= 100.0:
        raise AnalysisError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation over mean — §6's stability metric.

    Raises:
        AnalysisError: with fewer than two samples or a zero mean.
    """
    if len(values) < 2:
        raise AnalysisError("coefficient of variation needs >= 2 samples")
    mean = statistics.fmean(values)
    if mean == 0.0:
        raise AnalysisError("coefficient of variation undefined for zero mean")
    return statistics.stdev(values) / mean


def percentile_stability_profile(
    sampler: Callable[[random.Random], float],
    percentiles: Sequence[float] = (25.0, 50.0, 75.0, 95.0),
    batches: int = 40,
    batch_size: int = 50,
    seed: int = 0,
) -> Dict[float, float]:
    """Coefficient of variation of each percentile across repeated batches.

    Draws ``batches`` independent batches of ``batch_size`` samples from
    ``sampler``, computes each requested percentile per batch, and returns
    the across-batch coefficient of variation per percentile.  Under the
    paper's premise, the result is increasing in the percentile: low
    percentiles are stable, high ones noisy.
    """
    if batches < 2 or batch_size < 2:
        raise AnalysisError("need >= 2 batches of >= 2 samples")
    rng = random.Random(seed)
    per_percentile: Dict[float, List[float]] = {q: [] for q in percentiles}
    for _ in range(batches):
        batch = [sampler(rng) for _ in range(batch_size)]
        for q in percentiles:
            per_percentile[q].append(percentile(batch, q))
    return {
        q: coefficient_of_variation(values)
        for q, values in per_percentile.items()
    }
