"""Tests for the beacon methodology (selector, runner, backend join)."""

import random
from collections import Counter

import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.cdn.frontend import FrontEnd
from repro.dns.authoritative import ANYCAST_TARGET
from repro.geo.geolocation import GeolocationDatabase
from repro.geo.metros import MetroDatabase
from repro.measurement.backend import BeaconBackend, join_raw_log
from repro.measurement.beacon import (
    BeaconConfig,
    BeaconRunner,
    BeaconTargetSelector,
)
from repro.measurement.logs import (
    HttpLogEntry,
    RawMeasurementLog,
    ServerLogEntry,
)
from repro.net.ip import IPv4Prefix, PrefixAllocator


@pytest.fixture(scope="module")
def frontends():
    db = MetroDatabase()
    allocator = PrefixAllocator(IPv4Prefix.parse("198.18.0.0/16"))
    codes = ["lon", "par", "fra", "ams", "mad", "rom", "waw", "sto",
             "nyc", "chi", "lax", "tyo"]
    return tuple(
        FrontEnd(f"fe-{c}", db.get(c), allocator.allocate_slash24())
        for c in codes
    )


@pytest.fixture(scope="module")
def geo():
    db = GeolocationDatabase(error_fraction=0.0)
    metro_db = MetroDatabase()
    db.register("ldns-lon", metro_db.get("lon").location)
    db.register("ldns-nyc", metro_db.get("nyc").location)
    return db


class TestSelector:
    def test_candidates_sorted_by_distance(self, frontends, geo):
        selector = BeaconTargetSelector(frontends, geo)
        candidates = selector.candidates("ldns-lon")
        assert candidates[0] == "fe-lon"
        assert len(candidates) == BeaconConfig().candidate_count
        # Paris/Amsterdam should come before Tokyo for a London LDNS.
        assert candidates.index("fe-par") < len(candidates)
        assert "fe-tyo" not in candidates[:5]

    def test_closest(self, frontends, geo):
        selector = BeaconTargetSelector(frontends, geo)
        assert selector.closest("ldns-nyc") == "fe-nyc"

    def test_select_targets_structure(self, frontends, geo):
        selector = BeaconTargetSelector(frontends, geo)
        rng = random.Random(0)
        targets = selector.select_targets("ldns-lon", rng)
        assert targets[0] == ANYCAST_TARGET
        assert targets[1] == "fe-lon"
        assert len(targets) == 2 + BeaconConfig().random_picks
        assert len(set(targets)) == len(targets)  # picks are distinct
        candidates = selector.candidates("ldns-lon")
        assert set(targets[2:]) <= set(candidates[1:])

    def test_random_picks_biased_to_closer(self, frontends, geo):
        """§3.3: the 3rd-closest front-end is returned with higher
        probability than the 4th-closest."""
        selector = BeaconTargetSelector(frontends, geo)
        candidates = selector.candidates("ldns-lon")
        rng = random.Random(1)
        counts = Counter()
        for _ in range(4000):
            for target in selector.select_targets("ldns-lon", rng)[2:]:
                counts[target] += 1
        third, seventh = candidates[2], candidates[7]
        assert counts[third] > counts[seventh] * 1.3

    def test_candidate_cache_is_stable(self, frontends, geo):
        selector = BeaconTargetSelector(frontends, geo)
        assert selector.candidates("ldns-lon") is selector.candidates("ldns-lon")

    def test_needs_frontends(self, geo):
        with pytest.raises(ConfigurationError):
            BeaconTargetSelector((), geo)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"candidate_count": 1},
            {"random_picks": 10, "candidate_count": 10},
            {"resource_timing_support": 1.5},
            {"distance_weight_power": -1.0},
            {"dns_ttl_seconds": 0.0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BeaconConfig(**kwargs)


class TestRunner:
    def serve(self, target_id):
        if target_id == ANYCAST_TARGET:
            return "fe-lon", 20.4
        return target_id, 25.6

    def test_one_fetch_per_target(self, frontends, geo):
        selector = BeaconTargetSelector(frontends, geo)
        runner = BeaconRunner(selector)
        fetches = runner.run_beacon(
            "ldns-lon", True, self.serve, random.Random(0)
        )
        assert len(fetches) == 4
        assert fetches[0].target_id == ANYCAST_TARGET
        assert fetches[0].serving_frontend_id == "fe-lon"
        assert all(f.dns_cache_hit for f in fetches)

    def test_measurement_ids_unique(self, frontends, geo):
        selector = BeaconTargetSelector(frontends, geo)
        runner = BeaconRunner(selector)
        ids = set()
        for _ in range(10):
            for fetch in runner.run_beacon(
                "ldns-lon", True, self.serve, random.Random(0)
            ):
                ids.add(fetch.measurement_id)
        assert len(ids) == 40

    def test_rtt_rounded_to_integer_ms(self, frontends, geo):
        selector = BeaconTargetSelector(frontends, geo)
        runner = BeaconRunner(selector)
        fetches = runner.run_beacon(
            "ldns-lon", True, self.serve, random.Random(0)
        )
        assert all(f.rtt_ms == round(f.rtt_ms) for f in fetches)
        assert fetches[0].rtt_ms == 20.0

    def test_primitive_timing_adds_overhead(self, frontends, geo):
        selector = BeaconTargetSelector(frontends, geo)
        runner = BeaconRunner(selector)
        with_rt = runner.run_beacon("ldns-lon", True, self.serve, random.Random(5))
        without_rt = runner.run_beacon("ldns-lon", False, self.serve, random.Random(5))
        assert sum(f.rtt_ms for f in without_rt) > sum(f.rtt_ms for f in with_rt)
        assert all(not f.used_resource_timing for f in without_rt)

    def test_cache_purge(self, frontends, geo):
        selector = BeaconTargetSelector(frontends, geo)
        runner = BeaconRunner(selector)
        runner.run_beacon("ldns-lon", True, self.serve, random.Random(0), now=0.0)
        # Purging far in the future clears entries without error.
        runner.purge_caches(now=1e9)


class TestBackendJoin:
    def test_incremental_join_any_order(self):
        joined = []
        backend = BeaconBackend([joined.append])
        http = HttpLogEntry(0, "m1", "10.0.0.0/24", 33.0, True)
        backend.on_http(http)
        assert backend.pending_count == 1
        backend.on_server("m1", "fe-lon")
        backend.on_dns("m1", "ldns-1", ANYCAST_TARGET)
        assert backend.pending_count == 0
        assert backend.joined_count == 1
        row = joined[0]
        assert row.frontend_id == "fe-lon"
        assert row.target_id == ANYCAST_TARGET
        assert row.rtt_ms == 33.0

    def test_multiple_observers(self):
        a, b = [], []
        backend = BeaconBackend([a.append])
        backend.add_observer(b.append)
        backend.on_dns("m1", "l", "t")
        backend.on_server("m1", "f")
        backend.on_http(HttpLogEntry(0, "m1", "p", 1.0, True))
        assert len(a) == len(b) == 1

    def test_join_raw_log(self):
        log = RawMeasurementLog()
        log.record_dns("m1", "ldns-1", "fe-par")
        log.record_http(HttpLogEntry(2, "m1", "10.0.0.0/24", 12.0, True))
        log.record_server(ServerLogEntry(2, "m1", "fe-par"))
        joined = join_raw_log(log)
        assert len(joined) == 1
        assert joined[0].day == 2
        assert joined[0].ldns_id == "ldns-1"

    def test_join_raw_log_missing_server_row(self):
        log = RawMeasurementLog()
        log.record_dns("m1", "ldns-1", "fe-par")
        log.record_http(HttpLogEntry(2, "m1", "10.0.0.0/24", 12.0, True))
        with pytest.raises(MeasurementError, match="server log"):
            join_raw_log(log)

    def test_join_raw_log_missing_dns_row(self):
        log = RawMeasurementLog()
        log.record_http(HttpLogEntry(2, "m1", "10.0.0.0/24", 12.0, True))
        log.record_server(ServerLogEntry(2, "m1", "fe-par"))
        with pytest.raises(MeasurementError, match="no DNS record"):
            join_raw_log(log)
