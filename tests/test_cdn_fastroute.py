"""Tests for FastRoute-style layered load shedding."""

import pytest

from repro.errors import ConfigurationError
from repro.cdn.failover import frontend_loads
from repro.cdn.fastroute import (
    DistributedLoadController,
    FastRouteBalancer,
    LayeredAnycastNetwork,
    LoadManagementSimulator,
    default_layers,
    provision_capacities,
)


@pytest.fixture(scope="module")
def layered(small_scenario):
    layers = default_layers(small_scenario.deployment)
    network = LayeredAnycastNetwork(
        small_scenario.topology, small_scenario.deployment, layers
    )
    return network, layers


class TestLayers:
    def test_default_layers_nest(self, small_scenario):
        layer0, layer1, layer2 = default_layers(small_scenario.deployment)
        assert layer2 < layer1 < layer0
        assert len(layer0) == len(small_scenario.deployment.frontends)
        assert len(layer1) == 12
        assert len(layer2) == 4

    def test_default_layers_validation(self, small_scenario):
        with pytest.raises(ConfigurationError):
            default_layers(small_scenario.deployment, hub_count=2, core_count=4)

    def test_layer0_matches_production_routing(self, small_scenario, layered):
        network, _ = layered
        production = small_scenario.network
        for client in small_scenario.clients[:40]:
            expected = production.anycast_path(
                client.asn, client.home_metro
            ).frontend.frontend_id
            assert (
                network.serving_frontend(0, client.asn, client.home_metro)
                == expected
            )

    def test_higher_layers_serve_from_their_ring(self, small_scenario, layered):
        network, layers = layered
        for client in small_scenario.clients[:40]:
            for index in (1, 2):
                frontend_id = network.serving_frontend(
                    index, client.asn, client.home_metro
                )
                assert frontend_id in layers[index]

    def test_layer_validation(self, small_scenario):
        deployment = small_scenario.deployment
        all_ids = frozenset(fe.frontend_id for fe in deployment.frontends)
        some = frozenset(list(all_ids)[:3])
        with pytest.raises(ConfigurationError, match="layer 0"):
            LayeredAnycastNetwork(
                small_scenario.topology, deployment, [some]
            )
        other = frozenset(list(all_ids)[3:6])
        with pytest.raises(ConfigurationError, match="nest"):
            LayeredAnycastNetwork(
                small_scenario.topology, deployment, [all_ids, some, other]
            )

    def test_unknown_layer_index(self, layered):
        network, _ = layered
        with pytest.raises(ConfigurationError):
            network.serving_frontend(9, 10000, "nyc")


class TestBalancer:
    def make_balancer(self, small_scenario, layered, capacity_factor):
        network, _ = layered
        baseline = frontend_loads(
            small_scenario.network, small_scenario.clients
        )
        positive = sorted(v for v in baseline.values() if v > 0)
        median = positive[len(positive) // 2]
        capacities = {
            fe.frontend_id: capacity_factor * max(baseline.get(fe.frontend_id, 0.0), median)
            for fe in small_scenario.deployment.frontends
        }
        return (
            FastRouteBalancer(network, small_scenario.clients, capacities),
            baseline,
            capacities,
        )

    def test_no_shedding_when_capacity_ample(self, small_scenario, layered):
        balancer, _, _ = self.make_balancer(small_scenario, layered, 100.0)
        result = balancer.balance()
        assert result.converged
        assert result.decisions == ()

    def test_shedding_relieves_hot_frontends(self, small_scenario, layered):
        balancer, baseline, capacities = self.make_balancer(
            small_scenario, layered, 0.8
        )
        result = balancer.balance()
        assert result.decisions  # someone had to shed
        # Every front-end that was over its 0.8x capacity either sheds or
        # got relieved below capacity.
        hot = {
            frontend_id
            for frontend_id, load in baseline.items()
            if load > capacities[frontend_id]
        }
        assert hot
        for frontend_id in hot:
            relieved = result.loads.get(frontend_id, 0.0) <= (
                capacities[frontend_id] + 1e-9
            )
            sheds = result.shed_fraction(frontend_id, 0) > 0 or (
                result.shed_fraction(frontend_id, 1) > 0
            )
            assert relieved or sheds

    def test_load_conserved(self, small_scenario, layered):
        balancer, _, _ = self.make_balancer(small_scenario, layered, 0.8)
        result = balancer.balance()
        total = sum(c.daily_queries for c in small_scenario.clients)
        assert sum(result.loads.values()) == pytest.approx(total, rel=1e-9)

    def test_format(self, small_scenario, layered):
        balancer, _, _ = self.make_balancer(small_scenario, layered, 0.8)
        text = balancer.balance().format()
        assert "FastRoute shedding" in text

    def test_validation(self, small_scenario, layered):
        network, _ = layered
        with pytest.raises(ConfigurationError, match="clients"):
            FastRouteBalancer(network, [], {})
        with pytest.raises(ConfigurationError, match="step"):
            FastRouteBalancer(
                network, small_scenario.clients, {}, step=0.0
            )
        with pytest.raises(ConfigurationError, match="capacities"):
            FastRouteBalancer(network, small_scenario.clients, {"fe-x": 1.0})
        balancer, _, _ = self.make_balancer(small_scenario, layered, 1.0)
        with pytest.raises(ConfigurationError, match="max_rounds"):
            balancer.balance(max_rounds=0)

    def test_single_frontend_ring_rejected(self, small_scenario):
        """A one-front-end layer 0 has nowhere to shed to."""
        import dataclasses

        deployment = small_scenario.deployment
        solo = dataclasses.replace(
            deployment, frontends=(deployment.frontends[0],)
        )
        lone = frozenset([deployment.frontends[0].frontend_id])
        with pytest.raises(ConfigurationError, match="at least two"):
            LayeredAnycastNetwork(small_scenario.topology, solo, [lone])

    def test_empty_layer_rejected(self, small_scenario):
        deployment = small_scenario.deployment
        all_ids = frozenset(fe.frontend_id for fe in deployment.frontends)
        with pytest.raises(ConfigurationError, match="empty"):
            LayeredAnycastNetwork(
                small_scenario.topology, deployment, [all_ids, frozenset()]
            )

    def test_shed_fractions_stay_clamped(self, small_scenario, layered):
        """Even under absurd overload no shed fraction leaves [0, 1]."""
        balancer, _, _ = self.make_balancer(small_scenario, layered, 0.01)
        result = balancer.balance()
        assert result.decisions
        for decision in result.decisions:
            assert 0.0 <= decision.shed_fraction <= 1.0

    def test_top_layer_never_sheds(self, small_scenario, layered):
        """A saturated core cannot shed; balance stops, not spins."""
        network, layers = layered
        baseline = frontend_loads(
            small_scenario.network, small_scenario.clients
        )
        positive = sorted(v for v in baseline.values() if v > 0)
        median = positive[len(positive) // 2]
        # Edges are huge but hubs and cores are starved: everything shed
        # upward lands somewhere that cannot fit it.
        capacities = {}
        for fe in small_scenario.deployment.frontends:
            load = max(baseline.get(fe.frontend_id, 0.0), median)
            factor = 0.01 if fe.frontend_id in layers[1] else 100.0
            capacities[fe.frontend_id] = load * factor
        balancer = FastRouteBalancer(
            network, small_scenario.clients, capacities
        )
        result = balancer.balance(max_rounds=50)
        assert not result.converged
        top = len(network.layers) - 1
        assert all(d.layer_index < top for d in result.decisions)


class TestProvisioning:
    def test_headroom_must_exceed_one(self):
        with pytest.raises(ConfigurationError, match="headroom"):
            provision_capacities({"fe-a": 10.0}, 1.0)
        with pytest.raises(ConfigurationError, match="no front-ends"):
            provision_capacities({}, 1.5)

    def test_zero_load_gets_median_capacity(self):
        capacities = provision_capacities(
            {"fe-a": 100.0, "fe-b": 0.0, "fe-c": 300.0}, 1.5
        )
        assert capacities["fe-a"] == pytest.approx(150.0)
        assert capacities["fe-c"] == pytest.approx(450.0)
        # fe-b inherits the median loaded capacity (300 * 1.5).
        assert capacities["fe-b"] == pytest.approx(450.0)


class TestController:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="front-ends"):
            DistributedLoadController([])
        with pytest.raises(ConfigurationError, match="target"):
            DistributedLoadController(["fe-a"], target_utilization=1.0)
        with pytest.raises(ConfigurationError, match="gain"):
            DistributedLoadController(["fe-a"], gain=0.0)

    def test_shed_clamped_to_unit_interval(self):
        controller = DistributedLoadController(["fe-a"], gain=10.0)
        after_spike = controller.observe_day({"fe-a": 50.0})
        assert after_spike["fe-a"] == 1.0
        after_idle = controller.observe_day({"fe-a": 0.0})
        assert after_idle["fe-a"] == 0.0

    def test_relaxes_below_target(self):
        controller = DistributedLoadController(
            ["fe-a"], target_utilization=0.85, gain=0.5
        )
        controller.observe_day({"fe-a": 1.85})  # shed rises to 0.5
        assert controller.shed_fractions["fe-a"] == pytest.approx(0.5)
        controller.observe_day({"fe-a": 0.45})  # 0.4 below target
        assert controller.shed_fractions["fe-a"] == pytest.approx(0.3)


class TestLoadManagementSimulator:
    def make_simulator(self, small_scenario, layered, policy, headroom=1.5):
        network, _ = layered
        baseline = frontend_loads(
            small_scenario.network, small_scenario.clients
        )
        capacities = provision_capacities(baseline, headroom)
        return LoadManagementSimulator(
            network, small_scenario.clients, capacities, policy=policy
        )

    def test_unknown_policy_rejected(self, small_scenario, layered):
        with pytest.raises(ConfigurationError, match="policy"):
            self.make_simulator(small_scenario, layered, "panic")

    def test_unknown_client_rejected(self, small_scenario, layered):
        simulator = self.make_simulator(small_scenario, layered, "none")
        with pytest.raises(ConfigurationError, match="unknown client"):
            simulator.chain_for("203.0.113.0/24")

    def test_series_length_validated(self, small_scenario, layered):
        simulator = self.make_simulator(small_scenario, layered, "none")
        with pytest.raises(ConfigurationError, match="per day"):
            simulator.run(2, [{}], [{}, {}], [[], []])

    def test_capacity_factor_validated(self, small_scenario, layered):
        simulator = self.make_simulator(small_scenario, layered, "none")
        target = simulator.layer_frontends(0)[0]
        with pytest.raises(ConfigurationError, match="factor"):
            simulator.run(1, [{}], [{target: 0.0}], [[]])

    def test_withdraw_policy_cascades_next_day(self, small_scenario, layered):
        simulator = self.make_simulator(
            small_scenario, layered, "withdraw", headroom=1.2
        )
        baseline = frontend_loads(
            small_scenario.network, small_scenario.clients
        )
        hot = max(baseline, key=baseline.get)
        surge = {
            client.key: 3.0
            for client in small_scenario.clients
            if simulator.chain_for(client.key)[0] == hot
        }
        states = simulator.run(3, [surge, surge, surge], [{}, {}, {}], [[], [], []])
        # Reaction is delayed one day (DNS TTL): hot is up on day 0,
        # withdrawn from day 1 on, and carries no load once withdrawn.
        assert hot not in states[0].withdrawn
        assert hot in states[1].withdrawn
        assert hot in states[2].withdrawn
        assert states[1].loads[hot] == 0.0

    def test_fastroute_sheds_stay_bounded(self, small_scenario, layered):
        simulator = self.make_simulator(
            small_scenario, layered, "fastroute", headroom=1.2
        )
        surge = {client.key: 5.0 for client in small_scenario.clients}
        days = 4
        states = simulator.run(
            days, [surge] * days, [{}] * days, [[]] * days
        )
        assert not states[0].shed_fractions  # one-day control delay
        assert any(state.shed_fractions for state in states[1:])
        for state in states:
            for fraction in state.shed_fractions.values():
                assert 0.0 < fraction <= 1.0
            assert not state.withdrawn

    def test_landing_distributions_sum_to_one(self, small_scenario, layered):
        simulator = self.make_simulator(
            small_scenario, layered, "fastroute", headroom=1.2
        )
        surge = {client.key: 5.0 for client in small_scenario.clients}
        states = simulator.run(2, [surge, surge], [{}, {}], [[], []])
        assert states[1].landing  # someone shed somewhere
        for key, dist in states[1].landing.items():
            chain = simulator.chain_for(key)
            assert sum(f for _, f in dist) == pytest.approx(1.0)
            # Every landing spot is somewhere on the client's own chain
            # (a chain may repeat a front-end that serves two rings).
            assert {fe for fe, _ in dist} <= set(chain)
