"""Ablation — the >=20-measurement cut on prediction candidates (§6).

The paper only considers targets with 20+ measurements from a group.
Lowering the cut admits noisier candidates (more predictions, worse hit
rate); raising it starves low-volume groups.  This sweep quantifies that
trade-off on the reproduced dataset.
"""

import pytest

from conftest import write_report

from repro.analysis.prediction_eval import evaluate_prediction
from repro.core.predictor import HistoryBasedPredictor, PredictorConfig

CUTS = (5, 10, 20, 40)


@pytest.fixture(scope="module")
def sweep(paper_study):
    rows = []
    for cut in CUTS:
        predictor = HistoryBasedPredictor(PredictorConfig(min_samples=cut))
        mapping = predictor.mapping_for_day(
            paper_study.dataset.ecs_aggregates, day=0
        )
        evaluation = evaluate_prediction(
            paper_study.dataset, predictor, groupings=("ecs",),
            eval_percentiles=(50.0,),
        )
        rows.append((cut, len(mapping), evaluation.summary("ecs", 50.0)))
    return rows


def test_ablation_min_samples(benchmark, paper_study, sweep):
    predictor = HistoryBasedPredictor(PredictorConfig(min_samples=20))
    benchmark(
        predictor.mapping_for_day, paper_study.dataset.ecs_aggregates, 0
    )

    lines = ["Ablation — prediction min-samples cut (ECS, eval at median)"]
    for cut, redirections, summary in sweep:
        lines.append(
            f"  cut {cut:3d}: {redirections:5d} day-0 redirections, "
            f"improved {summary.fraction_improved:6.1%}, "
            f"worse {summary.fraction_worse:6.1%}"
        )
    write_report("ablation_min_samples", "\n".join(lines))

    redirections = {cut: n for cut, n, _ in sweep}
    # A stricter cut can only shrink the redirected set.
    assert (
        redirections[5] >= redirections[10]
        >= redirections[20] >= redirections[40]
    )
    # The paper's cut of 20 still leaves a usable redirected set.
    assert redirections[20] > 0
