"""The paper's core contribution: prediction, hybrid redirection, study."""

from repro.core.hybrid import HybridConfig, HybridRedirector
from repro.core.predictor import (
    HistoryBasedPredictor,
    Prediction,
    PredictorConfig,
)
from repro.core.study import AnycastStudy

__all__ = [
    "AnycastStudy",
    "HistoryBasedPredictor",
    "HybridConfig",
    "HybridRedirector",
    "Prediction",
    "PredictorConfig",
]
