#!/usr/bin/env python3
"""Troubleshooting poor anycast routes with traceroutes (§5 workflow).

The paper's authors found ISP-metro pairs with poor performance and issued
RIPE Atlas traceroutes from them, uncovering two pathologies: BGP blind to
intradomain topology, and ISPs hauling traffic to remote peering points
(Moscow clients handed off in Stockholm; Denver clients in Phoenix).

This example runs the same workflow against the simulator: rank (ISP,
metro) vantages by anycast distance inflation, then print traceroutes for
the worst cases alongside the best unicast alternative.

Run:
    python examples/troubleshoot_routing.py
"""

from repro.cdn.deployment import DeploymentConfig, attach_cdn
from repro.cdn.network import CdnNetwork
from repro.geo.coords import haversine_km
from repro.geo.metros import MetroDatabase
from repro.net.topology import AsRole, EgressPolicy, TopologyBuilder, populate_base_internet
from repro.net.traceroute import trace_route


def main() -> None:
    builder = TopologyBuilder(MetroDatabase())
    populate_base_internet(builder, seed=2015)
    deployment = attach_cdn(builder, DeploymentConfig(), seed=2015)
    topology = builder.build()
    network = CdnNetwork(topology, deployment)
    metro_db = topology.metro_db

    # Rank every (access ISP, metro) vantage by how far anycast carries
    # its traffic beyond the nearest front-end.
    cases = []
    for access in topology.ases_with_role(AsRole.ACCESS):
        for metro in sorted(access.pop_metros):
            location = metro_db.get(metro).location
            path = network.anycast_path(access.asn, metro, location)
            served_km = haversine_km(location, path.frontend.location)
            nearest = network.nearest_frontends(location, 1)[0]
            nearest_km = haversine_km(location, nearest.location)
            inflation = served_km - nearest_km
            if inflation > 300.0:
                cases.append((inflation, access, metro, path, nearest))

    cases.sort(key=lambda row: -row[0])
    print(
        f"Found {len(cases)} ISP-metro vantages with anycast carried "
        f">300 km past the nearest front-end.\n"
    )

    for inflation, access, metro, path, nearest in cases[:5]:
        metro_name = metro_db.get(metro).name
        print("=" * 72)
        print(
            f"{access.name} (AS{access.asn}) clients in {metro_name}: "
            f"anycast serves from {path.frontend.metro.name} "
            f"({inflation:.0f} km past the nearest front-end, "
            f"{nearest.metro.name})"
        )
        if access.egress_policy is EgressPolicy.COLD_POTATO:
            egress_name = metro_db.get(access.cold_potato_egress).name
            print(
                f"  Suspect: the ISP uses cold-potato egress via "
                f"{egress_name} — the paper's 'Moscow handed off in "
                f"Stockholm' pathology."
            )
        print("\n  Anycast data plane:")
        trace = trace_route(
            topology, network.anycast_rib, access.asn, metro
        )
        print("  " + trace.format().replace("\n", "\n  "))
        print(
            f"\n  Best alternative: unicast to {nearest.frontend_id} "
            f"({nearest.metro.name})"
        )
        unicast_trace = trace_route(
            topology,
            network.unicast_rib(nearest.frontend_id),
            access.asn,
            metro,
        )
        print("  " + unicast_trace.format().replace("\n", "\n  "))
        print()


if __name__ == "__main__":
    main()
