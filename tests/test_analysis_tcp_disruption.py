"""Tests for the §2 TCP-disruption analysis."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.tcp_disruption import (
    format_disruption_table,
    tcp_disruption,
)
from repro.simulation.clock import SECONDS_PER_DAY

from tests.helpers import make_client, make_dataset


def build_dataset():
    clients = [make_client(1), make_client(2)]
    k1, k2 = clients[0].key, clients[1].key
    return make_dataset(
        clients,
        num_days=1,
        passive_counts=[
            (0, k1, "fe-a", 5),
            (0, k1, "fe-b", 5),  # k1 switched
            (0, k2, "fe-a", 9),  # k2 did not
        ],
    )


def test_switching_fraction_and_scaling():
    results = tcp_disruption(build_dataset(), flow_durations_s=(10.0, 100.0))
    assert results[0].switching_client_fraction == pytest.approx(0.5)
    expected_short = 0.5 * 10.0 / SECONDS_PER_DAY
    assert results[0].broken_flow_fraction == pytest.approx(expected_short)
    # Ten times longer flows -> ten times more breakage.
    assert results[1].broken_flow_fraction == pytest.approx(
        expected_short * 10.0
    )


def test_breakage_capped_at_certainty():
    results = tcp_disruption(
        build_dataset(), flow_durations_s=(10 * SECONDS_PER_DAY,)
    )
    assert results[0].broken_flow_fraction == pytest.approx(0.5)


def test_short_web_flows_are_a_non_issue(small_dataset):
    """§2's claim on real campaign data: sub-second web flows break at a
    per-million rate, not a percent rate."""
    results = tcp_disruption(small_dataset, flow_durations_s=(0.5,))
    assert results[0].broken_per_million < 1000.0


def test_table_rendering():
    text = format_disruption_table(tcp_disruption(build_dataset()))
    assert "broken flows per million" in text
    assert "§2" in text


def test_validation():
    with pytest.raises(AnalysisError):
        tcp_disruption(build_dataset(), flow_durations_s=())
    with pytest.raises(AnalysisError):
        tcp_disruption(build_dataset(), flow_durations_s=(0.0,))
    empty = make_dataset([make_client(1)], num_days=1)
    with pytest.raises(AnalysisError):
        tcp_disruption(empty)
