"""Fig 9 — improvement over anycast from prediction-driven DNS
redirection (ECS and LDNS grouping; median and 75th percentile).

Paper: most weighted /24s see no change (prediction keeps them on
anycast); ~30% improve under ECS grouping with ~10% made worse; LDNS
grouping is a bit worse on both counts (27% improve, 17% worse).
"""

from conftest import write_figure


def test_fig9_prediction(benchmark, paper_study):
    result = benchmark(paper_study.fig9_prediction)
    write_figure(
        "fig9_prediction", result.format(), result.series,
        title="Fig 9 - improvement over anycast (weighted CDF)",
        x_label="improvement (ms)",
    )

    ecs = result.summary("ecs", 50.0)
    ldns = result.summary("ldns", 50.0)
    # A substantial minority of weighted clients improves...
    assert 0.12 <= ecs.fraction_improved <= 0.45
    # ...a smaller fraction is made worse...
    assert 0.0 < ecs.fraction_worse < ecs.fraction_improved
    # ...and most clients are untouched (prediction = anycast).
    assert ecs.fraction_unchanged >= 0.45
    # LDNS grouping pays a penalty relative to ECS on the 'worse' side.
    assert ldns.fraction_worse >= ecs.fraction_worse - 0.02
