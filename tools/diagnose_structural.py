"""Diagnostic: structural (noise-free) anycast penalty per client."""
import sys
import numpy as np
from repro.simulation import Scenario, ScenarioConfig
from repro.clients.population import ClientPopulationConfig
from repro.measurement.beacon import BeaconTargetSelector

cfg = ScenarioConfig(population=ClientPopulationConfig(prefix_count=int(sys.argv[1]) if len(sys.argv)>1 else 500))
s = Scenario.build(cfg)
sel = BeaconTargetSelector(s.network.frontends, s.geolocation)
lat = s.latency_model
diffs = []
variants = []
for c in s.clients:
    p = s.network.anycast_path(c.asn, c.home_metro, c.location)
    base_any = lat.baseline_rtt_ms(p.path_km, p.backbone_km, p.as_hops, c.access_delay_ms)
    best = None
    for fe in sel.candidates(c.ldns_id):
        up = s.network.unicast_path(fe, c.asn, c.home_metro, c.location)
        b = lat.baseline_rtt_ms(up.path_km, up.backbone_km, up.as_hops, c.access_delay_ms)
        best = b if best is None or b < best else best
    diffs.append(base_any - best)
    variants.append(len(s.network.anycast_variant_ranks(c.asn, c.home_metro)))
d = np.array(diffs)
v = np.array(variants)
print('structural diff: >=1ms %.3f >=10 %.3f >=25 %.3f >=50 %.3f >=100 %.3f' % tuple((d>=t).mean() for t in (1,10,25,50,100)))
print('diff percentiles p50=%.1f p80=%.1f p90=%.1f p95=%.1f p99=%.1f' % tuple(np.percentile(d,[50,80,90,95,99])))
print('variant counts: 1:%d 2:%d 3+:%d  (eligible frac %.2f)' % ((v==1).sum(), (v==2).sum(), (v>=3).sum(), (v>1).mean()))
