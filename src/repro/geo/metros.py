"""World metro-area database.

The simulated Internet is anchored on metro areas: front-ends deploy in
metros, ISPs peer in metros, and client /24s scatter around metros.  The
built-in table covers ~120 major metros with approximate coordinates and
metro-area populations (millions), which drive client density.

Coordinates are approximate city centers; populations are rounded — both are
inputs to a *synthetic* workload, not geographic ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import GeoError
from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.regions import Region


@dataclass(frozen=True)
class Metro:
    """A metropolitan area.

    Attributes:
        code: Short unique identifier (IATA-style, lowercase).
        name: Human-readable metro name.
        country: ISO-3166 alpha-2 country code.
        region: Continental region.
        location: Approximate center coordinates.
        population_m: Metro-area population in millions (client density).
    """

    code: str
    name: str
    country: str
    region: Region
    location: GeoPoint
    population_m: float

    def distance_km(self, other: "Metro") -> float:
        """Great-circle distance between two metro centers."""
        return haversine_km(self.location, other.location)


def _m(
    code: str,
    name: str,
    country: str,
    region: Region,
    lat: float,
    lon: float,
    pop: float,
) -> Metro:
    return Metro(
        code=code,
        name=name,
        country=country,
        region=region,
        location=GeoPoint(lat=lat, lon=lon),
        population_m=pop,
    )


_NA = Region.NORTH_AMERICA
_SA = Region.SOUTH_AMERICA
_EU = Region.EUROPE
_AF = Region.AFRICA
_AS = Region.ASIA
_OC = Region.OCEANIA

#: The built-in world metro table.
_BUILTIN: Tuple[Metro, ...] = (
    # --- North America ---
    _m("nyc", "New York", "US", _NA, 40.71, -74.01, 19.8),
    _m("lax", "Los Angeles", "US", _NA, 34.05, -118.24, 13.2),
    _m("chi", "Chicago", "US", _NA, 41.88, -87.63, 9.5),
    _m("dfw", "Dallas", "US", _NA, 32.78, -96.80, 7.6),
    _m("hou", "Houston", "US", _NA, 29.76, -95.37, 7.1),
    _m("was", "Washington DC", "US", _NA, 38.91, -77.04, 6.3),
    _m("mia", "Miami", "US", _NA, 25.76, -80.19, 6.1),
    _m("phl", "Philadelphia", "US", _NA, 39.95, -75.17, 6.2),
    _m("atl", "Atlanta", "US", _NA, 33.75, -84.39, 6.0),
    _m("bos", "Boston", "US", _NA, 42.36, -71.06, 4.9),
    _m("phx", "Phoenix", "US", _NA, 33.45, -112.07, 4.8),
    _m("sfo", "San Francisco", "US", _NA, 37.77, -122.42, 4.7),
    _m("sea", "Seattle", "US", _NA, 47.61, -122.33, 4.0),
    _m("den", "Denver", "US", _NA, 39.74, -104.99, 2.9),
    _m("det", "Detroit", "US", _NA, 42.33, -83.05, 4.3),
    _m("msp", "Minneapolis", "US", _NA, 44.98, -93.27, 3.6),
    _m("sdg", "San Diego", "US", _NA, 32.72, -117.16, 3.3),
    _m("tpa", "Tampa", "US", _NA, 27.95, -82.46, 3.1),
    _m("stl", "St. Louis", "US", _NA, 38.63, -90.20, 2.8),
    _m("por", "Portland", "US", _NA, 45.52, -122.68, 2.5),
    _m("slc", "Salt Lake City", "US", _NA, 40.76, -111.89, 1.2),
    _m("kan", "Kansas City", "US", _NA, 39.10, -94.58, 2.1),
    _m("clt", "Charlotte", "US", _NA, 35.23, -80.84, 2.6),
    _m("nsh", "Nashville", "US", _NA, 36.16, -86.78, 1.9),
    _m("yto", "Toronto", "CA", _NA, 43.65, -79.38, 6.2),
    _m("ymq", "Montreal", "CA", _NA, 45.50, -73.57, 4.2),
    _m("yvr", "Vancouver", "CA", _NA, 49.28, -123.12, 2.6),
    _m("mex", "Mexico City", "MX", _NA, 19.43, -99.13, 21.8),
    _m("gdl", "Guadalajara", "MX", _NA, 20.66, -103.35, 5.2),
    _m("mty", "Monterrey", "MX", _NA, 25.69, -100.32, 4.7),
    # --- South America ---
    _m("sao", "Sao Paulo", "BR", _SA, -23.55, -46.63, 22.0),
    _m("rio", "Rio de Janeiro", "BR", _SA, -22.91, -43.17, 13.5),
    _m("bsb", "Brasilia", "BR", _SA, -15.79, -47.88, 4.7),
    _m("bue", "Buenos Aires", "AR", _SA, -34.60, -58.38, 15.2),
    _m("scl", "Santiago", "CL", _SA, -33.45, -70.67, 6.8),
    _m("bog", "Bogota", "CO", _SA, 4.71, -74.07, 11.0),
    _m("lim", "Lima", "PE", _SA, -12.05, -77.04, 10.7),
    _m("ccs", "Caracas", "VE", _SA, 10.48, -66.90, 2.9),
    # --- Europe ---
    _m("lon", "London", "GB", _EU, 51.51, -0.13, 14.3),
    _m("par", "Paris", "FR", _EU, 48.86, 2.35, 12.9),
    _m("fra", "Frankfurt", "DE", _EU, 50.11, 8.68, 2.7),
    _m("ber", "Berlin", "DE", _EU, 52.52, 13.41, 6.1),
    _m("muc", "Munich", "DE", _EU, 48.14, 11.58, 2.9),
    _m("ham", "Hamburg", "DE", _EU, 53.55, 9.99, 3.3),
    _m("ams", "Amsterdam", "NL", _EU, 52.37, 4.90, 2.8),
    _m("bru", "Brussels", "BE", _EU, 50.85, 4.35, 2.6),
    _m("mad", "Madrid", "ES", _EU, 40.42, -3.70, 6.8),
    _m("bcn", "Barcelona", "ES", _EU, 41.39, 2.17, 5.6),
    _m("rom", "Rome", "IT", _EU, 41.90, 12.50, 4.3),
    _m("mil", "Milan", "IT", _EU, 45.46, 9.19, 4.3),
    _m("zrh", "Zurich", "CH", _EU, 47.37, 8.55, 1.4),
    _m("vie", "Vienna", "AT", _EU, 48.21, 16.37, 2.9),
    _m("prg", "Prague", "CZ", _EU, 50.08, 14.44, 2.7),
    _m("waw", "Warsaw", "PL", _EU, 52.23, 21.01, 3.1),
    _m("bud", "Budapest", "HU", _EU, 47.50, 19.04, 3.0),
    _m("buh", "Bucharest", "RO", _EU, 44.43, 26.10, 2.3),
    _m("sof", "Sofia", "BG", _EU, 42.70, 23.32, 1.7),
    _m("ath", "Athens", "GR", _EU, 37.98, 23.73, 3.6),
    _m("lis", "Lisbon", "PT", _EU, 38.72, -9.14, 2.9),
    _m("dub", "Dublin", "IE", _EU, 53.35, -6.26, 2.0),
    _m("man", "Manchester", "GB", _EU, 53.48, -2.24, 2.8),
    _m("sto", "Stockholm", "SE", _EU, 59.33, 18.07, 2.4),
    _m("osl", "Oslo", "NO", _EU, 59.91, 10.75, 1.6),
    _m("cph", "Copenhagen", "DK", _EU, 55.68, 12.57, 2.1),
    _m("hel", "Helsinki", "FI", _EU, 60.17, 24.94, 1.5),
    _m("mow", "Moscow", "RU", _EU, 55.76, 37.62, 17.1),
    _m("led", "St. Petersburg", "RU", _EU, 59.93, 30.34, 5.4),
    _m("kbp", "Kyiv", "UA", _EU, 50.45, 30.52, 3.0),
    _m("ist", "Istanbul", "TR", _EU, 41.01, 28.98, 15.5),
    # --- Africa ---
    _m("jnb", "Johannesburg", "ZA", _AF, -26.20, 28.05, 9.6),
    _m("cpt", "Cape Town", "ZA", _AF, -33.92, 18.42, 4.6),
    _m("cai", "Cairo", "EG", _AF, 30.04, 31.24, 20.9),
    _m("los", "Lagos", "NG", _AF, 6.52, 3.38, 14.8),
    _m("nbo", "Nairobi", "KE", _AF, -1.29, 36.82, 4.7),
    _m("cas", "Casablanca", "MA", _AF, 33.57, -7.59, 3.7),
    _m("acc", "Accra", "GH", _AF, 5.60, -0.19, 2.5),
    # --- Asia / Middle East ---
    _m("tyo", "Tokyo", "JP", _AS, 35.68, 139.69, 37.4),
    _m("osa", "Osaka", "JP", _AS, 34.69, 135.50, 19.2),
    _m("sel", "Seoul", "KR", _AS, 37.57, 126.98, 25.5),
    _m("bjs", "Beijing", "CN", _AS, 39.90, 116.41, 20.5),
    _m("sha", "Shanghai", "CN", _AS, 31.23, 121.47, 27.1),
    _m("can", "Guangzhou", "CN", _AS, 23.13, 113.26, 13.3),
    _m("szx", "Shenzhen", "CN", _AS, 22.54, 114.06, 12.6),
    _m("hkg", "Hong Kong", "HK", _AS, 22.32, 114.17, 7.5),
    _m("tpe", "Taipei", "TW", _AS, 25.03, 121.57, 7.0),
    _m("sin", "Singapore", "SG", _AS, 1.35, 103.82, 5.9),
    _m("kul", "Kuala Lumpur", "MY", _AS, 3.14, 101.69, 8.0),
    _m("bkk", "Bangkok", "TH", _AS, 13.76, 100.50, 10.7),
    _m("jkt", "Jakarta", "ID", _AS, -6.21, 106.85, 34.5),
    _m("mnl", "Manila", "PH", _AS, 14.60, 120.98, 13.9),
    _m("sgn", "Ho Chi Minh City", "VN", _AS, 10.82, 106.63, 9.0),
    _m("han", "Hanoi", "VN", _AS, 21.03, 105.85, 8.1),
    _m("del", "Delhi", "IN", _AS, 28.61, 77.21, 31.0),
    _m("bom", "Mumbai", "IN", _AS, 19.08, 72.88, 20.7),
    _m("blr", "Bangalore", "IN", _AS, 12.97, 77.59, 12.3),
    _m("maa", "Chennai", "IN", _AS, 13.08, 80.27, 11.2),
    _m("hyd", "Hyderabad", "IN", _AS, 17.39, 78.49, 10.0),
    _m("ccu", "Kolkata", "IN", _AS, 22.57, 88.36, 14.9),
    _m("khi", "Karachi", "PK", _AS, 24.86, 67.01, 16.1),
    _m("dac", "Dhaka", "BD", _AS, 23.81, 90.41, 21.7),
    _m("dxb", "Dubai", "AE", _AS, 25.20, 55.27, 3.5),
    _m("ruh", "Riyadh", "SA", _AS, 24.71, 46.68, 7.5),
    _m("tlv", "Tel Aviv", "IL", _AS, 32.09, 34.78, 4.2),
    _m("doh", "Doha", "QA", _AS, 25.29, 51.53, 2.4),
    _m("teh", "Tehran", "IR", _AS, 35.69, 51.39, 9.5),
    # --- Oceania ---
    _m("syd", "Sydney", "AU", _OC, -33.87, 151.21, 5.3),
    _m("mel", "Melbourne", "AU", _OC, -37.81, 144.96, 5.1),
    _m("bne", "Brisbane", "AU", _OC, -27.47, 153.03, 2.6),
    _m("per", "Perth", "AU", _OC, -31.95, 115.86, 2.1),
    _m("akl", "Auckland", "NZ", _OC, -36.85, 174.76, 1.7),
)


def builtin_metros() -> Tuple[Metro, ...]:
    """Return the built-in world metro table (immutable)."""
    return _BUILTIN


class MetroDatabase:
    """Indexed collection of metros with nearest-neighbour queries.

    The database is immutable after construction.  Lookups by code are O(1);
    nearest-neighbour queries are linear scans, which is fine at ~120 metros.
    """

    def __init__(self, metros: Optional[Iterable[Metro]] = None) -> None:
        rows = tuple(metros) if metros is not None else _BUILTIN
        if not rows:
            raise GeoError("metro database cannot be empty")
        by_code: Dict[str, Metro] = {}
        for metro in rows:
            if metro.code in by_code:
                raise GeoError(f"duplicate metro code {metro.code!r}")
            by_code[metro.code] = metro
        self._metros = rows
        self._by_code = by_code

    def __len__(self) -> int:
        return len(self._metros)

    def __iter__(self) -> Iterator[Metro]:
        return iter(self._metros)

    def __contains__(self, code: str) -> bool:
        return code in self._by_code

    @property
    def codes(self) -> Tuple[str, ...]:
        """All metro codes, in table order."""
        return tuple(m.code for m in self._metros)

    def get(self, code: str) -> Metro:
        """Return the metro with the given code.

        Raises:
            GeoError: if the code is unknown.
        """
        try:
            return self._by_code[code]
        except KeyError:
            raise GeoError(f"unknown metro code {code!r}") from None

    def in_region(self, region: Region) -> Tuple[Metro, ...]:
        """All metros in a continental region, in table order."""
        return tuple(m for m in self._metros if m.region == region)

    def nearest(self, point: GeoPoint, count: int = 1) -> List[Metro]:
        """The ``count`` metros nearest to ``point``, closest first."""
        if count < 1:
            raise GeoError(f"count must be >= 1, got {count}")
        ranked = sorted(self._metros, key=lambda m: haversine_km(m.location, point))
        return ranked[:count]

    def nearest_metro(self, point: GeoPoint) -> Metro:
        """The single metro nearest to ``point``."""
        return self.nearest(point, count=1)[0]

    def within_km(self, point: GeoPoint, radius_km: float) -> List[Metro]:
        """All metros whose center is within ``radius_km`` of ``point``."""
        if radius_km < 0:
            raise GeoError(f"radius must be non-negative, got {radius_km}")
        return [
            m for m in self._metros if haversine_km(m.location, point) <= radius_km
        ]

    def total_population_m(self) -> float:
        """Sum of metro populations (millions) — normalizer for densities."""
        return sum(m.population_m for m in self._metros)
