"""The vectorized measurement engine and its bulk sink APIs.

Two contracts under test:

* **Determinism within the engine** — a vectorized run is a pure function
  of the seed, and serial ≡ sharded ≡ parallel bit-for-bit (same
  :meth:`StudyDataset.digest`), exactly like the reference engine.
* **Statistical equivalence across engines** — the two engines consume
  different random streams, so their datasets differ bit-for-bit, but
  they share the workload draws (query/beacon volumes, passive traffic)
  and sample the same distributions, so the paper's headline statistics
  (Fig 3 penalty fractions, Fig 5 poor-path prevalence) and the pooled
  RTT distributions must agree within tolerance.
"""

import numpy as np
import pytest

from repro.dns.authoritative import ANYCAST_TARGET
from repro.errors import AnalysisError, ConfigurationError, MeasurementError
from repro.analysis.anycast_perf import anycast_penalty_ccdf
from repro.analysis.poor_paths import poor_path_prevalence
from repro.clients.population import ClientPopulationConfig
from repro.latency.model import LatencyConfig, LatencyModel
from repro.latency.sampling import percentile
from repro.measurement.aggregate import (
    GroupedDailyAggregates,
    LatencyDigest,
    RequestDiffLog,
)
from repro.measurement.backend import BeaconBackend, JoinedBatch, JoinedSegment
from repro.measurement.beacon import BeaconConfig, BeaconTargetSelector
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def engine_scenario() -> Scenario:
    return Scenario.build(
        ScenarioConfig(
            seed=23,
            population=ClientPopulationConfig(prefix_count=120),
            calendar=SimulationCalendar(num_days=3),
        )
    )


@pytest.fixture(scope="module")
def reference_dataset(engine_scenario):
    return CampaignRunner(
        engine_scenario, CampaignConfig(engine="reference")
    ).run()


@pytest.fixture(scope="module")
def vectorized_dataset(engine_scenario):
    return CampaignRunner(
        engine_scenario, CampaignConfig(engine="vectorized")
    ).run()


@pytest.fixture(scope="module")
def matrix_dataset(engine_scenario):
    return CampaignRunner(
        engine_scenario, CampaignConfig(engine="matrix")
    ).run()


def ks_statistic(a, b) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max CDF distance)."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    values = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, values, side="right") / len(a)
    cdf_b = np.searchsorted(b, values, side="right") / len(b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


def pooled_rtts(dataset, target_id=None):
    """All ECS-aggregated RTT samples, optionally for one target."""
    samples = []
    aggregates = dataset.ecs_aggregates
    for day in aggregates.days:
        for _, tid, digest in aggregates.iter_day(day):
            if target_id is None or tid == target_id:
                samples.extend(digest.values())
    return samples


class TestVectorizedDeterminism:
    def test_same_seed_same_digest(self, engine_scenario, vectorized_dataset):
        again = CampaignRunner(
            engine_scenario, CampaignConfig(engine="vectorized")
        ).run()
        assert again.digest() == vectorized_dataset.digest()

    def test_serial_equals_parallel(self, engine_scenario, vectorized_dataset):
        runner = ParallelCampaignRunner(
            engine_scenario, CampaignConfig(engine="vectorized"), workers=2
        )
        parallel = runner.run()
        assert parallel.digest() == vectorized_dataset.digest()
        assert runner.stats is not None
        assert runner.stats.engine == "vectorized"

    def test_sliced_halves_merge_to_serial(
        self, engine_scenario, vectorized_dataset
    ):
        config = CampaignConfig(engine="vectorized")
        half = len(engine_scenario.clients) // 2
        first = CampaignRunner(
            engine_scenario, config, client_slice=(0, half)
        ).run()
        second = CampaignRunner(
            engine_scenario, config,
            client_slice=(half, len(engine_scenario.clients)),
        ).run()
        assert (first + second).digest() == vectorized_dataset.digest()

    def test_engines_differ_bit_for_bit(
        self, reference_dataset, vectorized_dataset
    ):
        # Different random streams: equality across engines would mean
        # one is silently running the other's code path.
        assert reference_dataset.digest() != vectorized_dataset.digest()


class TestMatrixEngine:
    """The whole-day matrix engine is an exact twin of the vectorized one.

    Unlike reference vs vectorized (different streams, statistical
    equivalence), matrix vs vectorized share every counter-keyed draw,
    so their datasets must match **bit for bit** — the chunked vectorized
    engine is the matrix engine's oracle.
    """

    def test_matrix_equals_vectorized_digest(
        self, vectorized_dataset, matrix_dataset
    ):
        assert matrix_dataset.digest() == vectorized_dataset.digest()

    def test_same_seed_same_digest(self, engine_scenario, matrix_dataset):
        again = CampaignRunner(
            engine_scenario, CampaignConfig(engine="matrix")
        ).run()
        assert again.digest() == matrix_dataset.digest()

    def test_serial_equals_parallel(self, engine_scenario, matrix_dataset):
        runner = ParallelCampaignRunner(
            engine_scenario, CampaignConfig(engine="matrix"), workers=2
        )
        parallel = runner.run()
        assert parallel.digest() == matrix_dataset.digest()
        assert runner.stats.engine == "matrix"

    def test_sliced_halves_merge_to_serial(
        self, engine_scenario, matrix_dataset
    ):
        config = CampaignConfig(engine="matrix")
        half = len(engine_scenario.clients) // 2
        first = CampaignRunner(
            engine_scenario, config, client_slice=(0, half)
        ).run()
        second = CampaignRunner(
            engine_scenario, config,
            client_slice=(half, len(engine_scenario.clients)),
        ).run()
        assert (first + second).digest() == matrix_dataset.digest()

    def test_sketch_mode_matches_vectorized(self, engine_scenario):
        matrix = CampaignRunner(
            engine_scenario,
            CampaignConfig(engine="matrix", sketch_threshold=32),
        ).run()
        vectorized = CampaignRunner(
            engine_scenario,
            CampaignConfig(engine="vectorized", sketch_threshold=32),
        ).run()
        assert matrix.digest() == vectorized.digest()


class TestEngineEquivalence:
    def test_shared_workload_draws(
        self, reference_dataset, vectorized_dataset
    ):
        # Query/beacon volumes come from the same derived streams in both
        # engines, so the counts — and the passive production log — are
        # identical, not merely close.
        assert reference_dataset.beacon_count == vectorized_dataset.beacon_count
        assert (
            reference_dataset.measurement_count
            == vectorized_dataset.measurement_count
        )
        ref_passive = reference_dataset.passive
        vec_passive = vectorized_dataset.passive
        assert ref_passive.days == vec_passive.days
        for day in ref_passive.days:
            assert ref_passive.clients_on(day) == vec_passive.clients_on(day)
            for client_key in ref_passive.clients_on(day):
                assert ref_passive.frontends_for(day, client_key) == (
                    vec_passive.frontends_for(day, client_key)
                )

    def test_fig3_penalty_fractions_agree(
        self, reference_dataset, vectorized_dataset
    ):
        reference = anycast_penalty_ccdf(reference_dataset).fraction_slower
        vectorized = anycast_penalty_ccdf(vectorized_dataset).fraction_slower
        for region in ("world", "europe"):
            for threshold in (10.0, 25.0, 100.0):
                assert reference[region][threshold] == pytest.approx(
                    vectorized[region][threshold], abs=0.05
                )

    def test_fig5_poor_path_prevalence_agrees(
        self, reference_dataset, vectorized_dataset
    ):
        reference = poor_path_prevalence(reference_dataset)
        vectorized = poor_path_prevalence(vectorized_dataset)
        for threshold in reference.thresholds:
            assert reference.mean_fraction(threshold) == pytest.approx(
                vectorized.mean_fraction(threshold), abs=0.05
            )

    def test_pooled_rtt_distributions_agree(
        self, reference_dataset, vectorized_dataset
    ):
        anycast = ks_statistic(
            pooled_rtts(reference_dataset, ANYCAST_TARGET),
            pooled_rtts(vectorized_dataset, ANYCAST_TARGET),
        )
        everything = ks_statistic(
            pooled_rtts(reference_dataset), pooled_rtts(vectorized_dataset)
        )
        assert anycast < 0.05
        assert everything < 0.05

    def test_per_path_rtt_distributions_agree(
        self, reference_dataset, vectorized_dataset
    ):
        # Per (client, anycast path), pooled across days.  Tolerance is
        # looser than the global pools: a single path sees only a few
        # hundred samples and its own daily-congestion realizations.
        ref_agg = reference_dataset.ecs_aggregates
        vec_agg = vectorized_dataset.ecs_aggregates
        sizes = {}
        for day in ref_agg.days:
            for group, tid, digest in ref_agg.iter_day(day):
                if tid == ANYCAST_TARGET:
                    sizes[group] = sizes.get(group, 0) + digest.count
        busiest = sorted(sizes, key=sizes.get, reverse=True)[:5]
        assert busiest, "no anycast samples aggregated"
        for group in busiest:
            samples = []
            for aggregate in (ref_agg, vec_agg):
                pooled = []
                for day in aggregate.days:
                    digest = aggregate.digest(day, group, ANYCAST_TARGET)
                    if digest is not None:
                        pooled.extend(digest.values())
                samples.append(pooled)
            assert ks_statistic(*samples) < 0.12


class TestEngineSelection:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(engine="warp")
        with pytest.raises(ConfigurationError):
            ScenarioConfig(engine="warp")

    def test_campaign_config_overrides_scenario(self):
        scenario = Scenario.build(
            ScenarioConfig(
                seed=5,
                population=ClientPopulationConfig(prefix_count=20),
                calendar=SimulationCalendar(num_days=1),
                engine="vectorized",
            )
        )
        inherited = CampaignRunner(scenario)
        inherited.run()
        assert inherited.stats.engine == "vectorized"
        overridden = CampaignRunner(
            scenario, CampaignConfig(engine="reference")
        )
        overridden.run()
        assert overridden.stats.engine == "reference"

    def test_stats_format_names_engine(self, engine_scenario):
        runner = CampaignRunner(
            engine_scenario, CampaignConfig(engine="vectorized")
        )
        runner.run()
        assert "engine=vectorized" in runner.stats.format()


class TestLatencyDigestBulk:
    def test_extend_matches_repeated_add(self):
        values = [5.0, 1.0, 9.0, 3.0]
        one = LatencyDigest()
        other = LatencyDigest()
        for value in values:
            one.add(value)
        other.extend(np.array(values))
        assert other.values() == one.values()
        assert other.median() == one.median()

    def test_extend_accepts_plain_sequences(self):
        digest = LatencyDigest()
        digest.extend([2.0, 4.0])
        digest.extend((6.0,))
        assert digest.values() == (2.0, 4.0, 6.0)

    def test_numpy_percentile_path_matches_reference_percentile(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(3.0, 1.0, 500)
        digest = LatencyDigest()
        digest.extend(values)
        assert digest.count >= LatencyDigest._NUMPY_SORT_THRESHOLD
        ordered = sorted(values)
        for q in (0.0, 25.0, 50.0, 73.5, 100.0):
            assert digest.percentile(q) == pytest.approx(
                percentile(ordered, q)
            )

    def test_sorted_cache_reused_and_invalidated(self):
        digest = LatencyDigest()
        digest.extend(np.arange(100, dtype=float))
        assert digest.percentile(50.0) == pytest.approx(49.5)
        assert digest._sorted_array is not None
        digest.extend(np.array([1000.0]))
        assert digest._sorted_array is None
        assert digest.percentile(100.0) == 1000.0

    def test_percentile_bounds_checked_on_numpy_path(self):
        digest = LatencyDigest()
        digest.extend(np.arange(100, dtype=float))
        with pytest.raises(AnalysisError):
            digest.percentile(101.0)

    def test_empty_digest_still_raises(self):
        with pytest.raises(AnalysisError):
            LatencyDigest().percentile(50.0)


class TestBulkSinks:
    def test_observe_many_matches_repeated_observe(self):
        bulk = GroupedDailyAggregates("ecs")
        scalar = GroupedDailyAggregates("ecs")
        rtts = np.array([10.0, 20.0, 30.0])
        bulk.observe_many(1, "g", "anycast", rtts)
        for rtt in rtts:
            scalar.observe(1, "g", "anycast", float(rtt))
        assert bulk.digest(1, "g", "anycast").values() == (
            scalar.digest(1, "g", "anycast").values()
        )

    def test_observe_many_empty_batch_is_noop(self):
        aggregate = GroupedDailyAggregates("ecs")
        aggregate.observe_many(0, "g", "anycast", np.empty(0))
        assert aggregate.days == ()

    def test_diff_log_observe_many_matches_scalar(self):
        bulk = RequestDiffLog()
        scalar = RequestDiffLog()
        anycast = np.array([30.0, 45.0])
        unicast = np.array([20.0, 50.0])
        bulk.observe_many(2, 7, "europe", anycast, unicast)
        for a, b in zip(anycast, unicast):
            scalar.observe(2, 7, "europe", float(a), float(b))
        assert list(bulk.rows()) == list(scalar.rows())

    def test_diff_log_observe_many_rejects_mismatched_lengths(self):
        log = RequestDiffLog()
        with pytest.raises(MeasurementError):
            log.observe_many(0, 0, "europe", np.zeros(2), np.zeros(3))

    def test_joined_batch_feeds_both_observer_kinds(self):
        rows = []
        batches = []
        backend = BeaconBackend(
            observers=[rows.append], batch_observers=[batches.append]
        )
        batch = JoinedBatch(
            day=1,
            client_key="10.0.0.0/24",
            ldns_id="ldns-1",
            segments=(
                JoinedSegment("anycast", "fe-a", np.array([12.0, 14.0])),
                JoinedSegment("fe-b", "fe-b", np.array([20.0])),
            ),
        )
        assert batch.count == 3
        backend.on_joined_batch(batch)
        assert backend.joined_count == 3
        assert backend.pending_count == 0
        assert batches == [batch]
        assert [row.rtt_ms for row in rows] == [12.0, 14.0, 20.0]
        assert rows[0].target_id == "anycast"
        assert rows[0].frontend_id == "fe-a"
        assert rows[2].ldns_id == "ldns-1"


class TestBatchedSamplers:
    def test_jitter_batch_matches_scalar_distribution(self):
        import random

        model = LatencyModel()
        gen = np.random.default_rng(11)
        batch = model.sample_jitter_batch_ms(gen, 20_000)
        rng = random.Random(11)
        scalar = [model.sample_jitter_ms(rng) for _ in range(20_000)]
        assert batch.shape == (20_000,)
        assert float(batch.min()) >= 0.0
        assert ks_statistic(batch, scalar) < 0.02

    def test_jitter_batch_shape_and_zero_median(self):
        model = LatencyModel(
            LatencyConfig(jitter_median_ms=0.0, spike_probability=0.0)
        )
        batch = model.sample_jitter_batch_ms(
            np.random.default_rng(0), (4, 3)
        )
        assert batch.shape == (4, 3)
        assert not batch.any()

    def test_daily_variation_batch_rate_matches_probability(self):
        model = LatencyModel()
        gen = np.random.default_rng(3)
        draws = model.sample_daily_variation_batch_ms(gen, 50_000)
        rate = float((draws > 0).mean())
        assert rate == pytest.approx(
            model.config.daily_variation_probability, abs=0.01
        )
        anycast = model.sample_daily_variation_batch_ms(
            gen, 50_000, anycast=True
        )
        assert float((anycast > 0).mean()) == pytest.approx(
            model.config.anycast_daily_variation_probability, abs=0.01
        )

    def test_daily_variation_batch_disabled_is_zero(self):
        model = LatencyModel(
            LatencyConfig(daily_variation_probability=0.0)
        )
        draws = model.sample_daily_variation_batch_ms(
            np.random.default_rng(0), 10
        )
        assert not draws.any()
        assert model.sample_daily_variation_batch_ms(
            np.random.default_rng(0), 0
        ).shape == (0,)

    def test_pick_indices_rows_are_distinct_and_in_range(
        self, engine_scenario
    ):
        selector = BeaconTargetSelector(
            engine_scenario.network.frontends,
            engine_scenario.geolocation,
            BeaconConfig(),
        )
        ldns_id = engine_scenario.clients[0].ldns_id
        pool = selector.pick_pool(ldns_id)
        picks = selector.sample_pick_indices(
            ldns_id, np.random.default_rng(5), 200
        )
        assert picks.shape[0] == 200
        assert picks.shape[1] <= len(pool)
        assert picks.min() >= 0
        assert picks.max() < len(pool)
        for row in picks:
            assert len(set(row.tolist())) == len(row)

    def test_pick_indices_weighting_prefers_near_targets(
        self, engine_scenario
    ):
        # Rank-weighted sampling without replacement: the pool is ordered
        # by proximity, so nearer pool slots must be picked more often.
        selector = BeaconTargetSelector(
            engine_scenario.network.frontends,
            engine_scenario.geolocation,
            BeaconConfig(),
        )
        ldns_id = engine_scenario.clients[0].ldns_id
        picks = selector.sample_pick_indices(
            ldns_id, np.random.default_rng(9), 4000
        )
        counts = np.bincount(
            picks.ravel(), minlength=len(selector.pick_pool(ldns_id))
        )
        assert counts[0] > counts[-1]
