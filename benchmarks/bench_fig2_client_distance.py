"""Fig 2 — distance from volume-weighted clients to the Nth-closest
front-end (N = 1..4).

Paper values: median ~280 km to the closest, ~700 km to the 2nd, ~1300 km
to the 4th.
"""

from conftest import write_figure


def test_fig2_client_distance(benchmark, paper_study):
    result = benchmark(paper_study.fig2_client_distance)
    write_figure(
        "fig2_client_distance", result.format(), result.series,
        title="Fig 2 - distance to Nth-closest front-end (weighted CDF)",
        x_label="km", log_x=True,
    )

    medians = result.medians_km
    # Monotone by construction of "Nth closest".
    assert list(medians) == sorted(medians)
    # Shape: closest front-end within a few hundred km for the median
    # client; 4th-closest roughly 1-3 thousand km.
    assert medians[0] < 700
    assert 700 < medians[3] < 3500
