"""Tests for front-end withdrawal and cascade analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.cdn.failover import WithdrawalSimulator, frontend_loads
from repro.cdn.network import CdnNetwork


@pytest.fixture(scope="module")
def world(cdn_world):
    return cdn_world


@pytest.fixture(scope="module")
def sim(small_scenario):
    return WithdrawalSimulator(
        small_scenario.topology,
        small_scenario.deployment,
        small_scenario.clients,
        headroom=1.5,
    )


class TestWithdrawnNetwork:
    def test_withdrawn_frontend_not_live(self, cdn_world):
        topology, deployment, _ = cdn_world
        victim = deployment.frontends[0].frontend_id
        network = CdnNetwork(topology, deployment, frozenset({victim}))
        assert victim in network.withdrawn_frontends
        assert victim not in {fe.frontend_id for fe in network.frontends}

    def test_no_traffic_served_by_withdrawn(self, small_scenario):
        deployment = small_scenario.deployment
        victim = deployment.frontends[0].frontend_id
        network = CdnNetwork(
            small_scenario.topology, deployment, frozenset({victim})
        )
        for client in small_scenario.clients[:60]:
            path = network.anycast_path(client.asn, client.home_metro)
            assert path.frontend.frontend_id != victim

    def test_withdrawn_unicast_unreachable(self, cdn_world):
        topology, deployment, _ = cdn_world
        victim = deployment.frontends[0].frontend_id
        network = CdnNetwork(topology, deployment, frozenset({victim}))
        with pytest.raises(ConfigurationError):
            network.unicast_rib(victim)

    def test_unknown_withdrawal_rejected(self, cdn_world):
        topology, deployment, _ = cdn_world
        with pytest.raises(ConfigurationError, match="unknown"):
            CdnNetwork(topology, deployment, frozenset({"fe-nope"}))

    def test_cannot_withdraw_everything(self, cdn_world):
        topology, deployment, _ = cdn_world
        everything = frozenset(fe.frontend_id for fe in deployment.frontends)
        with pytest.raises(ConfigurationError, match="every front-end"):
            CdnNetwork(topology, deployment, everything)


class TestLoads:
    def test_total_load_conserved(self, sim, small_scenario):
        total = sum(c.daily_queries for c in small_scenario.clients)
        assert sum(sim.baseline_loads.values()) == pytest.approx(total)

    def test_withdrawal_redistributes_load(self, sim, small_scenario):
        baseline = sim.baseline_loads
        victim = max(baseline, key=baseline.get)
        after = sim.loads_after_withdrawal([victim])
        assert victim not in after
        total = sum(c.daily_queries for c in small_scenario.clients)
        assert sum(after.values()) == pytest.approx(total)

    def test_frontend_loads_covers_all_live(self, small_scenario):
        loads = frontend_loads(
            small_scenario.network, small_scenario.clients
        )
        assert set(loads) == {
            fe.frontend_id for fe in small_scenario.network.frontends
        }

    def test_capacities_exceed_baseline(self, sim):
        for frontend_id, load in sim.baseline_loads.items():
            assert sim.capacities[frontend_id] >= load

    def test_explicit_capacities_validated(self, small_scenario):
        with pytest.raises(ConfigurationError, match="missing"):
            WithdrawalSimulator(
                small_scenario.topology,
                small_scenario.deployment,
                small_scenario.clients,
                capacities={"fe-lon": 100.0},
            )


class TestCascade:
    def test_cascade_terminates(self, sim):
        baseline = sim.baseline_loads
        victim = max(baseline, key=baseline.get)
        result = sim.cascade([victim], max_rounds=6)
        assert result.steps
        assert victim in result.final_withdrawn
        assert result.cascade_length <= 6
        assert "Withdrawal cascade" in result.format()

    def test_tiny_headroom_forces_cascade(self, small_scenario):
        tight = WithdrawalSimulator(
            small_scenario.topology,
            small_scenario.deployment,
            small_scenario.clients,
            headroom=1.0001,
        )
        baseline = tight.baseline_loads
        victim = max(baseline, key=baseline.get)
        result = tight.cascade([victim], max_rounds=4)
        # Withdrawing the biggest front-end with zero slack must overload
        # at least one survivor.
        assert result.cascade_length >= 1
        assert len(result.final_withdrawn) > 1

    def test_generous_headroom_is_stable(self, small_scenario):
        loose = WithdrawalSimulator(
            small_scenario.topology,
            small_scenario.deployment,
            small_scenario.clients,
            headroom=50.0,
        )
        baseline = loose.baseline_loads
        victim = min(
            (k for k, v in baseline.items() if v > 0), key=baseline.get
        )
        result = loose.cascade([victim])
        assert result.stable
        assert result.final_withdrawn == frozenset({victim})

    def test_validation(self, sim):
        with pytest.raises(ConfigurationError):
            sim.cascade([])
        with pytest.raises(ConfigurationError):
            sim.cascade(["fe-lon"], max_rounds=0)
        with pytest.raises(ConfigurationError):
            WithdrawalSimulator(
                None, None, [], headroom=1.5  # type: ignore[arg-type]
            )

    def test_headroom_validated(self, small_scenario):
        with pytest.raises(ConfigurationError, match="headroom"):
            WithdrawalSimulator(
                small_scenario.topology,
                small_scenario.deployment,
                small_scenario.clients,
                headroom=1.0,
            )
