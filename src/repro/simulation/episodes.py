"""Poor-path episodes: transient anycast latency inflation.

Figs 5 and 6 show that beyond the structurally bad routes, poor anycast
performance comes and goes: ~19% of /24s see *some* unicast improvement on
an average day, but ~60% of ever-poor prefixes are poor on only one day of
the month.  The transient component is modeled as episodes of congestion or
misrouting on a client's anycast path: an episode starts with a small daily
probability, lasts a geometric number of days (heavy one-day mass), and
inflates anycast RTTs by a lognormal amount while active.

Most episodes affect the anycast path — the unicast beacons to specific
front-ends take different routes, which is exactly why the paper's
methodology can see the problem.  A configurable minority instead hits one
specific unicast path, which is what makes yesterday's prediction
occasionally *worse* than anycast today (the left tail of Fig 9).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.clients.population import ClientPrefix
from repro.rand import derive_rng, derive_seed
from repro.simulation.clock import SimulationCalendar


class EpisodeScope(enum.Enum):
    """Which path an episode degrades."""

    ANYCAST = "anycast"
    UNICAST = "unicast"


@dataclass(frozen=True)
class EpisodeEffect:
    """An active episode's effect for one client-day.

    Attributes:
        inflation_ms: Added latency while the episode is active.
        scope: Anycast path, or one specific unicast path.
        selector: Uniform [0, 1) value identifying *which* unicast path is
            affected — the campaign maps it onto the client's candidate
            front-ends, keeping the affected path stable across the
            episode's days without this module knowing about front-ends.
    """

    inflation_ms: float
    scope: EpisodeScope
    selector: float

    def __post_init__(self) -> None:
        if self.inflation_ms < 0:
            raise ConfigurationError("inflation_ms must be non-negative")
        if not 0.0 <= self.selector < 1.0:
            raise ConfigurationError("selector must be in [0, 1)")


@dataclass(frozen=True)
class EpisodeConfig:
    """Episode process parameters.

    Attributes:
        daily_start_probability: Chance an idle client starts an episode
            on a given day.
        continue_probability: Chance an active episode survives into the
            next day (geometric duration; mean = 1/(1-p) days).
        inflation_median_ms: Median added latency while active.
        inflation_sigma: Lognormal shape of the inflation draw.
        susceptible_fraction: Fraction of clients that can have episodes
            at all (paths through congested or fragile segments).
        unicast_scope_fraction: Fraction of episodes that degrade one
            specific unicast path instead of the anycast path.
    """

    daily_start_probability: float = 0.02
    continue_probability: float = 0.25
    inflation_median_ms: float = 35.0
    inflation_sigma: float = 0.9
    susceptible_fraction: float = 0.7
    unicast_scope_fraction: float = 0.45

    def __post_init__(self) -> None:
        for name in (
            "daily_start_probability",
            "continue_probability",
            "susceptible_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {value}")
        if not 0.0 <= self.unicast_scope_fraction <= 1.0:
            raise ConfigurationError(
                "unicast_scope_fraction must be in [0, 1]"
            )
        if self.inflation_median_ms <= 0:
            raise ConfigurationError("inflation_median_ms must be positive")
        if self.inflation_sigma < 0:
            raise ConfigurationError("inflation_sigma must be non-negative")


class PoorPathEpisodeModel:
    """Evolves per-client episodes day by day.

    Like :class:`repro.simulation.churn.RouteChurnModel`, days advance in
    order; the model tracks the active inflation per client.
    """

    def __init__(
        self,
        clients: Sequence[ClientPrefix],
        calendar: SimulationCalendar,
        config: Optional[EpisodeConfig] = None,
        seed: int = 0,
    ) -> None:
        self._config = config or EpisodeConfig()
        self._calendar = calendar
        self._rng = derive_rng(seed, "episodes")
        cfg = self._config
        self._susceptible: Dict[str, bool] = {
            client.key: self._rng.random() < cfg.susceptible_fraction
            for client in clients
        }
        #: client_key -> active effect (absent = idle)
        self._active: Dict[str, EpisodeEffect] = {}
        self._next_day = 0

    @property
    def config(self) -> EpisodeConfig:
        """The episode parameters."""
        return self._config

    def is_susceptible(self, client_key: str) -> bool:
        """Whether a client can ever have episodes."""
        return self._susceptible[client_key]

    def inflations_for_day(self, day: int) -> Dict[str, EpisodeEffect]:
        """Evolve into ``day`` and return the active episode effects.

        Clients absent from the result have no active episode.  Must be
        called with consecutive day indices starting at 0.  An episode's
        effect (inflation, scope, selector) is constant for its lifetime.
        """
        if day != self._next_day:
            raise ConfigurationError(
                f"episodes must advance day by day (expected "
                f"{self._next_day}, got {day})"
            )
        self._next_day += 1
        cfg = self._config
        rng = self._rng
        mu = math.log(cfg.inflation_median_ms)

        # Existing episodes either continue (same effect) or end.
        surviving: Dict[str, EpisodeEffect] = {
            key: effect
            for key, effect in self._active.items()
            if rng.random() < cfg.continue_probability
        }
        # Idle susceptible clients may start a new episode.
        for client_key, susceptible in self._susceptible.items():
            if not susceptible or client_key in surviving:
                continue
            if rng.random() < cfg.daily_start_probability:
                scope = (
                    EpisodeScope.UNICAST
                    if rng.random() < cfg.unicast_scope_fraction
                    else EpisodeScope.ANYCAST
                )
                surviving[client_key] = EpisodeEffect(
                    inflation_ms=rng.lognormvariate(mu, cfg.inflation_sigma),
                    scope=scope,
                    selector=rng.random(),
                )
        self._active = surviving
        return dict(surviving)


# ----------------------------------------------------------------------
# Overload episodes: demand surges and capacity losses
# ----------------------------------------------------------------------
#
# Where poor-path episodes degrade one client's *route*, overload
# episodes degrade a *front-end*: demand surges toward it (flash crowd,
# regional event) or capacity drains away from it (maintenance drain,
# outright failure).  They use the same compact, seed-derived plan
# grammar as :mod:`repro.faults` — ``kind[:count][@day]`` — so a chaos
# drill is one CLI string, and compile to concrete (day, target) events
# from the scenario seed alone: no engine, shard, or worker-count
# dependence, which is what keeps serial == sharded digests bit-exact.


class OverloadKind(enum.Enum):
    """The overload drill kinds a campaign can schedule.

    * ``FLASH_CROWD`` — a demand multiplier on the clients one front-end
      serves (the §2 "particular front-end becomes overloaded" case).
    * ``REGIONAL_EVENT`` — a demand multiplier on every client in one
      geographic region (correlated surges hit several front-ends).
    * ``DRAIN`` — one front-end's capacity is reduced for maintenance,
      the gradual drain-off §2 says anycast makes hard.
    * ``FAILURE`` — one front-end loses all capacity for the rest of the
      study and is withdrawn, triggering the §5 route-change machinery.
    """

    FLASH_CROWD = "flash-crowd"
    REGIONAL_EVENT = "regional-event"
    DRAIN = "drain"
    FAILURE = "failure"


@dataclass(frozen=True)
class OverloadSpec:
    """One overload kind with a multiplicity and an optional pinned day.

    Attributes:
        kind: The overload drill to schedule.
        count: How many instances of it to schedule.
        day: Pin every instance's start to this day (modulo the compiled
            calendar length); ``None`` picks days from a seed-derived
            stream.
    """

    kind: OverloadKind
    count: int = 1
    day: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(
                f"overload spec {self.kind.value!r}: count must be >= 1"
            )
        if self.day is not None and self.day < 0:
            raise ConfigurationError(
                f"overload spec {self.kind.value!r}: day must be >= 0"
            )


@dataclass(frozen=True)
class OverloadPlan:
    """A deterministic schedule of overload drills for a campaign.

    Attributes:
        specs: The drills to schedule, in order.
    """

    specs: Tuple[OverloadSpec, ...] = ()

    @classmethod
    def from_spec(cls, text: str) -> "OverloadPlan":
        """Parse a plan from a compact CLI spec string.

        The grammar is ``kind[:count][@day]`` entries joined by commas,
        e.g. ``"flash-crowd:1"``, ``"flash-crowd:2,drain:1"``, or
        ``"failure:1@0"`` (a front-end failure on the first day).

        Raises:
            ConfigurationError: on an unknown kind or malformed entry.
        """
        specs = []
        for raw_entry in text.split(","):
            entry = raw_entry.strip()
            if not entry:
                continue
            day: Optional[int] = None
            if "@" in entry:
                entry, _, day_text = entry.partition("@")
                try:
                    day = int(day_text)
                except ValueError:
                    raise ConfigurationError(
                        f"overload spec {raw_entry!r}: day must be an integer"
                    ) from None
            kind_text, _, count_text = entry.partition(":")
            try:
                kind = OverloadKind(kind_text.strip())
            except ValueError:
                valid = ", ".join(k.value for k in OverloadKind)
                raise ConfigurationError(
                    f"unknown overload kind {kind_text.strip()!r}; expected "
                    f"one of: {valid}"
                ) from None
            try:
                count = int(count_text) if count_text else 1
            except ValueError:
                raise ConfigurationError(
                    f"overload spec {raw_entry!r}: count must be an integer"
                ) from None
            specs.append(OverloadSpec(kind=kind, count=count, day=day))
        if not specs:
            raise ConfigurationError(f"empty overload plan spec {text!r}")
        return cls(specs=tuple(specs))

    def spec_string(self) -> str:
        """The compact spec string this plan round-trips to."""
        parts = []
        for spec in self.specs:
            entry = f"{spec.kind.value}:{spec.count}"
            if spec.day is not None:
                entry += f"@{spec.day}"
            parts.append(entry)
        return ",".join(parts)

    def compile(self, seed: int, num_days: int) -> "CompiledOverloadPlan":
        """Pin every instance to a concrete (start day, target, size).

        Everything derives from ``derive_seed(seed, "overload",
        spec_index, instance, <field>)`` over the scenario seed and the
        calendar length only, so the compiled events are identical for
        every engine, worker count, and shard layout.  Targets are
        uniform selectors in [0, 1): the campaign maps them onto its
        sorted front-end (or region) list, keeping this module free of
        topology knowledge — the same pattern as
        :attr:`EpisodeEffect.selector`.

        Raises:
            ConfigurationError: if ``num_days`` < 1.
        """
        if num_days < 1:
            raise ConfigurationError(
                "cannot compile an overload plan for an empty calendar"
            )
        events = []
        for spec_index, spec in enumerate(self.specs):
            for instance in range(spec.count):
                if spec.day is not None:
                    start_day = spec.day % num_days
                else:
                    start_day = derive_seed(
                        seed, "overload", spec_index, instance, "day"
                    ) % num_days

                def uniform(tag: str) -> float:
                    raw = derive_seed(
                        seed, "overload", spec_index, instance, tag
                    )
                    return (raw % (1 << 53)) / float(1 << 53)

                if spec.kind is OverloadKind.FLASH_CROWD:
                    duration = 1 + derive_seed(
                        seed, "overload", spec_index, instance, "duration"
                    ) % 3
                    magnitude = 2.0 + 4.0 * uniform("magnitude")
                elif spec.kind is OverloadKind.REGIONAL_EVENT:
                    duration = 1 + derive_seed(
                        seed, "overload", spec_index, instance, "duration"
                    ) % 3
                    magnitude = 1.5 + 2.5 * uniform("magnitude")
                elif spec.kind is OverloadKind.DRAIN:
                    duration = 2 + derive_seed(
                        seed, "overload", spec_index, instance, "duration"
                    ) % 3
                    # Residual capacity fraction while draining.
                    magnitude = 0.1 + 0.4 * uniform("magnitude")
                else:  # FAILURE: down for the rest of the study.
                    duration = num_days - start_day
                    magnitude = 0.0
                events.append(
                    OverloadEvent(
                        kind=spec.kind,
                        start_day=start_day,
                        duration_days=duration,
                        magnitude=magnitude,
                        selector=uniform("target"),
                    )
                )
        events.sort(
            key=lambda e: (e.start_day, e.kind.value, e.selector)
        )
        return CompiledOverloadPlan(events=tuple(events), seed=seed)


@dataclass(frozen=True)
class OverloadEvent:
    """One compiled overload drill.

    Attributes:
        kind: What happens.
        start_day: First day (0-based calendar index) the event is live.
        duration_days: How many consecutive days it stays live.
        magnitude: Demand multiplier (flash crowd, regional event) or
            residual capacity fraction (drain; 0.0 for failure).
        selector: Uniform [0, 1) value the campaign maps onto its sorted
            front-end list (or region list for regional events) to pick
            the target.
    """

    kind: OverloadKind
    start_day: int
    duration_days: int
    magnitude: float
    selector: float

    def __post_init__(self) -> None:
        if self.start_day < 0:
            raise ConfigurationError("start_day must be >= 0")
        if self.duration_days < 1:
            raise ConfigurationError("duration_days must be >= 1")
        if self.magnitude < 0:
            raise ConfigurationError("magnitude must be non-negative")
        if not 0.0 <= self.selector < 1.0:
            raise ConfigurationError("selector must be in [0, 1)")

    def active_on(self, day: int) -> bool:
        """Whether the event is live on a calendar day."""
        return self.start_day <= day < self.start_day + self.duration_days


@dataclass(frozen=True)
class CompiledOverloadPlan:
    """An overload plan resolved to concrete events.

    Attributes:
        events: All compiled events, sorted by (start day, kind).
        seed: The scenario seed the plan was compiled against.
    """

    events: Tuple[OverloadEvent, ...] = field(default_factory=tuple)
    seed: int = 0

    @property
    def empty(self) -> bool:
        """True when nothing is scheduled."""
        return not self.events

    def events_on(self, day: int) -> Tuple[OverloadEvent, ...]:
        """The events live on a calendar day, in compiled order."""
        return tuple(e for e in self.events if e.active_on(day))
