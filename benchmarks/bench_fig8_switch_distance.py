"""Fig 8 — change in client-to-front-end distance when the front-end
changes.

Paper: switches are mostly local — median change 483 km, 83% within
2000 km — with a long tail.
"""

from conftest import write_figure


def test_fig8_switch_distance(benchmark, paper_study):
    result = benchmark(paper_study.fig8_switch_distance)
    write_figure(
        "fig8_switch_distance", result.format(), [result.series],
        title="Fig 8 - distance change on front-end switch (CDF)",
        x_label="km", log_x=True,
    )

    assert result.switch_count > 50
    # Switches land on a nearby alternative front-end...
    assert 200 <= result.median_km <= 2000
    assert result.fraction_within_2000km >= 0.6
    # ...with a long tail (the CDF has mass beyond 2000 km).
    assert result.fraction_within_2000km < 1.0
