"""Performance benchmarks for the simulation substrate itself.

These are classic microbenchmarks (not figure reproductions): how fast the
BGP solver converges, how fast the data plane resolves, and how fast a
full campaign day runs.  They guard against performance regressions in
the hot paths every figure depends on.
"""

import random

from repro.cdn.deployment import DeploymentConfig, attach_cdn
from repro.cdn.network import CdnNetwork
from repro.clients.population import ClientPopulationConfig
from repro.geo.metros import MetroDatabase
from repro.net.bgp import Announcement, RouteComputation
from repro.net.topology import AsRole, TopologyBuilder, populate_base_internet
from repro.simulation.campaign import CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.scenario import Scenario, ScenarioConfig


def build_world(seed=11):
    builder = TopologyBuilder(MetroDatabase())
    populate_base_internet(builder, seed=seed)
    deployment = attach_cdn(builder, DeploymentConfig(), seed=seed)
    return builder.build(), deployment


def test_bgp_anycast_computation(benchmark):
    topology, deployment = build_world()
    computation = RouteComputation(topology)
    announcement = Announcement(
        prefix=deployment.anycast_prefix, origin_asn=deployment.asn
    )
    rib = benchmark(computation.compute, announcement)
    assert len(rib) == len(topology)


def test_cdn_network_construction(benchmark):
    """Builds the anycast RIB plus one unicast RIB per front-end."""
    topology, deployment = build_world()
    network = benchmark(CdnNetwork, topology, deployment)
    assert len(network.frontends) == len(deployment.frontends)


def test_data_plane_resolution(benchmark):
    topology, deployment = build_world()
    network = CdnNetwork(topology, deployment)
    pairs = [
        (a.asn, sorted(a.pop_metros)[0])
        for a in topology.ases_with_role(AsRole.ACCESS)
    ]

    def resolve_all():
        total_km = 0.0
        for asn, metro in pairs:
            total_km += network.anycast_path(asn, metro).total_km
        return total_km

    benchmark(resolve_all)


def test_single_campaign_day(benchmark):
    """End-to-end cost of one measured day at a small population."""
    config = ScenarioConfig(
        seed=3,
        population=ClientPopulationConfig(prefix_count=150),
        calendar=SimulationCalendar(num_days=1),
    )
    scenario = Scenario.build(config)

    def run_day():
        return CampaignRunner(scenario).run().measurement_count

    measurements = benchmark.pedantic(run_day, rounds=3, iterations=1)
    assert measurements > 0
