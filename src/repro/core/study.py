"""End-to-end study orchestration: build, measure, analyze.

:class:`AnycastStudy` stitches the whole reproduction together the way §3
describes the measurement apparatus: build the environment, run the
campaign once, then answer each figure from the collected dataset.  All
figure methods are cached — the expensive parts (scenario build, campaign)
run at most once per study instance.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.affinity import (
    AffinityResult,
    SwitchDistanceResult,
    daily_switch_rate,
    frontend_affinity,
    switch_distance_cdf,
)
from repro.analysis.ldns_proximity import LdnsProximityResult, ldns_proximity
from repro.analysis.tcp_disruption import format_disruption_table, tcp_disruption
from repro.analysis.anycast_perf import (
    AnycastDistanceResult,
    AnycastPenaltyResult,
    anycast_distance_cdf,
    anycast_penalty_ccdf,
)
from repro.analysis.poor_paths import (
    PoorPathDuration,
    PoorPathPrevalence,
    poor_path_duration,
    poor_path_prevalence,
)
from repro.analysis.geo_artifacts import (
    GeoArtifactResult,
    geolocation_artifacts,
)
from repro.analysis.prediction_eval import (
    PredictionEvaluation,
    evaluate_prediction,
)
from repro.analysis.proximity import (
    DiminishingReturnsResult,
    NthClosestDistances,
    diminishing_returns,
    nth_closest_distance_cdf,
)
from repro.cdn.catalog import CdnCatalogEntry, catalog
from repro.errors import MeasurementError
from repro.core.predictor import HistoryBasedPredictor, PredictorConfig
from repro.measurement.validate import QuarantineLog
from repro.simulation.campaign import CampaignConfig, CampaignStats
from repro.simulation.dataset import StudyDataset
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.telemetry import (
    RunContext,
    Telemetry,
    TelemetrySnapshot,
    config_digest,
    get_logger,
)

_log = get_logger("study")


class AnycastStudy:
    """One full reproduction run of the paper's measurement study."""

    def __init__(
        self,
        config: Optional[ScenarioConfig] = None,
        campaign: Optional[CampaignConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._config = config or ScenarioConfig()
        self._campaign_config = campaign or CampaignConfig()
        workers = self._campaign_config.workers
        if workers is None:
            workers = self._config.workers
        self.telemetry = telemetry or Telemetry(
            RunContext(
                seed=self._config.seed,
                engine=self._campaign_config.engine or self._config.engine,
                workers=workers,
                config_hash=config_digest(self._config),
            )
        )
        self._scenario: Optional[Scenario] = None
        self._dataset: Optional[StudyDataset] = None
        self._campaign_stats: Optional[CampaignStats] = None
        self._quarantine: Optional[QuarantineLog] = None

    # ------------------------------------------------------------------
    # Expensive, cached stages
    # ------------------------------------------------------------------

    @property
    def scenario(self) -> Scenario:
        """The built environment (constructed on first use)."""
        if self._scenario is None:
            with self.telemetry.span("scenario_build"):
                self._scenario = Scenario.build(self._config)
            _log.info(
                "scenario built",
                extra={
                    "clients": len(self._scenario.clients),
                    "frontends": len(self._scenario.network.frontends),
                },
            )
        return self._scenario

    @property
    def dataset(self) -> StudyDataset:
        """The campaign output (run on first use).

        Honors the configured worker count (``CampaignConfig.workers``,
        falling back to ``ScenarioConfig.workers``) — sharded parallel
        runs produce bit-identical datasets — and the configured
        measurement engine (``CampaignConfig.engine``, falling back to
        ``ScenarioConfig.engine``): ``"vectorized"`` synthesizes each
        (client, day) beacon block as numpy batches, several times
        faster than the scalar ``"reference"`` oracle and statistically
        equivalent to it.
        """
        if self._dataset is None:
            runner = ParallelCampaignRunner(
                self.scenario, self._campaign_config, telemetry=self.telemetry
            )
            self._dataset = runner.run()
            self._campaign_stats = runner.stats
            self._quarantine = runner.quarantine
        return self._dataset

    @property
    def campaign_stats(self) -> CampaignStats:
        """Instrumentation from the campaign (runs it on first use)."""
        self.dataset
        assert self._campaign_stats is not None
        return self._campaign_stats

    @property
    def quarantine(self) -> QuarantineLog:
        """The campaign's quarantine log (runs the campaign on first use).

        Empty for a clean run; non-empty exactly when the validation
        gate rejected or repaired records (dirty-data faults, or a
        workload that organically produced invalid records).
        """
        self.dataset
        assert self._quarantine is not None
        return self._quarantine

    def telemetry_snapshot(self) -> TelemetrySnapshot:
        """Freeze the study's telemetry (shard-merged) for export."""
        return self.telemetry.snapshot()

    # ------------------------------------------------------------------
    # Figures
    # ------------------------------------------------------------------

    def fig1_diminishing_returns(
        self, candidate_sizes: Tuple[int, ...] = (1, 3, 5, 7, 9)
    ) -> DiminishingReturnsResult:
        """Fig 1: min latency to nearest-N front-ends per /24."""
        scenario = self.scenario
        return diminishing_returns(
            self.dataset,
            scenario.network.frontends,
            scenario.geolocation,
            candidate_sizes,
        )

    def fig2_client_distance(self) -> NthClosestDistances:
        """Fig 2: distance from volume-weighted clients to Nth-closest
        front-end."""
        scenario = self.scenario
        return nth_closest_distance_cdf(
            scenario.clients,
            scenario.network.frontends,
            scenario.geolocation,
        )

    def fig3_anycast_penalty(self) -> AnycastPenaltyResult:
        """Fig 3: CCDF of anycast minus best measured unicast."""
        return anycast_penalty_ccdf(self.dataset)

    def fig4_anycast_distance(self, day: int = 0) -> AnycastDistanceResult:
        """Fig 4: distance to the anycast front-end, one production day."""
        scenario = self.scenario
        return anycast_distance_cdf(
            self.dataset,
            scenario.network.frontends,
            scenario.geolocation,
            day=day,
        )

    def fig5_poor_path_prevalence(self) -> PoorPathPrevalence:
        """Fig 5: daily fraction of /24s with a better unicast option."""
        return poor_path_prevalence(self.dataset)

    def fig6_poor_path_duration(self) -> PoorPathDuration:
        """Fig 6: persistence of poor paths over the month."""
        return poor_path_duration(self.dataset)

    def fig7_frontend_affinity(self, num_days: int = 7) -> AffinityResult:
        """Fig 7: cumulative fraction of clients changing front-ends.

        The window is clamped to the campaign length, so short test
        studies still produce the figure.
        """
        num_days = min(num_days, self.dataset.calendar.num_days)
        return frontend_affinity(self.dataset, start_day=0, num_days=num_days)

    def fig8_switch_distance(self) -> SwitchDistanceResult:
        """Fig 8: distance change when the front-end changes."""
        scenario = self.scenario
        return switch_distance_cdf(
            self.dataset,
            scenario.network.frontends,
            scenario.geolocation,
        )

    def fig9_prediction(
        self, predictor_config: Optional[PredictorConfig] = None
    ) -> PredictionEvaluation:
        """Fig 9: improvement from prediction-driven DNS redirection."""
        predictor = HistoryBasedPredictor(predictor_config)
        return evaluate_prediction(self.dataset, predictor)

    def ldns_proximity(self) -> LdnsProximityResult:
        """§3.3's premise: how close are clients to their LDNS?"""
        scenario = self.scenario
        return ldns_proximity(scenario.clients, scenario.ldns_directory)

    def daily_switch_rate(self, day: int = 0) -> float:
        """§5's K-root comparison: single-day front-end switch rate."""
        return daily_switch_rate(self.dataset, day)

    def footnote1_geo_artifacts(
        self, day: int = 0, threshold_km: float = 3000.0
    ) -> GeoArtifactResult:
        """Footnote 1: geolocation-error share of the distance tail."""
        scenario = self.scenario
        return geolocation_artifacts(
            self.dataset,
            scenario.network.frontends,
            scenario.geolocation,
            day=day,
            threshold_km=threshold_km,
        )

    def cdn_size_table(self) -> Tuple[CdnCatalogEntry, ...]:
        """§4's CDN deployment-size comparison, with this deployment's
        actual front-end count substituted for Bing's."""
        return catalog(
            include_bing=True,
            bing_locations=len(self.scenario.network.frontends),
        )

    # ------------------------------------------------------------------

    def full_report(self) -> str:
        """All figures plus the side analyses — EXPERIMENTS.md's raw
        material."""
        # Materialize the expensive stages before the analysis span so
        # the campaign's own phase tree does not nest under "analysis".
        self.dataset
        producers = (
            ("fig1", lambda: self.fig1_diminishing_returns().format()),
            ("fig2", lambda: self.fig2_client_distance().format()),
            ("fig3", lambda: self.fig3_anycast_penalty().format()),
            ("fig4", lambda: self.fig4_anycast_distance().format()),
            ("fig5", lambda: self.fig5_poor_path_prevalence().format()),
            ("fig6", lambda: self.fig6_poor_path_duration().format()),
            ("fig7", lambda: self.fig7_frontend_affinity().format()),
            ("fig8", lambda: self.fig8_switch_distance().format()),
            ("fig9", lambda: self.fig9_prediction().format()),
            ("ldns_proximity", lambda: self.ldns_proximity().format()),
            (
                "geo_artifacts",
                lambda: self.footnote1_geo_artifacts().format(),
            ),
            (
                "tcp_disruption",
                lambda: format_disruption_table(
                    tcp_disruption(self.dataset)
                ),
            ),
            (
                "switch_rate",
                lambda: (
                    "§5 — single-day front-end switch rate: "
                    f"{self.daily_switch_rate(0):.1%} "
                    "(roots were 1.1-4.7% [20, 33])"
                ),
            ),
        )
        sections = []
        with self.telemetry.span("analysis"):
            for name, produce in producers:
                with self.telemetry.span(name):
                    try:
                        sections.append(produce())
                    except MeasurementError as error:
                        # Bounded (sketch-mode) campaigns trade per-client
                        # passive rows and raw diff samples for flat
                        # memory; figures that need them are skipped
                        # rather than failing the whole report.
                        sections.append(
                            f"{name} — unavailable in bounded sketch mode: "
                            f"{error}"
                        )
        table = ["§4 — CDN deployment sizes"]
        for entry in self.cdn_size_table():
            marker = " (anycast)" if entry.is_anycast else ""
            table.append(f"  {entry.name:24s} {entry.locations:5d}{marker}")
        sections.append("\n".join(table))
        return "\n\n".join(sections)
