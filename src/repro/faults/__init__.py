"""Fault injection and resilient-execution primitives.

Degraded and partial measurement is the normal operating mode of a
production anycast pipeline — front-ends drain, routes flap, log
shipments go missing (§6 of the paper; *Anycast Performance in Context*
treats partial data as the default case).  This package supplies the
chaos side of that story for the simulated pipeline:

* :class:`FaultPlan` / :class:`FaultSpec` / :class:`FaultKind` — a
  deterministic, seed-derived schedule of worker crashes, hangs,
  transient exceptions, corrupted shard payloads, and merge failures;
* :class:`CompiledFaultPlan` — the plan resolved to ``(shard, attempt)``
  firing points, identical across engines and worker counts;
* :class:`WorkerFaultInjector` and the ``Injected*Error`` family — the
  live injection sites the campaign runners call into.

The resilient executor that rides through these faults (retries with
backoff, shard timeouts, checkpoint resume, graceful degradation) lives
in :mod:`repro.simulation.parallel`.
"""

from repro.faults.inject import (
    InjectedCrashError,
    InjectedFaultError,
    InjectedMergeError,
    InjectedTransientError,
    WorkerFaultInjector,
    corrupt_payload,
)
from repro.faults.plan import (
    DEFAULT_HANG_SECONDS,
    CompiledFaultPlan,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "CompiledFaultPlan",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedFaultError",
    "InjectedMergeError",
    "InjectedTransientError",
    "WorkerFaultInjector",
    "corrupt_payload",
]
