"""Ablation — front-end withdrawal and the §2 overload cascade.

Not a paper figure, but a direct quantification of §2's warning that
"simply withdrawing the route to take that front-end offline can lead to
cascading overloading of nearby front-ends."  Sweeps the provisioning
headroom and reports how far the cascade spreads when the busiest
front-end is withdrawn.
"""

import pytest

from conftest import write_report

from repro.cdn.failover import WithdrawalSimulator

HEADROOMS = (1.1, 1.5, 2.5, 6.0)


@pytest.fixture(scope="module")
def sweep(quick_study):
    scenario = quick_study.scenario
    rows = []
    for headroom in HEADROOMS:
        simulator = WithdrawalSimulator(
            scenario.topology,
            scenario.deployment,
            scenario.clients,
            headroom=headroom,
        )
        baseline = simulator.baseline_loads
        victim = max(baseline, key=baseline.get)
        result = simulator.cascade([victim], max_rounds=8)
        rows.append((headroom, victim, result))
    return rows


def test_ablation_failover(benchmark, quick_study, sweep):
    scenario = quick_study.scenario
    simulator = WithdrawalSimulator(
        scenario.topology, scenario.deployment, scenario.clients
    )
    victim = max(simulator.baseline_loads, key=simulator.baseline_loads.get)
    benchmark(simulator.loads_after_withdrawal, [victim])

    lines = ["Ablation — withdrawal cascade vs provisioning headroom"]
    for headroom, victim, result in sweep:
        status = "stable" if result.stable else "unbounded"
        lines.append(
            f"  headroom {headroom:4.1f}x: withdrew {victim}; "
            f"{len(result.final_withdrawn)} front-ends ended offline "
            f"({status})"
        )
    write_report("ablation_failover", "\n".join(lines))

    offline = {headroom: len(r.final_withdrawn) for headroom, _, r in sweep}
    # More headroom can only shrink (or hold) the cascade.
    assert offline[1.1] >= offline[1.5] >= offline[2.5] >= offline[6.0]
    # Tight provisioning cascades beyond the initial withdrawal.
    assert offline[1.1] > 1
