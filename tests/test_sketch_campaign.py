"""Campaign-level sketch mode: shard parity, chaos, figure tolerance.

The constant-memory mode is only usable if it keeps the guarantees the
exact pipeline already has: serial == sharded bit-for-bit (even with the
bucket cap binding), fault-injected runs recover to the clean digest,
checkpoints resume, and the headline figures stay within the sketch's
error tolerance of the exact-mode answers.
"""

import pytest

from repro.analysis.anycast_perf import anycast_penalty_ccdf
from repro.analysis.poor_paths import poor_path_prevalence
from repro.analysis.prediction_eval import evaluate_prediction
from repro.clients.population import ClientPopulationConfig
from repro.clients.workload import WorkloadConfig
from repro.core.predictor import HistoryBasedPredictor
from repro.faults import FaultPlan
from repro.simulation.campaign import (
    _MAX_BLOCK_BEACONS,
    CampaignConfig,
    CampaignRunner,
)
from repro.simulation.clock import SimulationCalendar
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig

#: Sketch config whose bucket cap genuinely binds on the smoke scenario
#: (the parity claims below are vacuous if no sketch ever compresses).
CAPPED = dict(engine="vectorized", sketch_threshold=4, sketch_max_buckets=8)


@pytest.fixture(scope="module")
def sketch_scenario() -> Scenario:
    return Scenario.build(ScenarioConfig.smoke_scale(seed=11))


@pytest.fixture(scope="module")
def serial_capped(sketch_scenario):
    runner = CampaignRunner(sketch_scenario, CampaignConfig(**CAPPED))
    dataset = runner.run()
    return runner, dataset


def test_cap_binds_and_telemetry_counts_halvings(serial_capped):
    runner, dataset = serial_capped
    _, sketched, _, _, halvings = dataset.ecs_aggregates.sketch_stats()
    assert sketched > 0
    assert halvings > 0  # the 8-bucket cap forced compressions
    counters = runner.telemetry.snapshot().counters
    assert counters["sketch.compressions_total"] > 0


def test_serial_matches_sharded_with_binding_cap(
    sketch_scenario, serial_capped
):
    _, serial_dataset = serial_capped
    sharded = ParallelCampaignRunner(
        sketch_scenario, CampaignConfig(**CAPPED), workers=2
    ).run()
    assert sharded.digest() == serial_dataset.digest()


def test_chaos_retry_is_bit_identical_in_sketch_mode(
    sketch_scenario, serial_capped
):
    _, serial_dataset = serial_capped
    runner = ParallelCampaignRunner(
        sketch_scenario,
        CampaignConfig(
            fault_plan=FaultPlan.from_spec("exception:1"),
            max_retries=3,
            retry_backoff_seconds=0.0,
            **CAPPED,
        ),
        workers=2,
    )
    dataset = runner.run()
    assert dataset.digest() == serial_dataset.digest()
    counters = runner.telemetry.snapshot().counters
    assert counters["faults.injected_total"] == 1


def test_dirty_data_sketch_run_is_shard_invariant(sketch_scenario):
    dirty = CampaignConfig(
        fault_plan=FaultPlan.from_spec(
            "record-corrupt:3,record-clock-skew:2"
        ),
        validation="lenient",
        **CAPPED,
    )
    serial = CampaignRunner(sketch_scenario, dirty).run()
    sharded = ParallelCampaignRunner(
        sketch_scenario, dirty, workers=2
    ).run()
    assert sharded.digest() == serial.digest()


def test_checkpoint_resume_in_sketch_mode(
    sketch_scenario, serial_capped, tmp_path
):
    _, serial_dataset = serial_capped
    checkpoint_dir = str(tmp_path / "ckpt")
    first = ParallelCampaignRunner(
        sketch_scenario,
        CampaignConfig(checkpoint_dir=checkpoint_dir, **CAPPED),
        workers=2,
    )
    first.run()
    resumed = ParallelCampaignRunner(
        sketch_scenario,
        CampaignConfig(
            checkpoint_dir=checkpoint_dir, resume=True, **CAPPED
        ),
        workers=2,
    )
    dataset = resumed.run()
    counters = resumed.telemetry.snapshot().counters
    assert counters["checkpoint.loaded_total"] == 2  # no shard re-ran
    assert dataset.digest() == serial_dataset.digest()


class TestChunkedEngine:
    """Client-days larger than one beacon block stay deterministic."""

    @pytest.fixture(scope="class")
    def heavy_scenario(self) -> Scenario:
        # Two /24s with enough daily volume that at least one client-day
        # exceeds _MAX_BLOCK_BEACONS, forcing the chunked path.
        return Scenario.build(
            ScenarioConfig(
                seed=5,
                population=ClientPopulationConfig(
                    prefix_count=2,
                    volume_median_queries=40_000.0,
                ),
                workload=WorkloadConfig(max_beacons_per_day=50_000),
                calendar=SimulationCalendar(num_days=1),
            )
        )

    def test_chunked_run_is_shard_invariant(self, heavy_scenario):
        config = CampaignConfig(
            engine="vectorized", sketch_threshold=32, sketch_max_buckets=64
        )
        serial = CampaignRunner(heavy_scenario, config).run()
        # With 2 client-days, a total beyond 2 blocks means at least one
        # client-day actually chunked.
        assert serial.beacon_count > 2 * _MAX_BLOCK_BEACONS
        sharded = ParallelCampaignRunner(
            heavy_scenario, config, workers=2
        ).run()
        assert sharded.digest() == serial.digest()


class TestFigureTolerance:
    """Figs 3, 5, and 9 from a sketch campaign track the exact answers."""

    @pytest.fixture(scope="class")
    def figure_datasets(self, sketch_scenario):
        exact = CampaignRunner(
            sketch_scenario, CampaignConfig(engine="vectorized")
        ).run()
        # Production accuracy: 1% sketches, default cap — the config the
        # README documents for large campaigns.
        sketched = CampaignRunner(
            sketch_scenario,
            CampaignConfig(engine="vectorized", sketch_threshold=32),
        ).run()
        return exact, sketched

    def test_fig3_penalty_fractions(self, figure_datasets):
        exact, sketched = figure_datasets
        reference = anycast_penalty_ccdf(exact).fraction_slower
        bounded = anycast_penalty_ccdf(sketched).fraction_slower
        for region in ("world", "europe"):
            for threshold in (10.0, 25.0, 100.0):
                assert reference[region][threshold] == pytest.approx(
                    bounded[region][threshold], abs=0.05
                )

    def test_fig5_poor_path_prevalence(self, figure_datasets):
        exact, sketched = figure_datasets
        reference = poor_path_prevalence(exact)
        bounded = poor_path_prevalence(sketched)
        for threshold in reference.thresholds:
            assert reference.mean_fraction(threshold) == pytest.approx(
                bounded.mean_fraction(threshold), abs=0.05
            )

    def test_fig9_prediction(self, figure_datasets):
        exact, sketched = figure_datasets
        reference = evaluate_prediction(exact, HistoryBasedPredictor())
        bounded = evaluate_prediction(sketched, HistoryBasedPredictor())
        for ref in reference.summaries:
            bnd = bounded.summary(ref.grouping, ref.percentile)
            assert ref.fraction_improved == pytest.approx(
                bnd.fraction_improved, abs=0.1
            )
            assert ref.fraction_worse == pytest.approx(
                bnd.fraction_worse, abs=0.1
            )
