"""BGP route computation with Gao–Rexford policies.

This module computes, for every AS, the best route to an announced prefix.
It models what the paper depends on (§2, §5):

* **Export rules** (valley-free): routes learned from a customer are
  exported to everyone; routes learned from a peer or provider are exported
  only to customers.
* **Selection**: prefer customer-learned over peer-learned over
  provider-learned routes (local preference), then shortest AS path, then
  lowest next-hop ASN (a deterministic stand-in for router-id tie-breaking).
* **Origin metro restriction**: an announcement can be restricted to a
  subset of the origin's PoPs — this is how §3.1's unicast configuration
  ("only the routers at the closest peering point announce the prefix") is
  expressed, and how anycast announces everywhere.

The computation is control-plane only; the data-plane walk (which
interconnect metro traffic actually crosses, per hot-/cold-potato policy)
is in :mod:`repro.net.anycast`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import RoutingError
from repro.net.ip import IPv4Prefix
from repro.net.topology import Relationship, Topology


@dataclass(frozen=True)
class Announcement:
    """A prefix announced by an origin AS from (a subset of) its PoPs.

    Attributes:
        prefix: The announced prefix.
        origin_asn: The originating AS.
        origin_metros: Metros at which the origin's routers announce to
            neighbors; ``None`` means every PoP of the origin (anycast).
    """

    prefix: IPv4Prefix
    origin_asn: int
    origin_metros: Optional[FrozenSet[str]] = None

    def announced_metros(self, topology: Topology) -> FrozenSet[str]:
        """Resolve the effective announcement metros against the topology."""
        origin = topology.get(self.origin_asn)
        if self.origin_metros is None:
            return origin.pop_metros
        unknown = self.origin_metros - origin.pop_metros
        if unknown:
            raise RoutingError(
                f"announcement of {self.prefix} names metros "
                f"{sorted(unknown)} where AS{self.origin_asn} has no PoP"
            )
        if not self.origin_metros:
            raise RoutingError(
                f"announcement of {self.prefix} has an empty metro set"
            )
        return self.origin_metros


#: Local-preference order: lower is more preferred.
_RELATIONSHIP_PREFERENCE = {
    Relationship.CUSTOMER: 0,
    Relationship.PEER: 1,
    Relationship.PROVIDER: 2,
}


def relationship_preference(relationship: Relationship) -> int:
    """Gao–Rexford local preference rank (lower is better)."""
    return _RELATIONSHIP_PREFERENCE[relationship]


@dataclass(frozen=True)
class RouteEntry:
    """One AS's best route to an announced prefix.

    Attributes:
        asn: The AS holding this route.
        prefix: The destination prefix.
        as_path: AS path from this AS to the origin, inclusive on both ends
            (so ``as_path[0] == asn`` and ``as_path[-1]`` is the origin).
        learned_from: Relationship of the neighbor the route was learned
            from, or ``None`` at the origin itself.
        handoff_metros: Interconnect metros where this AS can hand traffic
            to the next hop for this route (empty at the origin).
    """

    asn: int
    prefix: IPv4Prefix
    as_path: Tuple[int, ...]
    learned_from: Optional[Relationship]
    handoff_metros: FrozenSet[str]

    @property
    def next_hop(self) -> Optional[int]:
        """The next-hop ASN, or ``None`` at the origin."""
        return self.as_path[1] if len(self.as_path) > 1 else None

    @property
    def is_origin(self) -> bool:
        """Whether this entry belongs to the originating AS."""
        return len(self.as_path) == 1

    def preference_key(self) -> Tuple[int, int, int]:
        """Sort key implementing BGP selection (lower wins)."""
        rank = (
            -1
            if self.learned_from is None
            else relationship_preference(self.learned_from)
        )
        next_hop = self.next_hop if self.next_hop is not None else -1
        return (rank, len(self.as_path), next_hop)


class BgpRib(object):
    """Best routes to one announcement, indexed by ASN."""

    def __init__(self, announcement: Announcement, routes: Dict[int, RouteEntry]) -> None:
        self._announcement = announcement
        self._routes = dict(routes)

    @property
    def announcement(self) -> Announcement:
        """The announcement these routes answer."""
        return self._announcement

    @property
    def prefix(self) -> IPv4Prefix:
        """The announced prefix."""
        return self._announcement.prefix

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, asn: int) -> bool:
        return asn in self._routes

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(self._routes.values())

    def get(self, asn: int) -> RouteEntry:
        """Best route at ``asn``.

        Raises:
            RoutingError: if the AS has no route to the prefix.
        """
        try:
            return self._routes[asn]
        except KeyError:
            raise RoutingError(
                f"AS{asn} has no route to {self.prefix}"
            ) from None

    def has_route(self, asn: int) -> bool:
        """Whether the AS has any route to the prefix."""
        return asn in self._routes

    def as_path(self, asn: int) -> Tuple[int, ...]:
        """AS path from ``asn`` to the origin."""
        return self.get(asn).as_path


class RouteComputation:
    """Computes :class:`BgpRib` tables over a fixed topology.

    The solver runs the classic three-phase valley-free propagation:

    1. *Customer routes* flow upward (customer → provider) from the origin.
    2. *Peer routes* cross one peering link from any AS whose best route is
       exportable to peers (its own prefix, or customer-learned).
    3. *Provider routes* flow downward (provider → customer) from any AS
       with a route.

    Within a phase, candidate routes replace existing ones only when they
    win the selection comparison, so the fixed point is the per-AS best
    route under Gao–Rexford preferences.
    """

    def __init__(self, topology: Topology) -> None:
        self._topology = topology

    @property
    def topology(self) -> Topology:
        """The topology routes are computed over."""
        return self._topology

    def compute(self, announcement: Announcement) -> BgpRib:
        """Compute every AS's best route to ``announcement``."""
        topology = self._topology
        origin_asn = announcement.origin_asn
        origin_metros = announcement.announced_metros(topology)

        routes: Dict[int, RouteEntry] = {
            origin_asn: RouteEntry(
                asn=origin_asn,
                prefix=announcement.prefix,
                as_path=(origin_asn,),
                learned_from=None,
                handoff_metros=frozenset(),
            )
        }

        def candidate_from(
            exporter: RouteEntry, importer_asn: int, relationship: Relationship
        ) -> Optional[RouteEntry]:
            """Build the route ``importer_asn`` would learn from ``exporter``."""
            if importer_asn in exporter.as_path:
                return None  # AS-path loop prevention
            neighbor = topology.neighbor(importer_asn, exporter.asn)
            metros = neighbor.metros
            if exporter.is_origin:
                metros = metros & origin_metros
                if not metros:
                    return None  # origin does not announce at any shared metro
            return RouteEntry(
                asn=importer_asn,
                prefix=announcement.prefix,
                as_path=(importer_asn,) + exporter.as_path,
                learned_from=relationship,
                handoff_metros=metros,
            )

        def try_install(candidate: Optional[RouteEntry]) -> bool:
            if candidate is None:
                return False
            current = routes.get(candidate.asn)
            if current is None or candidate.preference_key() < current.preference_key():
                routes[candidate.asn] = candidate
                return True
            return False

        # Phase 1: customer routes propagate upward (to providers).
        changed = True
        while changed:
            changed = False
            for entry in list(routes.values()):
                exportable = entry.learned_from is None or (
                    entry.learned_from is Relationship.CUSTOMER
                )
                if not exportable:
                    continue
                for neighbor in topology.neighbors(entry.asn):
                    if neighbor.relationship is not Relationship.PROVIDER:
                        continue
                    # From the provider's perspective, entry.asn is a customer.
                    if try_install(
                        candidate_from(entry, neighbor.asn, Relationship.CUSTOMER)
                    ):
                        changed = True

        # Phase 2: one hop across peering links.  Collect candidates against
        # the phase-1 fixed point so iteration order cannot matter.
        peer_candidates: List[RouteEntry] = []
        for entry in routes.values():
            exportable = entry.learned_from is None or (
                entry.learned_from is Relationship.CUSTOMER
            )
            if not exportable:
                continue
            for neighbor in topology.neighbors(entry.asn):
                if neighbor.relationship is not Relationship.PEER:
                    continue
                candidate = candidate_from(entry, neighbor.asn, Relationship.PEER)
                if candidate is not None:
                    peer_candidates.append(candidate)
        for candidate in peer_candidates:
            try_install(candidate)

        # Phase 3: routes propagate downward (to customers).
        changed = True
        while changed:
            changed = False
            for entry in list(routes.values()):
                for neighbor in topology.neighbors(entry.asn):
                    if neighbor.relationship is not Relationship.CUSTOMER:
                        continue
                    # From the customer's perspective, entry.asn is a provider.
                    if try_install(
                        candidate_from(entry, neighbor.asn, Relationship.PROVIDER)
                    ):
                        changed = True

        return BgpRib(announcement, routes)
