"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses are grouped by
subsystem rather than by failure mode; the message carries the specifics.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A scenario, deployment, or model was configured inconsistently."""


class TopologyError(ReproError):
    """The AS-level topology is malformed (unknown AS, disconnected, ...)."""


class RoutingError(ReproError):
    """Route computation failed (no route, bad announcement, ...)."""


class AddressError(ReproError):
    """An IPv4 address or prefix is malformed or out of allocatable space."""


class GeoError(ReproError):
    """Geographic lookup failed (unknown metro, bad coordinates, ...)."""


class MeasurementError(ReproError):
    """A measurement campaign or log operation was invalid."""


class ValidationError(MeasurementError):
    """A record failed schema validation under the ``strict`` policy.

    Attributes:
        reason: Machine-readable reason code (e.g. ``"negative-rtt"``).
    """

    def __init__(self, message: str, reason: str = "invalid") -> None:
        super().__init__(message)
        self.reason = reason


class StorageError(ReproError):
    """A framed segment file is damaged beyond what strict reading allows."""


class TelemetryError(ReproError):
    """A telemetry registry, span, or snapshot operation was invalid."""


class FaultError(ReproError):
    """Base class for fault-injection and resilience failures."""


class ShardFailureError(FaultError):
    """A campaign shard exhausted its retry budget.

    Raised by the resilient parallel executor when a shard keeps failing
    and the campaign was not configured with ``allow_partial``.

    Attributes:
        shard_index: Index of the failed shard.
        attempts: Number of attempts made (initial run plus retries).
        client_range: Half-open ``(start, stop)`` client index range the
            shard covered.
    """

    def __init__(
        self,
        message: str,
        shard_index: int,
        attempts: int,
        client_range: "tuple[int, int]",
    ) -> None:
        super().__init__(message)
        self.shard_index = shard_index
        self.attempts = attempts
        self.client_range = client_range


class CheckpointError(ReproError):
    """A shard checkpoint failed its integrity check on load."""


class AnalysisError(ReproError):
    """An analysis was asked of data that cannot support it."""


class PredictionError(ReproError):
    """The prediction scheme was configured or invoked incorrectly."""
