"""Catalog of public CDN deployment sizes (§4 of the paper).

The paper compares the measured CDN against 21 CDNs and content providers
with publicly available location data [3], observing that >100-location
deployments are the exception: ignoring the large Chinese deployments and
the two ~1000-location outliers (Google, Akamai), the remaining CDNs run
between 17 and 161 locations, and the Bing CDN sits at the Level3/MaxCDN
scale.  This table embeds the counts the paper cites (exact where the text
gives them, representative mid-range values where it gives only the range)
so the §4 comparison regenerates from code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class CdnCatalogEntry:
    """One CDN's public deployment footprint.

    Attributes:
        name: CDN or content-provider name.
        locations: Number of front-end server locations.
        is_anycast: Whether the CDN is known to use anycast redirection.
        is_outlier: Whether the paper classes it as an extreme outlier
            (China-centric >100-location or ~1000-location deployments).
        note: Source note (which part of §4 the number comes from).
    """

    name: str
    locations: int
    is_anycast: bool = False
    is_outlier: bool = False
    note: str = ""


#: Entries whose counts §4 states explicitly.
_EXPLICIT: Tuple[CdnCatalogEntry, ...] = (
    CdnCatalogEntry("Google", 1000, is_outlier=True, note=">1000 locations [16]"),
    CdnCatalogEntry("Akamai", 1000, is_outlier=True, note=">1000 locations [17]"),
    CdnCatalogEntry(
        "ChinaNetCenter", 110, is_outlier=True, note=">100 locations in China"
    ),
    CdnCatalogEntry(
        "ChinaCache", 105, is_outlier=True, note=">100 locations in China"
    ),
    CdnCatalogEntry("CDNetworks", 161, note="largest non-outlier"),
    CdnCatalogEntry("SkyparkCDN", 119, note="second-largest non-outlier"),
    CdnCatalogEntry("Level3", 62, note="largest of the remaining 17"),
    CdnCatalogEntry("CloudFlare", 43, is_anycast=True, note="anycast CDN"),
    CdnCatalogEntry("CacheFly", 41, is_anycast=True, note="anycast CDN"),
    CdnCatalogEntry("Amazon CloudFront", 37, note="well-known smaller CDN"),
    CdnCatalogEntry("EdgeCast", 31, is_anycast=True, note="anycast CDN"),
    CdnCatalogEntry("CDNify", 17, note="smallest of the remaining 17"),
)

#: Remaining catalog rows: §4 says 17 CDNs fall between CDNify (17) and
#: Level3 (62); these representative entries fill that range so the size
#: distribution has the paper's shape.
_RANGE_FILL: Tuple[CdnCatalogEntry, ...] = (
    CdnCatalogEntry("MaxCDN", 57, note="'most similar to Level3 and MaxCDN'"),
    CdnCatalogEntry("Limelight", 52, note="range fill (17..62)"),
    CdnCatalogEntry("Fastly", 36, note="range fill (17..62)"),
    CdnCatalogEntry("Highwinds", 30, note="range fill (17..62)"),
    CdnCatalogEntry("Internap", 28, note="range fill (17..62)"),
    CdnCatalogEntry("KeyCDN", 25, note="range fill (17..62)"),
    CdnCatalogEntry("Incapsula", 22, note="range fill (17..62)"),
    CdnCatalogEntry("CDN77", 20, note="range fill (17..62)"),
    CdnCatalogEntry("OnApp", 19, note="range fill (17..62)"),
)


def catalog(include_bing: bool = True, bing_locations: int = 64) -> Tuple[CdnCatalogEntry, ...]:
    """The full §4 catalog, optionally including the measured CDN itself.

    Args:
        include_bing: Append the measured (Bing) CDN entry.
        bing_locations: Location count of the measured deployment — pass
            the actual deployment's front-end count to keep the comparison
            honest with the simulated CDN.
    """
    rows = _EXPLICIT + _RANGE_FILL
    if include_bing:
        rows = rows + (
            CdnCatalogEntry(
                "Bing CDN (measured)",
                bing_locations,
                is_anycast=True,
                note="the paper's subject; Level3/MaxCDN scale",
            ),
        )
    return tuple(sorted(rows, key=lambda e: (-e.locations, e.name)))


def non_outliers(include_bing: bool = True, bing_locations: int = 64) -> Tuple[CdnCatalogEntry, ...]:
    """Catalog restricted to the 17-CDN non-outlier population (+ Bing)."""
    return tuple(
        e
        for e in catalog(include_bing, bing_locations)
        if not e.is_outlier and e.locations <= 161
    )


def anycast_cdns(include_bing: bool = True, bing_locations: int = 64) -> Tuple[CdnCatalogEntry, ...]:
    """The anycast-based CDNs in the catalog (§2 names them)."""
    return tuple(
        e for e in catalog(include_bing, bing_locations) if e.is_anycast
    )
