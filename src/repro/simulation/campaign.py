"""The measurement campaign: a month of beacons and production traffic.

This is the simulated counterpart of §3.2's data collection.  For every
day and client /24:

* production queries are served over the client's current anycast route
  (churn state) and logged passively (front-end counts — §3.2.1);
* a volume-proportional number of beacon sessions run, each measuring the
  anycast target plus three unicast front-ends (§3.2.2–3.3); the three
  log streams flow through :class:`repro.measurement.backend.BeaconBackend`
  whose joined rows feed the ECS- and LDNS-grouped aggregates;
* per-session, the anycast minus best-unicast difference is recorded for
  Fig 3.

Latencies come from cached per-path baselines plus per-measurement jitter
and any active poor-path episode inflation on the anycast route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.dns.authoritative import ANYCAST_TARGET
from repro.geo.regions import region_of_point
from repro.measurement.aggregate import GroupedDailyAggregates, RequestDiffLog
from repro.measurement.backend import BeaconBackend
from repro.measurement.beacon import BeaconConfig, BeaconRunner, BeaconTargetSelector
from repro.measurement.logs import HttpLogEntry, JoinedMeasurement, PassiveLog
from repro.rand import derive_rng
from repro.simulation.dataset import StudyDataset
from repro.simulation.episodes import EpisodeScope
from repro.simulation.scenario import Scenario


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign-level knobs.

    Attributes:
        beacon: Beacon methodology parameters.
        progress_callback: Optional per-day hook ``f(day, num_days)`` for
            long runs (the library never prints on its own).
    """

    beacon: BeaconConfig = BeaconConfig()
    progress_callback: Optional[Callable[[int, int], None]] = None


class _PathCache:
    """Per-client cached (frontend_id, baseline_rtt_ms) lookups.

    Baselines include the path's *persistent quality offset* (see
    :meth:`repro.latency.model.LatencyModel.sample_static_offset_ms`),
    drawn from a seed-derived RNG so it is stable for the whole study.
    """

    def __init__(self, scenario: Scenario) -> None:
        self._scenario = scenario
        self._anycast: Dict[Tuple[str, int], Tuple[str, float]] = {}
        self._unicast: Dict[Tuple[str, str], float] = {}

    def _static_offset(self, client_key: str, path_key: str, anycast: bool) -> float:
        scenario = self._scenario
        rng = derive_rng(
            scenario.config.seed, "path-quality", client_key, path_key
        )
        return scenario.latency_model.sample_static_offset_ms(
            rng, anycast=anycast
        )

    def anycast(self, client_key: str, rank: int) -> Tuple[str, float]:
        """Serving front-end and baseline RTT over the anycast route."""
        cached = self._anycast.get((client_key, rank))
        if cached is None:
            scenario = self._scenario
            client = scenario.client_by_key(client_key)
            path = scenario.network.anycast_path(
                client.asn, client.home_metro, client.location, rank
            )
            baseline = scenario.latency_model.baseline_rtt_ms(
                path.path_km,
                path.backbone_km,
                path.as_hops,
                client.access_delay_ms,
            )
            # The anycast path's quality is a property of the client's
            # steady route, keyed by the ingress so a route change also
            # changes path quality.
            baseline += self._static_offset(
                client_key, f"anycast-{path.ingress_metro}", anycast=True
            )
            cached = (path.frontend.frontend_id, baseline)
            self._anycast[(client_key, rank)] = cached
        return cached

    def unicast(self, client_key: str, frontend_id: str) -> float:
        """Baseline RTT to one front-end's unicast prefix."""
        baseline = self._unicast.get((client_key, frontend_id))
        if baseline is None:
            scenario = self._scenario
            client = scenario.client_by_key(client_key)
            path = scenario.network.unicast_path(
                frontend_id, client.asn, client.home_metro, client.location
            )
            baseline = scenario.latency_model.baseline_rtt_ms(
                path.path_km,
                path.backbone_km,
                path.as_hops,
                client.access_delay_ms,
            )
            baseline += self._static_offset(
                client_key, frontend_id, anycast=False
            )
            self._unicast[(client_key, frontend_id)] = baseline
        return baseline


class CampaignRunner:
    """Runs a scenario's full measurement campaign into a dataset."""

    def __init__(
        self, scenario: Scenario, config: Optional[CampaignConfig] = None
    ) -> None:
        self._scenario = scenario
        self._config = config or CampaignConfig()

    def run(self) -> StudyDataset:
        """Execute every day of the calendar and return the dataset."""
        scenario = self._scenario
        cfg = self._config
        calendar = scenario.calendar

        selector = BeaconTargetSelector(
            scenario.network.frontends, scenario.geolocation, cfg.beacon
        )
        runner = BeaconRunner(selector, cfg.beacon)
        paths = _PathCache(scenario)
        churn = scenario.new_churn_model()
        episodes = scenario.new_episode_model()
        workload = scenario.workload_model
        latency = scenario.latency_model

        ecs_aggregates = GroupedDailyAggregates("ecs")
        ldns_aggregates = GroupedDailyAggregates("ldns")
        request_diffs = RequestDiffLog()
        passive = PassiveLog()

        def on_joined(row: JoinedMeasurement) -> None:
            ecs_aggregates.observe(row.day, row.client_key, row.target_id, row.rtt_ms)
            ldns_aggregates.observe(row.day, row.ldns_id, row.target_id, row.rtt_ms)

        backend = BeaconBackend([on_joined])

        rng = derive_rng(scenario.config.seed, "campaign")
        resource_timing = {
            client.key: rng.random() < cfg.beacon.resource_timing_support
            for client in scenario.clients
        }
        # Fig 3 splits out the United States specifically, not all of
        # North America; other clients are labeled by continental region.
        metro_db = scenario.metro_db
        regions = {}
        for client in scenario.clients:
            if metro_db.get(client.home_metro).country == "US":
                regions[client.key] = "united-states"
            else:
                regions[client.key] = str(region_of_point(client.location))

        scenario_seed = scenario.config.seed

        beacon_count = 0
        for day in calendar.days():
            plans = churn.plans_for_day(day)
            inflations = episodes.inflations_for_day(day)
            is_weekend = calendar.is_weekend(day)
            day_start = calendar.seconds_at(day)

            # Per-(client, path) congestion elevation for this day, drawn
            # lazily from a derived RNG so it is stable within the day.
            daily_offsets: Dict[Tuple[str, str], float] = {}

            def path_offset(client_key: str, target_key: str) -> float:
                cache_key = (client_key, target_key)
                offset = daily_offsets.get(cache_key)
                if offset is None:
                    offset_rng = derive_rng(
                        scenario_seed, "daily-variation", day,
                        client_key, target_key,
                    )
                    offset = latency.sample_daily_variation_ms(
                        offset_rng, anycast=target_key == ANYCAST_TARGET
                    )
                    daily_offsets[cache_key] = offset
                return offset

            for client in scenario.clients:
                key = client.key
                plan = plans[key]
                effect = inflations.get(key)
                anycast_inflation = 0.0
                degraded_frontend: Optional[str] = None
                unicast_inflation = 0.0
                if effect is not None:
                    if effect.scope is EpisodeScope.ANYCAST:
                        anycast_inflation = effect.inflation_ms
                    else:
                        candidates = selector.candidates(client.ldns_id)
                        degraded_frontend = candidates[
                            int(effect.selector * len(candidates))
                        ]
                        unicast_inflation = effect.inflation_ms

                queries = workload.daily_queries(client, is_weekend, rng)
                if queries <= 0:
                    continue

                # Passive production traffic: split across the day's routes.
                for rank, fraction in zip(plan.ranks, plan.fractions):
                    frontend_id, _ = paths.anycast(key, rank)
                    count = int(round(queries * fraction))
                    passive.record(day, key, frontend_id, count)

                beacons = workload.daily_beacons(queries, rng)
                client_index = scenario.client_index(key)
                region = regions[key]
                rt_supported = resource_timing[key]

                for _ in range(beacons):
                    session_rank = plan.sample_rank(rng)

                    def serve(target_id: str) -> Tuple[str, float]:
                        if target_id == ANYCAST_TARGET:
                            frontend_id, baseline = paths.anycast(
                                key, session_rank
                            )
                            extra = anycast_inflation
                        else:
                            frontend_id = target_id
                            baseline = paths.unicast(key, target_id)
                            extra = (
                                unicast_inflation
                                if target_id == degraded_frontend
                                else 0.0
                            )
                        extra += path_offset(key, target_id)
                        rtt = (
                            baseline
                            + latency.sample_jitter_ms(rng)
                            + extra
                        )
                        return frontend_id, rtt

                    fetches = runner.run_beacon(
                        ldns_id=client.ldns_id,
                        resource_timing_supported=rt_supported,
                        serve=serve,
                        rng=rng,
                        now=day_start,
                    )
                    beacon_count += 1

                    anycast_rtt: Optional[float] = None
                    best_unicast: Optional[float] = None
                    for fetch in fetches:
                        backend.on_dns(
                            fetch.measurement_id, client.ldns_id, fetch.target_id
                        )
                        backend.on_server(
                            fetch.measurement_id, fetch.serving_frontend_id
                        )
                        backend.on_http(
                            HttpLogEntry(
                                day=day,
                                measurement_id=fetch.measurement_id,
                                client_key=key,
                                rtt_ms=fetch.rtt_ms,
                                used_resource_timing=fetch.used_resource_timing,
                            )
                        )
                        if fetch.target_id == ANYCAST_TARGET:
                            anycast_rtt = fetch.rtt_ms
                        elif best_unicast is None or fetch.rtt_ms < best_unicast:
                            best_unicast = fetch.rtt_ms

                    if anycast_rtt is not None and best_unicast is not None:
                        request_diffs.observe(
                            day, client_index, region, anycast_rtt, best_unicast
                        )

            runner.purge_caches(calendar.seconds_at(day) + 86_400.0)
            if cfg.progress_callback is not None:
                cfg.progress_callback(day, calendar.num_days)

        if backend.pending_count:
            raise ConfigurationError(
                f"{backend.pending_count} measurements never joined — "
                "campaign bookkeeping bug"
            )
        return StudyDataset(
            calendar=calendar,
            clients=scenario.clients,
            ecs_aggregates=ecs_aggregates,
            ldns_aggregates=ldns_aggregates,
            request_diffs=request_diffs,
            passive=passive,
            beacon_count=beacon_count,
            measurement_count=backend.joined_count,
        )
