"""Exact-value tests for the Fig 9 prediction evaluation."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.prediction_eval import ECS, LDNS, evaluate_prediction
from repro.core.predictor import HistoryBasedPredictor, PredictorConfig

from tests.helpers import make_client, make_dataset


def two_day_dataset(day1_anycast, day1_target, volume=10.0):
    """One client; on day 0 the predictor sees anycast=50/fe-a=30 and maps
    the client to fe-a.  Day 1 outcomes are parameterized."""
    client = make_client(1, daily_queries=volume)
    key = client.key
    ecs = [
        (0, key, "anycast", [50.0] * 25),
        (0, key, "fe-a", [30.0] * 25),
        (1, key, "anycast", [day1_anycast] * 25),
        (1, key, "fe-a", [day1_target] * 25),
    ]
    ldns = [
        (0, client.ldns_id, "anycast", [50.0] * 25),
        (0, client.ldns_id, "fe-a", [30.0] * 25),
    ]
    return make_dataset([client], num_days=2, ecs_samples=ecs, ldns_samples=ldns)


class TestEvaluation:
    def test_improvement_counted(self):
        dataset = two_day_dataset(day1_anycast=50.0, day1_target=30.0)
        result = evaluate_prediction(dataset, min_eval_samples=5)
        summary = result.summary(ECS, 50.0)
        assert summary.fraction_improved == pytest.approx(1.0)
        assert summary.fraction_worse == 0.0

    def test_worse_counted(self):
        # The predicted target degraded on the evaluation day.
        dataset = two_day_dataset(day1_anycast=50.0, day1_target=80.0)
        result = evaluate_prediction(dataset, min_eval_samples=5)
        summary = result.summary(ECS, 50.0)
        assert summary.fraction_worse == pytest.approx(1.0)
        assert summary.fraction_improved == 0.0

    def test_anycast_prediction_scores_zero(self):
        client = make_client(1)
        key = client.key
        ecs = [
            (0, key, "anycast", [20.0] * 25),
            (0, key, "fe-a", [30.0] * 25),
            (1, key, "anycast", [20.0] * 25),
        ]
        dataset = make_dataset([client], num_days=2, ecs_samples=ecs)
        result = evaluate_prediction(
            dataset, groupings=(ECS,), min_eval_samples=5
        )
        summary = result.summary(ECS, 50.0)
        assert summary.fraction_unchanged == pytest.approx(1.0)

    def test_ldns_grouping_uses_resolver_decision(self):
        dataset = two_day_dataset(day1_anycast=50.0, day1_target=30.0)
        result = evaluate_prediction(dataset, min_eval_samples=5)
        summary = result.summary(LDNS, 50.0)
        # The LDNS mapping (fe-a) applies to the member /24, which indeed
        # improves on day 1.
        assert summary.fraction_improved == pytest.approx(1.0)

    def test_eval_day_sample_cut_skips_clients(self):
        client = make_client(1)
        key = client.key
        ecs = [
            (0, key, "anycast", [50.0] * 25),
            (0, key, "fe-a", [30.0] * 25),
            (1, key, "anycast", [50.0] * 25),
            (1, key, "fe-a", [30.0] * 2),  # too few to evaluate
        ]
        dataset = make_dataset([client], num_days=2, ecs_samples=ecs)
        with pytest.raises(AnalysisError, match="no client"):
            evaluate_prediction(
                dataset, groupings=(ECS,), min_eval_samples=5
            )

    def test_needs_two_days(self):
        client = make_client(1)
        dataset = make_dataset(
            [client],
            num_days=1,
            ecs_samples=[(0, client.key, "anycast", [10.0] * 25)],
        )
        with pytest.raises(AnalysisError, match=">= 2 days"):
            evaluate_prediction(dataset)

    def test_unknown_grouping_rejected(self):
        dataset = two_day_dataset(50.0, 30.0)
        with pytest.raises(AnalysisError, match="unknown grouping"):
            evaluate_prediction(dataset, groupings=("asn",))

    def test_custom_predictor_respected(self):
        dataset = two_day_dataset(day1_anycast=50.0, day1_target=30.0)
        # A predictor with an impossible sample cut never redirects.
        predictor = HistoryBasedPredictor(PredictorConfig(min_samples=1000))
        result = evaluate_prediction(
            dataset, predictor=predictor, groupings=(ECS,), min_eval_samples=5
        )
        assert result.summary(ECS, 50.0).fraction_unchanged == pytest.approx(1.0)

    def test_format_mentions_lines(self):
        dataset = two_day_dataset(50.0, 30.0)
        text = evaluate_prediction(dataset, min_eval_samples=5).format()
        assert "EDNS-0" in text
        assert "LDNS" in text
