"""Tests for the continental-region classifier."""

import pytest

from repro.geo.coords import GeoPoint
from repro.geo.metros import MetroDatabase
from repro.geo.regions import Region, region_of_point


@pytest.mark.parametrize(
    "code,expected",
    [
        ("nyc", Region.NORTH_AMERICA),
        ("mex", Region.NORTH_AMERICA),
        ("sao", Region.SOUTH_AMERICA),
        ("bue", Region.SOUTH_AMERICA),
        ("lon", Region.EUROPE),
        ("mow", Region.EUROPE),
        ("ist", Region.EUROPE),
        ("jnb", Region.AFRICA),
        ("cai", Region.AFRICA),
        ("tyo", Region.ASIA),
        ("sin", Region.ASIA),
        ("dxb", Region.ASIA),
        ("del", Region.ASIA),
        ("syd", Region.OCEANIA),
        ("akl", Region.OCEANIA),
    ],
)
def test_known_metros_classify_to_their_region(code, expected):
    metro = MetroDatabase().get(code)
    assert metro.region == expected
    assert region_of_point(metro.location) == expected


def test_classifier_agrees_with_metro_tags_mostly():
    """The bounding-box classifier should agree with the authoritative tag
    for the overwhelming majority of the builtin metros."""
    db = MetroDatabase()
    disagreements = [
        m.code for m in db if region_of_point(m.location) != m.region
    ]
    assert len(disagreements) <= max(2, len(db) // 20), disagreements


def test_region_str():
    assert str(Region.EUROPE) == "europe"
