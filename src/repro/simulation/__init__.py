"""Simulation layer: calendar, dynamics, scenario wiring, campaigns."""

from repro.simulation.campaign import (
    CampaignConfig,
    CampaignRunner,
    CampaignStats,
    PathCacheStats,
    largest_remainder_apportion,
)
from repro.simulation.churn import ChurnConfig, DayRoutePlan, RouteChurnModel
from repro.simulation.clock import SECONDS_PER_DAY, SimulationCalendar
from repro.simulation.dataset import StudyDataset
from repro.simulation.episodes import EpisodeConfig, PoorPathEpisodeModel
from repro.simulation.parallel import (
    ParallelCampaignRunner,
    run_campaign,
    shard_bounds,
)
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.simulation.validate import (
    ValidationIssue,
    ValidationReport,
    validate_scenario,
)

__all__ = [
    "CampaignConfig",
    "CampaignRunner",
    "CampaignStats",
    "ChurnConfig",
    "DayRoutePlan",
    "EpisodeConfig",
    "ParallelCampaignRunner",
    "PathCacheStats",
    "PoorPathEpisodeModel",
    "RouteChurnModel",
    "SECONDS_PER_DAY",
    "Scenario",
    "ScenarioConfig",
    "SimulationCalendar",
    "StudyDataset",
    "ValidationIssue",
    "ValidationReport",
    "largest_remainder_apportion",
    "run_campaign",
    "shard_bounds",
    "validate_scenario",
]
