"""Tests for the geolocation database and its error model."""

import pytest

from repro.errors import GeoError
from repro.geo.coords import GeoPoint
from repro.geo.geolocation import GeolocationDatabase


def test_register_and_lookup_clean():
    db = GeolocationDatabase(error_fraction=0.0)
    point = GeoPoint(10.0, 20.0)
    record = db.register("k1", point)
    assert db.lookup("k1") == point
    assert db.true_location("k1") == point
    assert record.error_km == 0.0
    assert not record.is_erroneous


def test_duplicate_key_rejected():
    db = GeolocationDatabase()
    db.register("k1", GeoPoint(0, 0))
    with pytest.raises(GeoError, match="already registered"):
        db.register("k1", GeoPoint(1, 1))


def test_unknown_key():
    with pytest.raises(GeoError, match="not in geolocation"):
        GeolocationDatabase().lookup("missing")


def test_register_all():
    db = GeolocationDatabase(error_fraction=0.0)
    records = db.register_all(
        [("a", GeoPoint(0, 0)), ("b", GeoPoint(1, 1))]
    )
    assert [r.key for r in records] == ["a", "b"]
    assert len(db) == 2
    assert "a" in db and "c" not in db


def test_error_fraction_statistics():
    db = GeolocationDatabase(error_fraction=0.2, seed=3)
    for i in range(1000):
        db.register(f"k{i}", GeoPoint(0.0, 0.0))
    erroneous = db.erroneous_keys()
    assert 130 <= len(erroneous) <= 270  # ~200 expected


def test_error_displacement_scale():
    db = GeolocationDatabase(
        error_fraction=1.0, error_distance_km=4000.0, seed=1
    )
    db.register("k", GeoPoint(0.0, 0.0))
    record = db.record("k")
    assert record.is_erroneous
    # Displacement is uniform in [0.5x, 2x] of the configured scale.
    assert 2000.0 - 1 <= record.error_km <= 8000.0 + 1


def test_zero_error_fraction_never_displaces():
    db = GeolocationDatabase(error_fraction=0.0, seed=9)
    for i in range(200):
        db.register(f"k{i}", GeoPoint(5.0, 5.0))
    assert db.erroneous_keys() == ()


def test_seed_determinism():
    def build(seed):
        db = GeolocationDatabase(error_fraction=0.5, seed=seed)
        for i in range(50):
            db.register(f"k{i}", GeoPoint(0.0, 0.0))
        return [str(db.lookup(f"k{i}")) for i in range(50)]

    assert build(11) == build(11)
    assert build(11) != build(12)


def test_iteration_yields_records():
    db = GeolocationDatabase(error_fraction=0.0)
    db.register("a", GeoPoint(0, 0))
    assert [r.key for r in db] == ["a"]


@pytest.mark.parametrize("fraction", [-0.1, 1.5])
def test_bad_error_fraction(fraction):
    with pytest.raises(GeoError):
        GeolocationDatabase(error_fraction=fraction)


def test_bad_error_distance():
    with pytest.raises(GeoError):
        GeolocationDatabase(error_distance_km=-5.0)
