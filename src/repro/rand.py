"""Deterministic RNG derivation.

Every stochastic subsystem draws from its own :class:`random.Random` derived
from the scenario seed plus a string tag, so adding randomness to one
subsystem never perturbs another and whole runs replay bit-identically.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union


def derive_seed(seed: int, *tags: Union[str, int]) -> int:
    """Derive a child seed from a parent seed and a tag path.

    The derivation is stable across Python versions and processes (it uses
    SHA-256, not ``hash()``, which is salted per process).
    """
    # One pre-joined buffer feeds sha256 in a single call; the byte
    # stream (and therefore every derived seed) is identical to hashing
    # str(seed), then "/" + str(tag) per tag, incrementally.
    parts = [str(seed)]
    for tag in tags:
        parts.append(str(tag))
    digest = hashlib.sha256("/".join(parts).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(seed: int, *tags: Union[str, int]) -> random.Random:
    """A :class:`random.Random` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(seed, *tags))
